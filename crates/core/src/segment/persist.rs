//! Persistence for the layered segment state: a checksummed multi-file
//! segment **directory** instead of the single-file snapshot of the
//! static index.
//!
//! Layout (formats in `setsim_storage::manifest`, details in DESIGN.md
//! §12):
//!
//! * `base.snap` — the base segment, in the ordinary snapshot container.
//! * `delta.log` — every mutation since that base was built, replayed on
//!   open to rebuild the in-memory delta segment exactly.
//! * `MANIFEST` — names both files with their sizes and CRC32s (verified
//!   *before* either is decoded), plus the record-id table mapping each
//!   base set id to its stable [`RecordId`] and the id counter.
//!
//! Writes go manifest-last, so a crash mid-save leaves either the old
//! complete state (old manifest still names the old files — but note the
//! base/delta files are overwritten in place, so a torn write is caught
//! by checksum, not rolled back) or the new complete state.

use super::{DeltaOp, MutableIndex, RecordId};
use crate::{InvertedIndex, SnapshotError};
use setsim_storage::manifest::{
    decode_delta_log, write_delta_log, DeltaLogOp, ManifestEntry, SegmentManifest, BASE_FILE,
};
use std::path::Path;

fn to_log_op(op: &DeltaOp) -> DeltaLogOp {
    match op {
        DeltaOp::Insert { id, text } => DeltaLogOp::Insert {
            id: id.0,
            text: text.clone(),
        },
        DeltaOp::Delete { id } => DeltaLogOp::Delete { id: id.0 },
    }
}

fn from_log_op(op: DeltaLogOp) -> DeltaOp {
    match op {
        DeltaLogOp::Insert { id, text } => DeltaOp::Insert {
            id: RecordId(id),
            text,
        },
        DeltaLogOp::Delete { id } => DeltaOp::Delete { id: RecordId(id) },
    }
}

impl MutableIndex {
    /// Whether `dir` looks like a segment directory written by
    /// [`save`](Self::save) — i.e. holds a manifest. Callers use this to
    /// decide between opening an existing segment and seeding a new one.
    pub fn exists(dir: &Path) -> bool {
        dir.join(setsim_storage::manifest::MANIFEST_FILE).is_file()
    }

    /// Persist the full layered state into segment directory `dir`
    /// (created if absent): base snapshot, delta op log, and the manifest
    /// binding them. [`open`](Self::open) restores an equivalent index.
    pub fn save(&self, dir: &Path) -> Result<(), SnapshotError> {
        std::fs::create_dir_all(dir)?;
        let base_path = dir.join(BASE_FILE);
        self.base.save(&base_path)?;
        let base = ManifestEntry::describe(&base_path, BASE_FILE)?;
        let ops: Vec<DeltaLogOp> = self.oplog.iter().map(to_log_op).collect();
        let delta = write_delta_log(dir, &ops)?;
        let manifest = SegmentManifest {
            base,
            delta,
            delta_ops: ops.len() as u64,
            next_record_id: self.next_id,
            base_record_ids: self.base_ids.iter().map(|id| id.0).collect(),
        };
        manifest.write(dir)
    }

    /// Open a segment directory written by [`save`](Self::save): verify
    /// every file against the manifest checksums, load the base segment,
    /// and replay the delta log to rebuild the in-memory delta.
    pub fn open(dir: &Path) -> Result<Self, SnapshotError> {
        let manifest = SegmentManifest::read(dir)?;
        // Verify both referenced files in full before decoding anything.
        manifest.base.read_verified(dir)?;
        let delta_bytes = manifest.delta.read_verified(dir)?;
        let base = InvertedIndex::load(&manifest.base_path(dir))?;
        if manifest.base_record_ids.len() != base.collection().len() {
            return Err(SnapshotError::Corrupt {
                detail: format!(
                    "manifest names {} base records but the base snapshot holds {}",
                    manifest.base_record_ids.len(),
                    base.collection().len()
                ),
            });
        }
        let Some(spec) = base.collection().tokenizer().spec() else {
            return Err(SnapshotError::Unsupported {
                detail: "segment base snapshot has no serializable tokenizer spec".to_string(),
            });
        };
        let ids = manifest
            .base_record_ids
            .iter()
            .map(|&id| RecordId(id))
            .collect();
        let mut index = Self::assemble(
            base,
            spec,
            ids,
            manifest.next_record_id,
            super::DriftBudget::default(),
        );
        if index.base_ids.len() != index.loc.len() {
            return Err(SnapshotError::Corrupt {
                detail: "manifest record-id table contains duplicates".to_string(),
            });
        }
        for op in decode_delta_log(&delta_bytes, manifest.delta_ops)? {
            index.replay(from_log_op(op))?;
        }
        Ok(index)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{DriftBudget, MutableIndex, MutableSearchRequest, RecordId};
    use crate::engine::Scratch;
    use crate::{CollectionBuilder, IndexOptions, SnapshotError};
    use setsim_tokenize::QGramTokenizer;
    use std::path::PathBuf;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            let p = std::env::temp_dir()
                .join(format!("setsim-segment-{}-{tag}-{n}", std::process::id()));
            Self(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn mutable(texts: &[&str]) -> MutableIndex {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        for t in texts {
            b.add(t);
        }
        MutableIndex::from_collection(Box::new(b.build()), IndexOptions::default()).unwrap()
    }

    fn search_ids(mi: &MutableIndex, query: &str, tau: f64) -> Vec<RecordId> {
        let q = mi.prepare_query_str(query);
        let req = MutableSearchRequest::new(&q).tau(tau);
        mi.search(&mut Scratch::default(), &req)
            .unwrap()
            .ids_sorted()
    }

    #[test]
    fn save_open_round_trips_layered_state() {
        let dir = TempDir::new("roundtrip");
        let mut mi = mutable(&["main street", "park avenue", "wall street"]);
        let a = mi.insert("ocean drive");
        mi.delete(RecordId(1));
        mi.upsert(RecordId(0), "main street north");
        mi.save(&dir.0).unwrap();
        let back = MutableIndex::open(&dir.0).unwrap();
        assert_eq!(back.live_len(), mi.live_len());
        assert!(!back.pristine());
        assert_eq!(back.text(a), Some("ocean drive"));
        assert_eq!(back.text(RecordId(0)), Some("main street north"));
        assert!(!back.contains(RecordId(1)));
        for q in ["main street", "ocean drive", "park avenue"] {
            assert_eq!(search_ids(&back, q, 0.4), search_ids(&mi, q, 0.4), "{q}");
        }
        // New ids continue past the saved counter — never reused.
        let mut back = back;
        let b = back.insert("harbor view");
        assert!(b.0 > a.0);
    }

    #[test]
    fn save_open_round_trips_pristine_and_compacted_state() {
        let dir = TempDir::new("pristine");
        let mut mi = mutable(&["alpha beta", "gamma delta"]);
        mi.insert("epsilon zeta");
        mi.compact();
        mi.save(&dir.0).unwrap();
        let back = MutableIndex::open(&dir.0).unwrap();
        assert!(back.pristine());
        assert_eq!(back.live_len(), 3);
        assert_eq!(
            search_ids(&back, "epsilon zeta", 0.8),
            search_ids(&mi, "epsilon zeta", 0.8)
        );
    }

    #[test]
    fn open_rejects_damaged_segment_files() {
        let dir = TempDir::new("damage");
        let mut mi = mutable(&["main street", "park avenue"]);
        mi.insert("ocean drive");
        mi.save(&dir.0).unwrap();
        // Flip one byte in each referenced file in turn: open must fail
        // with a typed error, never a panic or silent misload.
        for name in [
            setsim_storage::manifest::BASE_FILE,
            setsim_storage::manifest::DELTA_FILE,
        ] {
            let path = dir.0.join(name);
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xff;
            std::fs::write(&path, &bytes).unwrap();
            let Err(err) = MutableIndex::open(&dir.0) else {
                panic!("{name}: damaged file must not open");
            };
            assert!(
                matches!(err, SnapshotError::ChecksumMismatch { .. }),
                "{name}: {err:?}"
            );
            bytes[mid] ^= 0xff;
            std::fs::write(&path, &bytes).unwrap();
        }
        // Restored bytes load fine again.
        assert!(MutableIndex::open(&dir.0).is_ok());
    }

    #[test]
    fn open_rejects_id_table_mismatch() {
        let dir = TempDir::new("idmismatch");
        let mi = mutable(&["main street", "park avenue"]);
        mi.save(&dir.0).unwrap();
        let mut manifest = setsim_storage::SegmentManifest::read(&dir.0).unwrap();
        manifest.base_record_ids.push(99);
        manifest.write(&dir.0).unwrap();
        let Err(err) = MutableIndex::open(&dir.0) else {
            panic!("id-table mismatch must not open");
        };
        assert!(matches!(err, SnapshotError::Corrupt { .. }), "{err:?}");
    }

    #[test]
    fn saved_budget_is_not_persisted_but_drift_is_recomputed() {
        // The budget is a serving-time policy, not index state: open
        // returns the default; callers re-apply theirs via with_budget.
        let dir = TempDir::new("budget");
        let mut mi = mutable(&["main street"]).with_budget(DriftBudget {
            max_rel_err: 0.5,
            max_delta_records: 7,
        });
        mi.insert("park avenue");
        mi.save(&dir.0).unwrap();
        let back = MutableIndex::open(&dir.0).unwrap();
        assert_eq!(back.budget(), DriftBudget::default());
        assert!((back.drift_rel_err() - mi.drift_rel_err()).abs() < 1e-12);
    }
}
