//! Runtime lock-order checker for the segment serving layer (`audit`
//! feature only; zero-cost otherwise).
//!
//! The canonical acquisition order — the same one `cargo xtask analyze`
//! verifies statically (see DESIGN.md §13) — is:
//!
//! ```text
//! compaction (0) -> state (1) -> drift_cache (2) -> scratch_pool (3)
//! ```
//!
//! The static lock pass proves the order for acquisitions it can see
//! inside one file; what it deliberately cannot see is the cross-file
//! chain — the engine holding the `state` read guard while
//! [`MutableIndex`](super::MutableIndex) internals take `drift_cache`.
//! This module closes that gap at runtime: every acquisition site in the
//! serving layer requests a [`HeldToken`] carrying its rank, and under
//! `--features audit` a thread-local stack asserts that every lock
//! already held by the thread has a *strictly lower* rank. Equal rank is
//! also a violation: std's locks are not reentrant, so re-acquiring a
//! held lock is a self-deadlock.
//!
//! Without the `audit` feature every function here compiles to nothing,
//! so the serving hot path pays zero cost in release builds. The
//! mutable-equivalence suites (and the whole workspace test run in CI's
//! audit job) execute with the checker armed, including interleaved
//! compaction, so a regression in the discipline fails loudly as a
//! panic naming both ranks instead of as a rare production deadlock.

#[cfg(feature = "audit")]
use std::cell::RefCell;

/// Rank of the `compaction` mutex (outermost).
pub(crate) const COMPACTION: u8 = 0;
/// Rank of the `state` `RwLock`.
pub(crate) const STATE: u8 = 1;
/// Rank of the `drift_cache` mutex (inside `MutableIndex`).
pub(crate) const DRIFT_CACHE: u8 = 2;
/// Rank of the `scratch_pool` mutex (innermost).
pub(crate) const SCRATCH_POOL: u8 = 3;

#[cfg(feature = "audit")]
thread_local! {
    /// Ranks of the locks this thread currently holds, in acquisition
    /// order.
    static HELD: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

#[cfg(feature = "audit")]
fn rank_name(rank: u8) -> &'static str {
    match rank {
        COMPACTION => "compaction",
        STATE => "state",
        DRIFT_CACHE => "drift_cache",
        SCRATCH_POOL => "scratch_pool",
        _ => "unknown",
    }
}

/// RAII witness of one held lock; dropping it marks the lock released.
/// Keep it alongside the guard it describes (the engine's guard wrappers
/// carry one), so release timing is exact.
#[must_use = "dropping the token immediately marks the lock released"]
pub(crate) struct HeldToken {
    #[cfg(feature = "audit")]
    rank: u8,
}

/// Record an acquisition of the lock with rank `rank`.
///
/// # Panics
///
/// Under `--features audit`, panics if this thread already holds a lock
/// of equal or higher rank — the acquisition violates the canonical
/// order and could deadlock against a thread acquiring in order.
pub(crate) fn acquired(rank: u8) -> HeldToken {
    // `rank` is only inspected under the audit feature.
    let _ = rank;
    #[cfg(feature = "audit")]
    {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&worst) = held.iter().max() {
                assert!(
                    worst < rank,
                    "lock-order violation: acquiring `{}` (rank {rank}) while \
                     holding `{}` (rank {worst}); canonical order is \
                     compaction -> state -> drift_cache -> scratch_pool",
                    rank_name(rank),
                    rank_name(worst),
                );
            }
            held.push(rank);
        });
    }
    HeldToken {
        #[cfg(feature = "audit")]
        rank,
    }
}

#[cfg(feature = "audit")]
impl Drop for HeldToken {
    fn drop(&mut self) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&r| r == self.rank) {
                held.remove(pos);
            }
        });
    }
}

#[cfg(all(test, feature = "audit"))]
mod tests {
    use super::*;

    #[test]
    fn ordered_acquisition_passes_and_releases() {
        let c = acquired(COMPACTION);
        let s = acquired(STATE);
        let p = acquired(SCRATCH_POOL);
        drop(p);
        drop(s);
        // Re-acquiring a released rank is fine.
        let s2 = acquired(STATE);
        drop(s2);
        drop(c);
        // Everything released: innermost-first is fresh again.
        let p2 = acquired(SCRATCH_POOL);
        drop(p2);
    }

    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn inverted_acquisition_panics() {
        let _p = acquired(SCRATCH_POOL);
        let _s = acquired(STATE);
    }

    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn reentrant_acquisition_panics() {
        let _a = acquired(STATE);
        let _b = acquired(STATE);
    }
}
