//! The in-memory delta segment: recent records, their per-token sorted
//! runs, and the tombstone bitmap over the base segment.
//!
//! Delta records are keyed throughout in **stale coordinates** — the
//! normalized length each record *would have had* under the base
//! segment's frozen idf weights. That choice gives the whole index one
//! coherent coordinate system: the Theorem 1 length window derived from
//! the (stale-prepared) query applies unchanged to base lists and delta
//! runs alike, and the keys never move as later mutations drift the live
//! weights (only compaction, which rebuilds everything, retires them).

use crate::SearchStats;
use setsim_collections::SkipList;
use setsim_tokenize::{Token, TokenSet};
use std::collections::HashMap;

/// Key of a delta run entry: the record's stale normalized length (as
/// monotone `f64` bits — lengths are non-negative) plus its delta slot to
/// keep keys unique among equal-length records.
pub(crate) type RunKey = (u64, u32);

/// One record living in the delta segment.
#[derive(Debug, Clone)]
pub(crate) struct DeltaRecord {
    /// Stable record id (survives compaction).
    pub id: u64,
    /// Original text, kept for re-tokenization at compaction.
    pub text: String,
    /// Distinct tokens under the unified dictionary.
    pub set: TokenSet,
    /// Normalized length under the base segment's stale weights.
    pub stale_len: f64,
    /// False once deleted (dead records wait for compaction).
    pub alive: bool,
}

/// The delta segment: an append-only arena of recent records with one
/// stale-length-sorted run per token, mirroring the base segment's
/// length-sorted inverted lists at miniature scale.
#[derive(Default)]
pub(crate) struct DeltaSegment {
    /// All records since the last compaction, dead ones included.
    pub records: Vec<DeltaRecord>,
    /// Per-token sorted runs over the *alive* records.
    runs: HashMap<Token, SkipList<RunKey, ()>>,
    /// Cleared skip lists recycled across compaction cycles.
    pool: Vec<SkipList<RunKey, ()>>,
    alive: usize,
}

/// Seed base for per-token run skip lists: deterministic tower shapes per
/// token, so delta scan counters are reproducible run to run.
const RUN_SEED: u64 = 0xde17_a5ee_5eed_0001;

impl DeltaSegment {
    /// Append a record, indexing it in every token's run. Returns its slot.
    pub(crate) fn push(&mut self, record: DeltaRecord) -> usize {
        let slot = self.records.len();
        let key = (record.stale_len.to_bits(), slot as u32);
        for t in record.set.iter() {
            let run = self.runs.entry(t).or_insert_with(|| {
                self.pool
                    .pop()
                    .unwrap_or_else(|| SkipList::with_seed(RUN_SEED ^ u64::from(t.0)))
            });
            run.insert(key, ());
        }
        self.records.push(record);
        self.alive += 1;
        slot
    }

    /// Mark `slot` dead and unlink it from every run.
    pub(crate) fn kill(&mut self, slot: usize) {
        let key = (self.records[slot].stale_len.to_bits(), slot as u32);
        // Unlink without holding a borrow of the record across the run map.
        let tokens: Vec<Token> = self.records[slot].set.iter().collect();
        for t in tokens {
            if let Some(run) = self.runs.get_mut(&t) {
                run.remove(&key);
            }
        }
        self.records[slot].alive = false;
        self.alive -= 1;
    }

    /// Number of records, dead ones included (the compaction footprint).
    pub(crate) fn footprint(&self) -> usize {
        self.records.len()
    }

    /// Number of alive records.
    pub(crate) fn alive_len(&self) -> usize {
        self.alive
    }

    /// Collect the slots of alive records whose stale length lies in
    /// `[lo, hi]`, seeking each query token's run. Slots are pushed in
    /// token-by-token visit order and may repeat; the caller dedups.
    /// Every run element visited is charged to `candidate_scan_steps`.
    pub(crate) fn window_candidates(
        &self,
        tokens: impl Iterator<Item = Token>,
        lo: f64,
        hi: f64,
        out: &mut Vec<u32>,
        stats: &mut SearchStats,
    ) {
        let lo_key = (lo.to_bits(), 0u32);
        let hi_bits = hi.to_bits();
        for t in tokens {
            let Some(run) = self.runs.get(&t) else {
                continue;
            };
            for (&(bits, slot), _) in run.lower_bound(&lo_key) {
                if bits > hi_bits {
                    break;
                }
                stats.candidate_scan_steps += 1;
                out.push(slot);
            }
        }
    }

    /// Collect every alive slot (the no-base fallback, where stale lengths
    /// are degenerate and carry no pruning power).
    pub(crate) fn all_alive(&self, out: &mut Vec<u32>, stats: &mut SearchStats) {
        for (slot, r) in self.records.iter().enumerate() {
            stats.candidate_scan_steps += 1;
            if r.alive {
                out.push(slot as u32);
            }
        }
    }

    /// Drop all records and runs, recycling the run arenas into the pool
    /// for the next filling cycle (post-compaction reuse).
    pub(crate) fn recycle(&mut self) -> Vec<SkipList<RunKey, ()>> {
        let mut pool = std::mem::take(&mut self.pool);
        for (_, mut run) in self.runs.drain() {
            run.clear();
            pool.push(run);
        }
        self.records.clear();
        self.alive = 0;
        pool
    }

    /// Seed the recycle pool (fresh segment after a compaction).
    pub(crate) fn with_pool(pool: Vec<SkipList<RunKey, ()>>) -> Self {
        Self {
            pool,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, tokens: &[u32], stale_len: f64) -> DeltaRecord {
        DeltaRecord {
            id,
            text: format!("r{id}"),
            set: tokens.iter().map(|&t| Token(t)).collect(),
            stale_len,
            alive: true,
        }
    }

    fn window(d: &DeltaSegment, tokens: &[u32], lo: f64, hi: f64) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        d.window_candidates(
            tokens.iter().map(|&t| Token(t)),
            lo,
            hi,
            &mut out,
            &mut stats,
        );
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn window_seeks_per_token_runs() {
        let mut d = DeltaSegment::default();
        d.push(record(10, &[1, 2], 1.0));
        d.push(record(11, &[2, 3], 2.0));
        d.push(record(12, &[2], 3.0));
        assert_eq!(window(&d, &[2], 1.5, 2.5), vec![1]);
        assert_eq!(window(&d, &[2], 0.5, 3.5), vec![0, 1, 2]);
        assert_eq!(window(&d, &[1, 3], 0.0, 9.0), vec![0, 1]);
        assert_eq!(window(&d, &[9], 0.0, 9.0), Vec::<u32>::new());
    }

    #[test]
    fn kill_unlinks_from_runs() {
        let mut d = DeltaSegment::default();
        d.push(record(10, &[1, 2], 1.0));
        d.push(record(11, &[1], 1.0)); // same stale length, distinct slot
        d.kill(0);
        assert_eq!(window(&d, &[1, 2], 0.0, 9.0), vec![1]);
        assert_eq!(d.alive_len(), 1);
        assert_eq!(d.footprint(), 2);
        let mut all = Vec::new();
        d.all_alive(&mut all, &mut SearchStats::default());
        assert_eq!(all, vec![1]);
    }

    #[test]
    fn recycle_empties_and_pools() {
        let mut d = DeltaSegment::default();
        d.push(record(1, &[1, 2, 3], 1.0));
        d.push(record(2, &[1], 2.0));
        let pool = d.recycle();
        assert_eq!(pool.len(), 3);
        assert!(pool.iter().all(setsim_collections::SkipList::is_empty));
        assert_eq!(d.footprint(), 0);
        let mut d2 = DeltaSegment::with_pool(pool);
        d2.push(record(3, &[7], 4.0));
        assert_eq!(window(&d2, &[7], 3.0, 5.0), vec![0]);
    }
}
