//! Runtime verification of the layered index's correctness claims
//! (`audit` feature) — the [`crate::audit`] counterpart for
//! [`MutableIndex`].
//!
//! The mutable index earns its speed from two claims the static auditor
//! cannot check:
//!
//! 1. **Oracle agreement under mutation** — after any interleaving of
//!    inserts, deletes, and upserts, a search must agree with a naive
//!    exhaustive scan of the *live* records under the *live* idf weights.
//! 2. **Widened-window soundness** — the base pass and the delta run
//!    seeks both prune by the Theorem 1 window at the drift-widened
//!    threshold `τ′ = τ / D`, computed in *stale* coordinates. The claim
//!    (DESIGN.md §12) is that this window can never exclude a record
//!    whose live score reaches `τ`. The auditor re-derives every true
//!    result's stale length from scratch and checks it lies inside the
//!    window actually used.
//!
//! [`AuditedMutableIndex`] also provides [`audit_state`]
//! (bookkeeping coherence: `N`, `N(t)`, the record directory, tombstone
//! counts — everything the incremental updates maintain, recomputed from
//! first principles), meant to run after every mutation batch in tests.
//!
//! [`audit_state`]: AuditedMutableIndex::audit_state

use super::{Loc, MutableIndex, MutableOutcome, MutableSearchRequest, RecordId};
use crate::engine::Scratch;
use crate::properties::length_bounds;
use crate::SetId;
use std::collections::HashMap;
use std::fmt;

/// Relative slack for audit comparisons (matches the static auditor).
const AUDIT_EPS: f64 = 1e-9;

/// One violation found while auditing a mutable index.
#[derive(Debug, Clone, PartialEq)]
pub enum MutableViolation {
    /// The search missed a live record the oracle scores clearly at or
    /// above τ.
    FalseNegative {
        /// The missing record.
        record: RecordId,
        /// Its true live score.
        score: f64,
    },
    /// The search emitted a record the oracle scores clearly below τ.
    FalsePositive {
        /// The spurious record.
        record: RecordId,
        /// Its true live score.
        score: f64,
    },
    /// A result's reported score differs from the exact live score.
    WrongScore {
        /// The offending record.
        record: RecordId,
        /// The score the search reported.
        reported: f64,
        /// The exact live score.
        exact: f64,
    },
    /// The same record was emitted more than once.
    DuplicateResult {
        /// The duplicated record.
        record: RecordId,
    },
    /// A true result's stale length falls outside the widened Theorem 1
    /// window the search pruned by — the drift bound failed to cover it.
    WindowExclusion {
        /// The record the window would have discarded.
        record: RecordId,
        /// Its stale-coordinate normalized length.
        stale_len: f64,
        /// The widened window actually used.
        window: (f64, f64),
    },
    /// Incrementally maintained bookkeeping disagrees with a from-scratch
    /// recomputation.
    StateDrift {
        /// What diverged.
        detail: String,
    },
}

impl fmt::Display for MutableViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::FalseNegative { record, score } => {
                write!(f, "false negative {record} with live score {score}")
            }
            Self::FalsePositive { record, score } => {
                write!(f, "false positive {record} with live score {score}")
            }
            Self::WrongScore {
                record,
                reported,
                exact,
            } => write!(
                f,
                "wrong score for {record}: reported {reported}, exact {exact}"
            ),
            Self::DuplicateResult { record } => write!(f, "duplicate result {record}"),
            Self::WindowExclusion {
                record,
                stale_len,
                window,
            } => write!(
                f,
                "widened window [{}, {}] excludes true result {record} (stale len {stale_len})",
                window.0, window.1
            ),
            Self::StateDrift { detail } => write!(f, "state drift: {detail}"),
        }
    }
}

/// The outcome of one mutable-index audit.
#[derive(Debug, Clone, Default)]
pub struct MutableReport {
    /// What was audited (for assertion messages).
    pub subject: String,
    /// Live records compared against the oracle.
    pub oracle_comparisons: usize,
    /// True results whose widened-window membership was verified.
    pub window_checks: usize,
    /// Every violation found (empty when the index is correct).
    pub violations: Vec<MutableViolation>,
}

impl MutableReport {
    /// True if no violation was found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic with a full listing if any violation was found.
    ///
    /// # Panics
    /// Panics if [`is_clean`](Self::is_clean) is false.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "mutable audit of {} found {} violation(s):\n{}",
            self.subject,
            self.violations.len(),
            self.violations
                .iter()
                .map(|v| format!("  - {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

/// A [`MutableIndex`] wrapper that runs searches under full differential
/// auditing. See the [module docs](self) for what is checked.
pub struct AuditedMutableIndex<'a> {
    index: &'a MutableIndex,
}

impl<'a> AuditedMutableIndex<'a> {
    /// Wrap `index` for audited searching.
    pub fn new(index: &'a MutableIndex) -> Self {
        Self { index }
    }

    /// The wrapped index.
    #[must_use]
    pub fn inner(&self) -> &'a MutableIndex {
        self.index
    }

    /// Exact live scores of every live record, by exhaustive scan — the
    /// oracle all checks compare against.
    fn oracle_scores(&self, req: &MutableSearchRequest<'_>) -> Vec<(RecordId, f64)> {
        let mi = self.index;
        let live = req.query.live();
        let mut rows = Vec::with_capacity(mi.n_live);
        for (i, &id) in mi.base_ids.iter().enumerate() {
            if !mi.base_dead[i] {
                let set = mi.base.collection().set(SetId(i as u32));
                rows.push((id, mi.live_score(live, set)));
            }
        }
        for r in &mi.delta.records {
            if r.alive {
                rows.push((RecordId(r.id), mi.live_score(live, &r.set)));
            }
        }
        rows
    }

    /// Stale-coordinate normalized length of a live record, re-derived
    /// from its token set (not read from the cached delta key).
    fn stale_len_of(&self, id: RecordId) -> Option<f64> {
        let mi = self.index;
        match mi.loc.get(&id.0)? {
            Loc::Base(sid) => Some(mi.base.set_len(*sid)),
            Loc::Delta(slot) => Some(mi.stale_set_length(&mi.delta.records[*slot].set)),
        }
    }

    /// Run `req` on the wrapped index and audit the outcome: differential
    /// oracle check plus widened-window soundness. Returns the search's
    /// outcome untouched plus the report.
    ///
    /// # Panics
    /// Panics if the request itself is invalid (bad τ) — the audit is
    /// about result correctness, not argument validation.
    pub fn search_audited(
        &self,
        scratch: &mut Scratch,
        req: &MutableSearchRequest<'_>,
    ) -> (MutableOutcome, MutableReport) {
        let outcome = self
            .index
            .search(scratch, req)
            .expect("audited request must be valid"); // lint: allow — the audit harness (dev/CI only) wants invalid requests to fail loudly, not flow into a vacuous report
        let report = self.audit_outcome(req, &outcome);
        (outcome, report)
    }

    /// Audit a precomputed `outcome` as if `req` had produced it — split
    /// out so tests can feed deliberately corrupted outcomes and prove
    /// the auditor catches them.
    pub fn audit_outcome(
        &self,
        req: &MutableSearchRequest<'_>,
        outcome: &MutableOutcome,
    ) -> MutableReport {
        let mi = self.index;
        let tau = req.tau;
        let mut report = MutableReport {
            subject: format!("{:?} at tau={tau}", req.algorithm),
            ..MutableReport::default()
        };
        let oracle = self.oracle_scores(req);
        report.oracle_comparisons = oracle.len();
        let mut emitted: HashMap<u64, f64> = HashMap::with_capacity(outcome.results.len());
        for m in &outcome.results {
            if emitted.insert(m.record.0, m.score).is_some() {
                report
                    .violations
                    .push(MutableViolation::DuplicateResult { record: m.record });
            }
        }
        // Scores within this band of tau are knife-edge: summation order
        // legitimately decides them, so either answer is accepted.
        let band = AUDIT_EPS * tau.max(1.0);
        for &(record, exact) in &oracle {
            match emitted.get(&record.0) {
                Some(&reported) => {
                    if (reported - exact).abs() > band {
                        report.violations.push(MutableViolation::WrongScore {
                            record,
                            reported,
                            exact,
                        });
                    }
                    if exact < tau - band {
                        report.violations.push(MutableViolation::FalsePositive {
                            record,
                            score: exact,
                        });
                    }
                }
                None => {
                    if exact >= tau + band {
                        report.violations.push(MutableViolation::FalseNegative {
                            record,
                            score: exact,
                        });
                    }
                }
            }
        }
        // Widened-window soundness: every true result's stale length must
        // lie inside the window the layered search pruned by. (A pristine
        // index searches at the exact τ window — the static auditor's
        // Theorem 1 check covers that case; the interesting claim here is
        // the drifted one.)
        if !mi.pristine() && !mi.base.collection().is_empty() {
            let tau_wide = tau / mi.drift_bounds().widening_factor();
            let window = length_bounds(tau_wide, req.query.stale.len);
            for &(record, exact) in &oracle {
                if exact < tau + band {
                    continue;
                }
                report.window_checks += 1;
                let Some(stale_len) = self.stale_len_of(record) else {
                    report.violations.push(MutableViolation::StateDrift {
                        detail: format!("live record {record} missing from the directory"),
                    });
                    continue;
                };
                if stale_len < window.0 || stale_len > window.1 {
                    report.violations.push(MutableViolation::WindowExclusion {
                        record,
                        stale_len,
                        window,
                    });
                }
            }
        }
        report
    }

    /// Verify every piece of incrementally maintained bookkeeping against
    /// a from-scratch recomputation: `N`, per-token `N(t)`, the record
    /// directory, and tombstone counts. Meant to run after every mutation
    /// batch in tests.
    pub fn audit_state(&self) -> MutableReport {
        let mi = self.index;
        let mut report = MutableReport {
            subject: "state".to_string(),
            ..MutableReport::default()
        };
        let mut drift = |detail: String| {
            report
                .violations
                .push(MutableViolation::StateDrift { detail });
        };
        // Recompute N and N(t) from the live records.
        let mut n = 0usize;
        let mut df: HashMap<u32, u32> = HashMap::new();
        let mut count_set = |set: &setsim_tokenize::TokenSet| {
            n += 1;
            for t in set.iter() {
                *df.entry(t.0).or_insert(0) += 1;
            }
        };
        let mut dead = 0usize;
        for (i, _) in mi.base_ids.iter().enumerate() {
            if mi.base_dead[i] {
                dead += 1;
            } else {
                count_set(mi.base.collection().set(SetId(i as u32)));
            }
        }
        let mut delta_alive = 0usize;
        for r in &mi.delta.records {
            if r.alive {
                delta_alive += 1;
                count_set(&r.set);
            }
        }
        if n != mi.n_live {
            drift(format!(
                "n_live is {} but {} records are live",
                mi.n_live, n
            ));
        }
        if dead != mi.n_base_dead {
            drift(format!(
                "n_base_dead is {} but {} tombstones are set",
                mi.n_base_dead, dead
            ));
        }
        if delta_alive != mi.delta.alive_len() {
            drift(format!(
                "delta alive count is {} but {} delta records are alive",
                mi.delta.alive_len(),
                delta_alive
            ));
        }
        for (i, &have) in mi.df_live.iter().enumerate() {
            // lint: allow — enumerate index of a Vec<u32> is within u32 by
            // construction (dictionary ids are u32).
            let want = df.get(&(i as u32)).copied().unwrap_or(0);
            if have != want {
                drift(format!(
                    "df_live[{i}] is {have} but {want} live records hold the token"
                ));
            }
        }
        // Directory coherence: exactly the live records, pointing at
        // alive storage.
        if mi.loc.len() != n {
            drift(format!(
                "directory holds {} entries for {} live records",
                mi.loc.len(),
                n
            ));
        }
        for (&id, loc) in &mi.loc {
            let ok = match loc {
                Loc::Base(sid) => !mi.base_dead[sid.index()] && mi.base_ids[sid.index()].0 == id,
                Loc::Delta(slot) => mi
                    .delta
                    .records
                    .get(*slot)
                    .is_some_and(|r| r.alive && r.id == id),
            };
            if !ok {
                drift(format!("directory entry for r{id} points at dead storage"));
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::super::{MutableIndex, MutableMatch, MutableSearchRequest, RecordId};
    use super::{AuditedMutableIndex, MutableViolation};
    use crate::engine::Scratch;
    use crate::{AlgorithmKind, CollectionBuilder, IndexOptions};
    use setsim_tokenize::QGramTokenizer;

    fn mutated_index() -> MutableIndex {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        for t in [
            "main street",
            "main st",
            "maine street",
            "park avenue",
            "wall street",
            "ocean drive",
        ] {
            b.add(t);
        }
        let mut mi =
            MutableIndex::from_collection(Box::new(b.build()), IndexOptions::default()).unwrap();
        for i in 0..5 {
            mi.insert(&format!("quartz harbor {i}"));
        }
        mi.delete(RecordId(1));
        mi.upsert(RecordId(2), "maine streets");
        mi
    }

    #[test]
    fn audit_is_clean_for_all_algorithms_after_mutations() {
        let mi = mutated_index();
        let audited = AuditedMutableIndex::new(&mi);
        audited.audit_state().assert_clean();
        let mut scratch = Scratch::default();
        for query in ["main street", "quartz harbor 3", "park avenue"] {
            let q = mi.prepare_query_str(query);
            for kind in AlgorithmKind::ALL {
                for tau in [0.3, 0.6, 0.9] {
                    let req = MutableSearchRequest::new(&q).tau(tau).algorithm(kind);
                    let (out, report) = audited.search_audited(&mut scratch, &req);
                    report.assert_clean();
                    assert!(report.oracle_comparisons > 0);
                    drop(out);
                }
            }
        }
    }

    #[test]
    fn audit_stays_clean_across_a_mutation_batch_with_compaction() {
        let mut mi = mutated_index();
        let mut scratch = Scratch::default();
        for step in 0..6 {
            match step % 3 {
                0 => {
                    mi.insert(&format!("velvet lagoon {step}"));
                }
                1 => {
                    let victim = mi.live_records()[step].0;
                    mi.delete(victim);
                }
                _ => {
                    let victim = mi.live_records()[0].0;
                    mi.upsert(victim, &format!("granite cove {step}"));
                }
            }
            if step == 3 {
                mi.compact();
            }
            let audited = AuditedMutableIndex::new(&mi);
            audited.audit_state().assert_clean();
            let q = mi.prepare_query_str("velvet lagoon 0");
            let req = MutableSearchRequest::new(&q).tau(0.5);
            let (_, report) = audited.search_audited(&mut scratch, &req);
            report.assert_clean();
        }
    }

    #[test]
    fn auditor_catches_dropped_and_spurious_results() {
        let mi = mutated_index();
        let audited = AuditedMutableIndex::new(&mi);
        let q = mi.prepare_query_str("quartz harbor 3");
        let req = MutableSearchRequest::new(&q).tau(0.5);
        let mut out = mi.search(&mut Scratch::default(), &req).unwrap();
        assert!(!out.results.is_empty());
        // Drop a true result: must surface as a false negative.
        let dropped = out.results.pop().unwrap();
        let report = audited.audit_outcome(&req, &out);
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                MutableViolation::FalseNegative { record, .. } if *record == dropped.record
            )),
            "{report:?}"
        );
        // Resurrect it with a corrupted score: wrong-score violation.
        out.results.push(MutableMatch {
            record: dropped.record,
            score: dropped.score / 2.0,
        });
        let report = audited.audit_outcome(&req, &out);
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, MutableViolation::WrongScore { .. })),
            "{report:?}"
        );
        // Add a record that scores nowhere near tau: false positive.
        out.results.last_mut().unwrap().score = dropped.score;
        let stranger = mi
            .live_records()
            .iter()
            .map(|(id, _)| *id)
            .find(|id| !out.results.iter().any(|m| m.record == *id))
            .unwrap();
        out.results.push(MutableMatch {
            record: stranger,
            score: 0.9,
        });
        let report = audited.audit_outcome(&req, &out);
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                MutableViolation::FalsePositive { record, .. } | MutableViolation::WrongScore { record, .. }
                    if *record == stranger
            )),
            "{report:?}"
        );
        // Emit a duplicate: duplicate violation.
        let dup = out.results[0];
        out.results.push(dup);
        let report = audited.audit_outcome(&req, &out);
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, MutableViolation::DuplicateResult { .. })),
            "{report:?}"
        );
    }

    #[test]
    fn window_checks_run_on_drifted_indexes() {
        let mi = mutated_index();
        assert!(!mi.pristine());
        let audited = AuditedMutableIndex::new(&mi);
        let q = mi.prepare_query_str("main street");
        let req = MutableSearchRequest::new(&q).tau(0.3);
        let (_, report) = audited.search_audited(&mut Scratch::default(), &req);
        report.assert_clean();
        assert!(
            report.window_checks > 0,
            "drifted search with true results must exercise the window check"
        );
    }
}
