//! IDF drift accounting for the delta/base segment split.
//!
//! The base segment's inverted lists and per-token idf weights are frozen
//! at build time, but every insert or delete moves the live corpus away
//! from them: `N` (the number of sets) and `N(t)` (per-token document
//! frequencies) drift, and with them every `idf(t) = log2(1 + N/N(t))`.
//! Searching the base segment with stale weights is still *sound* as long
//! as the threshold it is searched at is widened by a factor that bounds
//! how far any live score can sit above its stale counterpart — that
//! factor is what [`DriftBounds`] computes, and [`DriftBudget`] is the
//! configurable limit past which the index compacts instead of widening
//! further (see DESIGN.md §12 for the derivation).

/// Compaction policy: how much idf drift and delta growth the index
/// tolerates before [`needs_compaction`] trips.
///
/// [`needs_compaction`]: crate::segment::MutableIndex::needs_compaction
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftBudget {
    /// Maximum tolerated relative idf error
    /// `max_t |idf_live(t)/idf_stale(t) − 1|` before compaction. Larger
    /// values widen the base-segment search window (slower queries);
    /// smaller values compact more often.
    pub max_rel_err: f64,
    /// Maximum delta footprint (delta records, dead or alive, plus base
    /// tombstones) before compaction regardless of drift.
    pub max_delta_records: usize,
}

impl Default for DriftBudget {
    fn default() -> Self {
        Self {
            max_rel_err: 0.10,
            max_delta_records: 4096,
        }
    }
}

/// Two-sided bounds on the live/stale idf ratio over every token class
/// the index can encounter (all dictionary tokens plus the unseen-token
/// class queries may introduce).
#[derive(Debug, Clone, Copy)]
pub(crate) struct DriftBounds {
    /// `min_t idf_live(t) / idf_stale(t)`.
    pub rho_min: f64,
    /// `max_t idf_live(t) / idf_stale(t)`.
    pub rho_max: f64,
}

/// Multiplicative safety margin on the widening factor, covering the
/// floating-point error of computing the ratio bounds themselves. Far
/// coarser than f64 rounding, far finer than any real drift step.
const DRIFT_SLACK: f64 = 1e-6;

impl DriftBounds {
    /// The no-drift identity bounds.
    pub(crate) fn identity() -> Self {
        Self {
            rho_min: 1.0,
            rho_max: 1.0,
        }
    }

    /// Relative idf error `max_t |idf_live(t)/idf_stale(t) − 1|` — the
    /// quantity [`DriftBudget::max_rel_err`] caps.
    pub(crate) fn rel_err(self) -> f64 {
        (self.rho_max - 1.0).max(1.0 - self.rho_min).max(0.0)
    }

    /// The threshold-widening factor `D`: for every query `q` and set `s`,
    /// `I_live(q, s) ≤ D · I_stale(q, s)`.
    ///
    /// Derivation: with `ρ_t = idf_live(t)/idf_stale(t) ∈ [ρ_min, ρ_max]`,
    /// the score numerator `Σ idf_live²` is at most `ρ_max²` times its
    /// stale counterpart, and each length in the denominator is at least
    /// `ρ_min` times its stale counterpart, so
    /// `D = (ρ_max / ρ_min)²`. Searching the base segment at
    /// `τ′ = τ / D_eff` therefore finds every set whose *live* score can
    /// reach `τ` (`D_eff` adds [`DRIFT_SLACK`] so floating-point error in
    /// the bounds can never cost a result).
    pub(crate) fn widening_factor(self) -> f64 {
        let d = (self.rho_max / self.rho_min).powi(2);
        d.max(1.0) * (1.0 + DRIFT_SLACK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_bounds_are_neutral() {
        let b = DriftBounds::identity();
        assert_eq!(b.rel_err(), 0.0);
        let d = b.widening_factor();
        assert!((1.0..1.0 + 1e-5).contains(&d), "{d}");
    }

    #[test]
    fn rel_err_is_two_sided() {
        let b = DriftBounds {
            rho_min: 0.8,
            rho_max: 1.05,
        };
        assert!((b.rel_err() - 0.2).abs() < 1e-12);
        let b = DriftBounds {
            rho_min: 0.99,
            rho_max: 1.3,
        };
        assert!((b.rel_err() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn widening_factor_is_monotone_in_spread() {
        let tight = DriftBounds {
            rho_min: 0.95,
            rho_max: 1.05,
        };
        let loose = DriftBounds {
            rho_min: 0.5,
            rho_max: 1.5,
        };
        assert!(loose.widening_factor() > tight.widening_factor());
        assert!(tight.widening_factor() > 1.0);
    }
}
