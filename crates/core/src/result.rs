use crate::{SearchStats, SetId};

/// One qualifying set: its id and exact IDF score (≥ τ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    /// The qualifying set.
    pub id: SetId,
    /// Its exact similarity score.
    pub score: f64,
}

/// Whether a search ran to completion or was cut short by a per-query
/// budget (see [`crate::engine::Budget`]).
///
/// A truncated search is still *sound*: every reported match passed its
/// exact score test, so the results are a subset of the true answer —
/// never a silently wrong "exact" result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum SearchStatus {
    /// The algorithm terminated normally; results are exact and complete.
    #[default]
    Complete,
    /// A deadline or access budget expired mid-search; results are an
    /// exact-but-partial subset of the true answer.
    BudgetExceeded,
}

impl SearchStatus {
    /// True if the search ran to completion.
    #[must_use]
    pub fn is_complete(self) -> bool {
        matches!(self, SearchStatus::Complete)
    }
}

/// The outcome of one selection query: qualifying sets plus access
/// statistics. Result order is unspecified (algorithms emit matches as
/// their scores complete); sort by score or id as needed.
#[derive(Debug, Clone, Default)]
pub struct SearchOutcome {
    /// All sets with score ≥ τ.
    pub results: Vec<Match>,
    /// Access counters for this query.
    pub stats: SearchStats,
    /// Completion status (always [`SearchStatus::Complete`] outside the
    /// budgeted engine path).
    pub status: SearchStatus,
}

impl SearchOutcome {
    /// A completed (non-truncated) outcome — the common case for direct
    /// algorithm entry points that do not run under a budget.
    #[must_use]
    pub fn complete(results: Vec<Match>, stats: SearchStats) -> Self {
        Self {
            results,
            stats,
            status: SearchStatus::Complete,
        }
    }

    /// Results sorted by descending score (ties by ascending id).
    pub fn sorted_by_score(mut self) -> Vec<Match> {
        self.results
            .sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
        self.results
    }

    /// Result ids sorted ascending (for set comparison in tests).
    pub fn ids_sorted(&self) -> Vec<SetId> {
        let mut ids: Vec<SetId> = self.results.iter().map(|m| m.id).collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_by_score_orders_descending() {
        let out = SearchOutcome {
            results: vec![
                Match {
                    id: SetId(1),
                    score: 0.5,
                },
                Match {
                    id: SetId(2),
                    score: 0.9,
                },
                Match {
                    id: SetId(3),
                    score: 0.7,
                },
            ],
            stats: SearchStats::default(),
            status: SearchStatus::Complete,
        };
        let sorted = out.sorted_by_score();
        let ids: Vec<u32> = sorted.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, vec![2, 3, 1]);
    }

    #[test]
    fn ids_sorted_ascending() {
        let out = SearchOutcome {
            results: vec![
                Match {
                    id: SetId(9),
                    score: 0.5,
                },
                Match {
                    id: SetId(2),
                    score: 0.9,
                },
            ],
            stats: SearchStats::default(),
            status: SearchStatus::default(),
        };
        assert_eq!(out.ids_sorted(), vec![SetId(2), SetId(9)]);
    }
}
