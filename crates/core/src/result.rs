use crate::{SearchStats, SetId};

/// One qualifying set: its id and exact IDF score (≥ τ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    /// The qualifying set.
    pub id: SetId,
    /// Its exact similarity score.
    pub score: f64,
}

/// The outcome of one selection query: qualifying sets plus access
/// statistics. Result order is unspecified (algorithms emit matches as
/// their scores complete); sort by score or id as needed.
#[derive(Debug, Clone, Default)]
pub struct SearchOutcome {
    /// All sets with score ≥ τ.
    pub results: Vec<Match>,
    /// Access counters for this query.
    pub stats: SearchStats,
}

impl SearchOutcome {
    /// Results sorted by descending score (ties by ascending id).
    pub fn sorted_by_score(mut self) -> Vec<Match> {
        self.results
            .sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
        self.results
    }

    /// Result ids sorted ascending (for set comparison in tests).
    pub fn ids_sorted(&self) -> Vec<SetId> {
        let mut ids: Vec<SetId> = self.results.iter().map(|m| m.id).collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_by_score_orders_descending() {
        let out = SearchOutcome {
            results: vec![
                Match {
                    id: SetId(1),
                    score: 0.5,
                },
                Match {
                    id: SetId(2),
                    score: 0.9,
                },
                Match {
                    id: SetId(3),
                    score: 0.7,
                },
            ],
            stats: SearchStats::default(),
        };
        let sorted = out.sorted_by_score();
        let ids: Vec<u32> = sorted.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, vec![2, 3, 1]);
    }

    #[test]
    fn ids_sorted_ascending() {
        let out = SearchOutcome {
            results: vec![
                Match {
                    id: SetId(9),
                    score: 0.5,
                },
                Match {
                    id: SetId(2),
                    score: 0.9,
                },
            ],
            stats: SearchStats::default(),
        };
        assert_eq!(out.ids_sorted(), vec![SetId(2), SetId(9)]);
    }
}
