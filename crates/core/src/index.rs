use crate::{PreparedQuery, QueryToken, SearchStats, SetCollection, SetId, TokenWeights};
use setsim_collections::{BlockMaxIndex, DenseBitmap, ExtendibleHashMap, SkipList};
use setsim_tokenize::{Token, TokenSet};
use std::collections::HashMap;

/// One inverted-list entry: the pair `⟨s, len(s)⟩` of Section III-B.
///
/// Carrying the set length in the posting is what enables Magnitude
/// Boundedness: after a single sorted access the set's *exact* best-case
/// score is computable, because every other list's contribution
/// `idf(qⱼ)²/(len(s)·len(q))` depends only on `len(s)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posting {
    /// The set containing this list's token.
    pub id: SetId,
    /// `len(s)`, the set's normalized length.
    pub len: f64,
}

/// The physical representation of one token's posting list, selected per
/// list at build/compaction time from list statistics (or forced globally
/// by [`ReprPolicy::Force`]).
///
/// All three answer the same logical accesses — `(len, id)`-ordered
/// scans, length seeks, id membership, id-order enumeration — with
/// bit-identical results; they differ only in the auxiliary structures
/// and therefore in cost. `tests/representation_equivalence.rs` holds all
/// eight algorithms to that contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReprKind {
    /// A fixed-capacity array of at most [`INLINE_CAP`] postings, no
    /// auxiliary structures at all: the long tail of rare q-grams, where
    /// a skip list and a hash directory cost more than the list itself.
    Inline,
    /// The classic sorted run with a sparse skip list and an
    /// extendible-hash id index — the paper's default layout.
    Run,
    /// A dense bitmap over set ids with per-block popcounts plus a
    /// block-max directory over the `(len, id)` run — high-frequency
    /// (low-idf) tokens whose lists cover a large fraction of the record
    /// universe. Membership is a bit test; the id-sorted copy and the
    /// hash index disappear entirely.
    Bitmap,
}

/// How [`InvertedIndex::build`] picks a [`ReprKind`] per list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReprPolicy {
    /// Per-list selection from list statistics (the production default):
    /// lists of at most [`INLINE_CAP`] postings inline; lists with at
    /// least [`BITMAP_MIN_POSTINGS`] postings covering at least
    /// 1/[`BITMAP_DENSITY_DEN`] of the records go dense; everything else
    /// stays a sorted run.
    #[default]
    Adaptive,
    /// Force every list into one representation (differential tests and
    /// ablation experiments).
    Force(ReprKind),
}

/// Maximum postings held inline ([`ReprKind::Inline`]).
pub const INLINE_CAP: usize = 8;

/// Minimum list length for [`ReprKind::Bitmap`] under
/// [`ReprPolicy::Adaptive`].
pub const BITMAP_MIN_POSTINGS: usize = 64;

/// Density denominator for [`ReprKind::Bitmap`] under
/// [`ReprPolicy::Adaptive`]: a list qualifies when it covers at least
/// `1/BITMAP_DENSITY_DEN` of the record universe (so the bitmap's
/// bit-per-record footprint undercuts the 16-byte postings it replaces).
pub const BITMAP_DENSITY_DEN: usize = 16;

/// The representation `policy` assigns to a list of `n` postings over a
/// universe of `num_records` sets.
fn select_repr(n: usize, num_records: usize, policy: ReprPolicy) -> ReprKind {
    match policy {
        ReprPolicy::Force(kind) => kind,
        ReprPolicy::Adaptive => {
            if n <= INLINE_CAP {
                ReprKind::Inline
            } else if n >= BITMAP_MIN_POSTINGS && n * BITMAP_DENSITY_DEN >= num_records {
                ReprKind::Bitmap
            } else {
                ReprKind::Run
            }
        }
    }
}

/// Build options for [`InvertedIndex`].
///
/// Marked non-exhaustive so new knobs can be added without breaking
/// downstream builds: construct via [`IndexOptions::default`] and the
/// `with_*` setters (or functional update syntax off `default()`).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct IndexOptions {
    /// Build a sparse skip list per weight-sorted list (enables O(log n)
    /// length seeks; Figure 9 ablates this).
    pub build_skip_lists: bool,
    /// One skip entry every `skip_stride` postings (the paper caps skip
    /// lists at a small fraction of list size; sparsity is the same knob).
    /// Also the block size of the bitmap representation's block-max
    /// directory.
    pub skip_stride: usize,
    /// Build an extendible-hash id index per list (required by TA/iTA's
    /// random accesses; a large space cost in Figure 5). Only
    /// [`ReprKind::Run`] lists carry a hash — inline lists probe their
    /// few postings directly and bitmap lists answer with a bit test.
    pub build_hash_indexes: bool,
    /// Entries per extendible-hash bucket page.
    pub hash_bucket_capacity: usize,
    /// Build the id-sorted copy of every list (required by the sort-by-id
    /// merge baseline). [`ReprKind::Bitmap`] lists never materialize the
    /// copy: the bitmap itself enumerates ids in order.
    pub build_id_sorted_lists: bool,
    /// Per-list representation selection (see [`ReprPolicy`]).
    pub repr_policy: ReprPolicy,
}

impl Default for IndexOptions {
    fn default() -> Self {
        Self {
            build_skip_lists: true,
            skip_stride: 16,
            build_hash_indexes: true,
            hash_bucket_capacity: 64,
            build_id_sorted_lists: true,
            repr_policy: ReprPolicy::Adaptive,
        }
    }
}

impl IndexOptions {
    /// Toggle skip-list construction.
    #[must_use]
    pub fn with_skip_lists(mut self, on: bool) -> Self {
        self.build_skip_lists = on;
        self
    }

    /// Set the skip-list stride (postings per skip entry).
    #[must_use]
    pub fn with_skip_stride(mut self, stride: usize) -> Self {
        self.skip_stride = stride;
        self
    }

    /// Toggle extendible-hash id indexes (needed by TA/iTA probes).
    #[must_use]
    pub fn with_hash_indexes(mut self, on: bool) -> Self {
        self.build_hash_indexes = on;
        self
    }

    /// Set the extendible-hash bucket page capacity.
    #[must_use]
    pub fn with_hash_bucket_capacity(mut self, capacity: usize) -> Self {
        self.hash_bucket_capacity = capacity;
        self
    }

    /// Toggle the id-sorted list copies (needed by sort-by-id merge).
    #[must_use]
    pub fn with_id_sorted_lists(mut self, on: bool) -> Self {
        self.build_id_sorted_lists = on;
        self
    }

    /// Set the per-list representation policy.
    #[must_use]
    pub fn with_repr_policy(mut self, policy: ReprPolicy) -> Self {
        self.repr_policy = policy;
        self
    }
}

/// A decoded list body handed to [`InvertedIndex::assemble_owned`]:
/// either full `(len, id)`-sorted postings (run/inline page encodings)
/// or bare ascending ids (bitmap pages, whose lengths are recomputed
/// from the collection — the ids must already be validated against the
/// record count).
pub(crate) enum ListPayload {
    /// `(len, id)`-sorted postings.
    Postings(Vec<Posting>),
    /// Strictly ascending set ids; lengths come from the length table.
    Ids(Vec<u32>),
}

/// Posting storage: a fixed inline array for lists that fit
/// [`INLINE_CAP`], a heap vector otherwise. The inline arm is what makes
/// [`ReprKind::Inline`] real — a rare-gram list occupies its slot in the
/// table with no extra allocation.
#[derive(Debug, Clone)]
enum Store {
    Inline { buf: [Posting; INLINE_CAP], len: u8 },
    Heap(Vec<Posting>),
}

const ZERO_POSTING: Posting = Posting {
    id: SetId(0),
    len: 0.0,
};

impl Store {
    /// Empty heap store (the unbuilt / not-applicable placeholder).
    fn empty() -> Self {
        Store::Heap(Vec::new())
    }

    /// Inline when the postings fit, heap otherwise (a *forced* inline
    /// representation on an oversized list spills to the heap but keeps
    /// the inline access paths).
    fn inline_or_heap(v: Vec<Posting>) -> Self {
        if v.len() <= INLINE_CAP {
            let mut buf = [ZERO_POSTING; INLINE_CAP];
            buf[..v.len()].copy_from_slice(&v);
            Store::Inline {
                buf,
                len: v.len() as u8,
            }
        } else {
            Store::Heap(v)
        }
    }

    fn as_slice(&self) -> &[Posting] {
        match self {
            Store::Inline { buf, len } => &buf[..*len as usize],
            Store::Heap(v) => v,
        }
    }
}

/// A token's inverted list behind one of the three [`ReprKind`]
/// representations. The `(len, id)`-ordered postings are always
/// materialized (every algorithm's sorted access reads that order); the
/// representations differ in the auxiliary structures answering seeks,
/// membership probes, and id-order enumeration.
pub struct PostingList {
    repr: ReprKind,
    /// Sorted by `(len, id)` ascending — equivalently by descending
    /// per-token contribution `w`, the order TA/NRA-style algorithms need.
    by_len: Store,
    /// Sorted by id ascending, for the multiway merge baseline. Empty if
    /// not built or if the bitmap enumerates ids instead.
    by_id: Store,
    /// Sparse `(len_bits, id) → offset into by_len` ([`ReprKind::Run`]).
    skip: Option<SkipList<(u64, u32), u32>>,
    /// id membership for random access ([`ReprKind::Run`]).
    hash: Option<ExtendibleHashMap<u32, ()>>,
    /// Dense id membership + id-order enumeration ([`ReprKind::Bitmap`]).
    bitmap: Option<DenseBitmap>,
    /// First `len`-bits per `skip_stride` block of `by_len` — the bitmap
    /// representation's skip layer. The run ascends by `len`, so each
    /// entry bounds its block's best contribution weight
    /// (`w = idf²/(len·len_q)` falls as `len` grows): block-max metadata.
    block_max: Option<BlockMaxIndex>,
}

/// Id-ordered view of a list for the sort-by-id merge: a materialized
/// id-sorted slice, or the bitmap's ascending set bits (lengths come from
/// the index's length table — identical bits, because every posting is
/// constructed from that same table).
pub enum IdPostings<'a> {
    /// Materialized id-sorted postings.
    Slice(&'a [Posting]),
    /// Dense bitmap; enumerate with [`DenseBitmap::iter`].
    Bitmap(&'a DenseBitmap),
}

impl PostingList {
    /// The representation this list was built into.
    pub fn repr(&self) -> ReprKind {
        self.repr
    }

    /// Postings in ascending `(len, id)` order.
    pub fn postings(&self) -> &[Posting] {
        self.by_len.as_slice()
    }

    /// Postings in ascending id order (empty unless built; always empty
    /// for [`ReprKind::Bitmap`], which enumerates via
    /// [`id_postings`](Self::id_postings) instead).
    pub fn postings_by_id(&self) -> &[Posting] {
        self.by_id.as_slice()
    }

    /// Id-ordered view for the merge baseline, or `None` if the index
    /// was built without id-sorted lists (and this list is not a bitmap,
    /// which needs no copy).
    pub fn id_postings(&self) -> Option<IdPostings<'_>> {
        if let Some(bm) = &self.bitmap {
            return Some(IdPostings::Bitmap(bm));
        }
        if self.by_id.as_slice().len() == self.len() {
            return Some(IdPostings::Slice(self.by_id.as_slice()));
        }
        None
    }

    /// The dense bitmap, when this list is [`ReprKind::Bitmap`].
    pub fn bitmap(&self) -> Option<&DenseBitmap> {
        self.bitmap.as_ref()
    }

    /// List length.
    pub fn len(&self) -> usize {
        self.by_len.as_slice().len()
    }

    /// True if the list is empty (never for an indexed token).
    pub fn is_empty(&self) -> bool {
        self.by_len.as_slice().is_empty()
    }

    /// Random-access membership probe (one simulated page I/O). Inline
    /// lists scan their few postings, bitmap lists test one bit, run
    /// lists consult the extendible hash.
    ///
    /// # Panics
    /// Panics if this is a [`ReprKind::Run`] list and the index was built
    /// without hash indexes.
    pub fn contains_id(&self, id: SetId, stats: &mut SearchStats) -> bool {
        stats.random_probes += 1;
        match self.repr {
            ReprKind::Inline => self.by_len.as_slice().iter().any(|p| p.id == id),
            ReprKind::Bitmap => match &self.bitmap {
                Some(bm) => bm.contains(id.0),
                None => unreachable!("bitmap representation always carries its bitmap"),
            },
            ReprKind::Run => {
                let Some(hash) = self.hash.as_ref() else {
                    panic!("random access requires build_hash_indexes")
                };
                hash.contains_key(&id.0)
            }
        }
    }

    /// True if this list supports random access ([`contains_id`]
    /// will not panic). Inline and bitmap lists always do.
    ///
    /// [`contains_id`]: Self::contains_id
    pub fn supports_random_access(&self) -> bool {
        !matches!(self.repr, ReprKind::Run) || self.hash.is_some()
    }

    /// True if this list carries an extendible-hash id index.
    pub fn has_hash_index(&self) -> bool {
        self.hash.is_some()
    }

    /// Offset of the first posting with `len ≥ min_len`.
    ///
    /// With `use_skip` the seek jumps via the list's skip layer — the
    /// sparse skip list for run lists, the block-max directory for bitmap
    /// lists: bypassed postings are counted as `elements_skipped` and
    /// only the ≤ stride postings walked after the jump count as reads.
    /// Without it (or on inline lists, which carry no skip layer), the
    /// prefix is scanned and discarded, every entry counting as a read —
    /// exactly the contrast Figure 9 measures.
    pub fn seek_len(&self, min_len: f64, use_skip: bool, stats: &mut SearchStats) -> usize {
        let postings = self.by_len.as_slice();
        let mut off = 0usize;
        if use_skip {
            if let Some(skip) = &self.skip {
                if let Some((_, &o)) = skip.predecessor(&(min_len.to_bits(), 0)) {
                    off = o as usize;
                    stats.elements_skipped += off as u64;
                }
            } else if let Some(bmx) = &self.block_max {
                if min_len > 0.0 {
                    off = bmx.seek_start(min_len.to_bits());
                    stats.elements_skipped += off as u64;
                }
            }
        }
        while off < postings.len() && postings[off].len < min_len {
            off += 1;
            stats.elements_read += 1;
        }
        off
    }

    /// Offset of the first posting at `from` or later whose `(len, id)`
    /// key is `≥ (len, id)` — the candidate-jump seek behind the block
    /// skipping of SF and iNRA (`AlgoConfig::block_skip`).
    ///
    /// With `use_skip`, the skip layer jumps over whole blocks (charged
    /// to `elements_skipped`) and the remainder is galloped: inspected
    /// postings are charged to `elements_read`, leapt ones to
    /// `elements_skipped`, and the two never double-count — each bypassed
    /// posting is charged exactly once, so
    /// `elements_read + elements_skipped ≤ total_list_elements` holds
    /// across any single pass. Without `use_skip` the gap is walked
    /// element by element, every posting counting as a read.
    pub fn seek_key(
        &self,
        from: usize,
        len: f64,
        id: SetId,
        use_skip: bool,
        stats: &mut SearchStats,
    ) -> usize {
        let postings = self.by_len.as_slice();
        let target = (len.to_bits(), id.0);
        let mut off = from.min(postings.len());
        if !use_skip {
            while off < postings.len() && (postings[off].len.to_bits(), postings[off].id.0) < target
            {
                off += 1;
                stats.elements_read += 1;
            }
            return off;
        }
        if let Some(skip) = &self.skip {
            if let Some((_, &o)) = skip.predecessor(&target) {
                if o as usize > off {
                    stats.elements_skipped += (o as usize - off) as u64;
                    off = o as usize;
                }
            }
        } else if let Some(bmx) = &self.block_max {
            if len > 0.0 {
                let start = bmx.seek_start(len.to_bits());
                if start > off {
                    stats.elements_skipped += (start - off) as u64;
                    off = start;
                }
            }
        }
        let (idx, probes) = setsim_collections::gallop_seek_by(postings, off, |p| {
            (p.len.to_bits(), p.id.0) < target
        });
        // Exact-element accounting: of the `idx - off` postings advanced
        // past, charge the inspected ones as reads (capped by the span so
        // revisited binary-search probes cannot over-count) and the rest
        // as skipped.
        let span = idx - off;
        let reads = span.min(usize::try_from(probes).unwrap_or(usize::MAX));
        stats.elements_read += reads as u64;
        stats.elements_skipped += (span - reads) as u64;
        idx
    }

    /// Footprint of the weight-sorted list under the delta+varint codec
    /// (`setsim_collections::codec`): what this list would occupy on disk
    /// compressed, with seekability preserved by per-block skip keys.
    pub fn compressed_size_bytes(&self) -> usize {
        let entries: Vec<setsim_collections::CodecEntry> = self
            .by_len
            .as_slice()
            .iter()
            .map(|p| setsim_collections::CodecEntry {
                key: p.len.to_bits(),
                id: p.id.0,
            })
            .collect();
        setsim_collections::CompressedList::build(&entries, 128).size_bytes()
    }

    /// Sizes of the list's components in bytes:
    /// `(postings incl. bitmap, skip layer, hash)`. Postings count both
    /// sort orders if built; the bitmap's words and popcount directory
    /// count as postings, the block-max directory as skip layer.
    pub fn size_bytes(&self) -> (usize, usize, usize) {
        let posting = std::mem::size_of::<Posting>();
        let lists = (self.by_len.as_slice().len() + self.by_id.as_slice().len()) * posting
            + self.bitmap.as_ref().map_or(0, DenseBitmap::size_bytes);
        let skip = self
            .skip
            .as_ref()
            .map_or(0, setsim_collections::SkipList::size_bytes)
            + self
                .block_max
                .as_ref()
                .map_or(0, setsim_collections::BlockMaxIndex::size_bytes);
        let hash = self
            .hash
            .as_ref()
            .map_or(0, setsim_collections::ExtendibleHashMap::size_bytes);
        (lists, skip, hash)
    }
}

/// How an [`InvertedIndex`] holds its collection: borrowed from the
/// caller (the in-memory build path) or owned outright (the snapshot
/// load path, which has no caller to borrow from).
enum CollectionHandle<'c> {
    Borrowed(&'c SetCollection),
    Owned(Box<SetCollection>),
}

impl CollectionHandle<'_> {
    #[inline]
    fn get(&self) -> &SetCollection {
        match self {
            CollectionHandle::Borrowed(c) => c,
            CollectionHandle::Owned(c) => c,
        }
    }
}

/// Derive the representation and auxiliary structures of one list from
/// its `(len, id)`-sorted postings. Shared by [`InvertedIndex::build`]
/// and the snapshot load path so both produce bit-identical lists: the
/// selected [`ReprKind`] is a pure function of `(list length,
/// num_records, policy)`, and the id-sorted copy, the skip list (seeded
/// per token, one entry per stride), the extendible-hash id index, the
/// dense bitmap, and the block-max directory are all deterministic
/// functions of the sorted postings alone.
///
/// # Panics
///
/// Panics if the collection holds more than `u32::MAX` records — the
/// bitmap universe (like [`SetId`] itself) is a `u32`.
fn assemble_list(
    token: Token,
    by_len: Vec<Posting>,
    options: &IndexOptions,
    num_records: usize,
) -> PostingList {
    let repr = select_repr(by_len.len(), num_records, options.repr_policy);
    let stride = options.skip_stride.max(1);
    let mut list = PostingList {
        repr,
        by_len: Store::empty(),
        by_id: Store::empty(),
        skip: None,
        hash: None,
        bitmap: None,
        block_max: None,
    };
    match repr {
        ReprKind::Inline => {
            // No auxiliary structures: seeks and probes walk the few
            // postings directly.
            if options.build_id_sorted_lists {
                let mut v = by_len.clone();
                v.sort_by_key(|p| p.id);
                list.by_id = Store::inline_or_heap(v);
            }
            list.by_len = Store::inline_or_heap(by_len);
        }
        ReprKind::Run => {
            if options.build_id_sorted_lists {
                let mut v = by_len.clone();
                v.sort_by_key(|p| p.id);
                list.by_id = Store::Heap(v);
            }
            if options.build_skip_lists {
                let mut sl = SkipList::with_seed(0x51c1_f1ed ^ u64::from(token.0));
                for (off, p) in by_len.iter().enumerate().step_by(stride) {
                    sl.insert((p.len.to_bits(), p.id.0), off as u32);
                }
                list.skip = Some(sl);
            }
            if options.build_hash_indexes {
                let mut h = ExtendibleHashMap::new(options.hash_bucket_capacity);
                for p in &by_len {
                    h.insert(p.id.0, ());
                }
                list.hash = Some(h);
            }
            list.by_len = Store::Heap(by_len);
        }
        ReprKind::Bitmap => {
            // The bitmap subsumes both the hash index (bit-test
            // membership) and the id-sorted copy (ascending set-bit
            // enumeration); the block-max directory is the skip layer.
            let mut ids: Vec<u32> = by_len.iter().map(|p| p.id.0).collect();
            ids.sort_unstable();
            list.bitmap = Some(DenseBitmap::from_sorted_ids(
                &ids,
                u32::try_from(num_records).expect("more than u32::MAX records"), // lint: allow — SetId is a u32, so a collection cannot exceed u32::MAX records; documented in # Panics
            ));
            if options.build_skip_lists {
                list.block_max = Some(BlockMaxIndex::build(
                    by_len.iter().map(|p| p.len.to_bits()),
                    stride,
                ));
            }
            list.by_len = Store::Heap(by_len);
        }
    }
    list
}

/// The inverted-list index of Section III-B.
///
/// One [`PostingList`] per token, each sorted by increasing set length —
/// which, because `len(q)` and `idf(qⁱ)` are constant per list, is exactly
/// decreasing contribution order `w`, making the lists directly usable by
/// TA/NRA-style algorithms.
pub struct InvertedIndex<'c> {
    collection: CollectionHandle<'c>,
    options: IndexOptions,
    weights: TokenWeights,
    lengths: Vec<f64>,
    lists: HashMap<Token, PostingList>,
    total_postings: u64,
}

impl<'c> InvertedIndex<'c> {
    /// Build the index over `collection`.
    pub fn build(collection: &'c SetCollection, options: IndexOptions) -> Self {
        let weights = TokenWeights::compute(collection);
        let lengths: Vec<f64> = collection
            .iter_sets()
            .map(|(_, s)| weights.set_length(s))
            .collect();

        let mut raw: HashMap<Token, Vec<Posting>> = HashMap::new();
        for (id, set) in collection.iter_sets() {
            let len = lengths[id.index()];
            for t in set.iter() {
                raw.entry(t).or_default().push(Posting { id, len });
            }
        }

        let mut total_postings = 0u64;
        let mut lists = HashMap::with_capacity(raw.len());
        for (token, mut postings) in raw {
            total_postings += postings.len() as u64;
            postings.sort_by(|a, b| a.len.total_cmp(&b.len).then(a.id.cmp(&b.id)));
            lists.insert(
                token,
                assemble_list(token, postings, &options, lengths.len()),
            );
        }

        Self {
            collection: CollectionHandle::Borrowed(collection),
            options,
            weights,
            lengths,
            lists,
            total_postings,
        }
    }

    /// Build the index around an **owned** collection. The result borrows
    /// nothing (`'static`), so it can live inside long-lived serving
    /// structures — this is how the segment layer
    /// ([`MutableIndex`](crate::segment::MutableIndex)) materializes its
    /// immutable base segment. Construction is bit-identical to
    /// [`build`](Self::build): same weight computation, same
    /// `(len, id)`-sorted lists, same auxiliary structures.
    pub fn build_owned(
        collection: Box<SetCollection>,
        options: IndexOptions,
    ) -> InvertedIndex<'static> {
        let weights = TokenWeights::compute(&collection);
        Self::build_owned_with_weights(collection, options, weights)
    }

    /// [`build_owned`](Self::build_owned) with an explicit weight table
    /// instead of one computed from `collection`. This is the sharded
    /// build path: each shard indexes only its own sub-collection but
    /// must score with the *global* idf table, or per-shard scores (and
    /// therefore the merged result set) would drift from the unsharded
    /// index. `weights` must cover `collection`'s dictionary.
    pub(crate) fn build_owned_with_weights(
        collection: Box<SetCollection>,
        options: IndexOptions,
        weights: TokenWeights,
    ) -> InvertedIndex<'static> {
        let lengths: Vec<f64> = collection
            .iter_sets()
            .map(|(_, s)| weights.set_length(s))
            .collect();
        let mut raw: HashMap<Token, Vec<Posting>> = HashMap::new();
        for (id, set) in collection.iter_sets() {
            let len = lengths[id.index()];
            for t in set.iter() {
                raw.entry(t).or_default().push(Posting { id, len });
            }
        }
        let mut sorted_lists: Vec<(Token, ListPayload)> = raw
            .into_iter()
            .map(|(t, mut postings)| {
                postings.sort_by(|a, b| a.len.total_cmp(&b.len).then(a.id.cmp(&b.id)));
                (t, ListPayload::Postings(postings))
            })
            .collect();
        sorted_lists.sort_by_key(|(t, _)| *t);
        Self::assemble_owned_with_weights(collection, options, sorted_lists, weights)
    }

    /// Reassemble an index around an owned collection from decoded
    /// list payloads (the snapshot load path). Weights, set lengths, and
    /// every per-list auxiliary structure are recomputed with the same
    /// deterministic code the build path uses, so a loaded index is
    /// bit-identical to the one that was saved. Id-only payloads (bitmap
    /// pages carry no lengths) get their lengths from the recomputed
    /// length table — the same table every built posting is constructed
    /// from.
    pub(crate) fn assemble_owned(
        collection: Box<SetCollection>,
        options: IndexOptions,
        sorted_lists: Vec<(Token, ListPayload)>,
    ) -> InvertedIndex<'static> {
        let weights = TokenWeights::compute(&collection);
        Self::assemble_owned_with_weights(collection, options, sorted_lists, weights)
    }

    /// [`assemble_owned`](Self::assemble_owned) with an explicit weight
    /// table (the sharded snapshot-load path: a reopened shard must score
    /// with the global df table stored in the shard manifest, not one
    /// recomputed from its own sub-collection).
    pub(crate) fn assemble_owned_with_weights(
        collection: Box<SetCollection>,
        options: IndexOptions,
        sorted_lists: Vec<(Token, ListPayload)>,
        weights: TokenWeights,
    ) -> InvertedIndex<'static> {
        let lengths: Vec<f64> = collection
            .iter_sets()
            .map(|(_, s)| weights.set_length(s))
            .collect();
        let mut total_postings = 0u64;
        let mut lists = HashMap::with_capacity(sorted_lists.len());
        for (token, payload) in sorted_lists {
            let postings = match payload {
                ListPayload::Postings(p) => p,
                ListPayload::Ids(ids) => {
                    let mut p: Vec<Posting> = ids
                        .into_iter()
                        .map(|id| Posting {
                            id: SetId(id),
                            len: lengths[id as usize],
                        })
                        .collect();
                    p.sort_by(|a, b| a.len.total_cmp(&b.len).then(a.id.cmp(&b.id)));
                    p
                }
            };
            total_postings += postings.len() as u64;
            lists.insert(
                token,
                assemble_list(token, postings, &options, lengths.len()),
            );
        }
        InvertedIndex {
            collection: CollectionHandle::Owned(collection),
            options,
            weights,
            lengths,
            lists,
            total_postings,
        }
    }

    /// Swap in a fresh set of decoded list payloads, dropping whatever
    /// lists were present. The paged engine's per-query path: collection,
    /// weights, lengths, and options stay fixed (they came from the
    /// snapshot footer once, at open), while the lists hold only the
    /// current query's Theorem 1 windows. Assembly is the same
    /// deterministic [`assemble_list`] the build and load paths use.
    pub(crate) fn replace_lists(&mut self, sorted_lists: Vec<(Token, ListPayload)>) {
        self.lists.clear();
        self.total_postings = 0;
        for (token, payload) in sorted_lists {
            let postings = match payload {
                ListPayload::Postings(p) => p,
                ListPayload::Ids(ids) => {
                    let mut p: Vec<Posting> = ids
                        .into_iter()
                        .map(|id| Posting {
                            id: SetId(id),
                            len: self.lengths[id as usize],
                        })
                        .collect();
                    p.sort_by(|a, b| a.len.total_cmp(&b.len).then(a.id.cmp(&b.id)));
                    p
                }
            };
            self.total_postings += postings.len() as u64;
            self.lists.insert(
                token,
                assemble_list(token, postings, &self.options, self.lengths.len()),
            );
        }
    }

    /// Persist this index as a page-structured, checksummed snapshot file
    /// (see `setsim-storage::snapshot` for the container layout and
    /// DESIGN.md §10 for the full format). Load it back with
    /// [`InvertedIndex::load`] or serve it directly via
    /// [`QueryEngine::open`](crate::QueryEngine::open).
    ///
    /// Fails with [`SnapshotError::Unsupported`] if the collection's
    /// tokenizer has no serializable [`TokenizerSpec`]
    /// (see [`setsim_tokenize::Tokenizer::spec`]).
    ///
    /// [`SnapshotError::Unsupported`]: crate::SnapshotError::Unsupported
    /// [`TokenizerSpec`]: setsim_tokenize::TokenizerSpec
    pub fn save(&self, path: &std::path::Path) -> Result<(), crate::SnapshotError> {
        crate::snapshot::save_index(self, path, crate::snapshot::DEFAULT_PAGE_SIZE)
    }

    /// Like [`save`](Self::save) with an explicit page size (tests and
    /// experiments; the default is
    /// [`DEFAULT_PAGE_SIZE`](crate::snapshot::DEFAULT_PAGE_SIZE)).
    pub fn save_with_page_size(
        &self,
        path: &std::path::Path,
        page_size: usize,
    ) -> Result<(), crate::SnapshotError> {
        crate::snapshot::save_index(self, path, page_size)
    }

    /// Load an index previously written by [`save`](Self::save). The
    /// returned index owns its collection (`'static`), so it can outlive
    /// the call site — the cold-start path behind
    /// [`QueryEngine::open`](crate::QueryEngine::open).
    ///
    /// Every failure mode is a typed [`SnapshotError`]
    /// (bad magic, version mismatch, checksum failure, truncation,
    /// malformed contents); hostile bytes never panic.
    ///
    /// [`SnapshotError`]: crate::SnapshotError
    pub fn load(path: &std::path::Path) -> Result<InvertedIndex<'static>, crate::SnapshotError> {
        crate::snapshot::load_index(path)
    }

    /// The collection this index covers.
    pub fn collection(&self) -> &SetCollection {
        self.collection.get()
    }

    /// Build options used.
    pub fn options(&self) -> &IndexOptions {
        &self.options
    }

    /// Token weights (idf table).
    pub fn weights(&self) -> &TokenWeights {
        &self.weights
    }

    /// `len(s)` for set `id`.
    #[inline]
    pub fn set_len(&self, id: SetId) -> f64 {
        self.lengths[id.index()]
    }

    /// The inverted list of `token`, if the token occurs in the database.
    pub fn list(&self, token: Token) -> Option<&PostingList> {
        self.lists.get(&token)
    }

    /// The inverted list of a prepared-query token. Prepared queries only
    /// retain tokens with lists ([`prepare_query`](Self::prepare_query)
    /// filters the rest), so algorithms use this instead of unwrapping
    /// [`list`](Self::list) at every site.
    ///
    /// # Panics
    /// Panics if `token` has no list — i.e. the query was prepared
    /// against a different index.
    pub(crate) fn query_list(&self, token: Token) -> &PostingList {
        let Some(list) = self.lists.get(&token) else {
            panic!("prepared-query token {token:?} has no inverted list; was the query prepared against this index?")
        };
        list
    }

    /// Iterate `(token, list)` pairs in unspecified order (snapshot save
    /// sorts by token id for a deterministic file).
    pub(crate) fn iter_lists(&self) -> impl Iterator<Item = (Token, &PostingList)> {
        self.lists.iter().map(|(t, l)| (*t, l))
    }

    /// Number of distinct indexed tokens.
    pub fn num_lists(&self) -> usize {
        self.lists.len()
    }

    /// Total postings across all lists.
    pub fn total_postings(&self) -> u64 {
        self.total_postings
    }

    /// Prepare a query from an already-tokenized set plus a count of
    /// tokens that are not in the database dictionary.
    pub fn prepare_query(&self, known: &TokenSet, unknown_tokens: usize) -> PreparedQuery {
        let toks: Vec<QueryToken> = known
            .iter()
            .filter(|t| self.lists.contains_key(t))
            .map(|t| {
                let idf = self.weights.idf(t);
                QueryToken {
                    token: t,
                    idf,
                    idf_sq: idf * idf,
                }
            })
            .collect();
        let unseen = self.weights.unseen_idf();
        // Tokens in the dictionary but absent from every set (possible if
        // the dictionary was shared) behave like unknown tokens.
        let dictionary_only = known.len() - toks.len();
        let unknown_mass = (unknown_tokens + dictionary_only) as f64 * unseen * unseen;
        PreparedQuery::assemble(toks, unknown_mass)
    }

    /// Tokenize `text` with the collection's tokenizer and prepare it.
    pub fn prepare_query_str(&self, text: &str) -> PreparedQuery {
        let (known, unknown) = self.collection.get().tokenize_query(text);
        self.prepare_query(&known, unknown)
    }

    /// Total postings across the lists of `query` (the pruning-power
    /// denominator of Figure 7).
    pub fn query_list_elements(&self, query: &PreparedQuery) -> u64 {
        query
            .tokens
            .iter()
            .filter_map(|t| self.lists.get(&t.token))
            .map(|l| l.len() as u64)
            .sum()
    }

    /// What all weight-sorted lists would occupy compressed on disk
    /// (delta + varint blocks; see [`PostingList::compressed_size_bytes`]).
    pub fn compressed_lists_bytes(&self) -> usize {
        self.lists
            .values()
            .map(PostingList::compressed_size_bytes)
            .sum()
    }

    /// Index size breakdown in bytes:
    /// `(inverted lists, skip lists, hash indexes)`.
    pub fn size_bytes(&self) -> (usize, usize, usize) {
        let mut lists = 0;
        let mut skip = 0;
        let mut hash = 0;
        for l in self.lists.values() {
            let (a, b, c) = l.size_bytes();
            lists += a;
            skip += b;
            hash += c;
        }
        (lists, skip, hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CollectionBuilder;
    use setsim_tokenize::QGramTokenizer;

    fn index_of(texts: &[&str], options: IndexOptions) -> (SetCollection, IndexOptions) {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        b.extend(texts.iter().copied());
        (b.build(), options)
    }

    #[test]
    fn lists_cover_every_posting() {
        let (c, o) = index_of(&["abcd", "bcde", "abce"], IndexOptions::default());
        let idx = InvertedIndex::build(&c, o);
        let total: u64 = idx.lists.values().map(|l| l.len() as u64).sum();
        let expect: u64 = c.iter_sets().map(|(_, s)| s.len() as u64).sum();
        assert_eq!(total, expect);
        assert_eq!(idx.total_postings(), expect);
    }

    #[test]
    fn lists_sorted_by_len_then_id() {
        let (c, o) = index_of(
            &["abcd", "abcdefgh", "abc", "abcdef"],
            IndexOptions::default(),
        );
        let idx = InvertedIndex::build(&c, o);
        for l in idx.lists.values() {
            let p = l.postings();
            for w in p.windows(2) {
                assert!(
                    w[0].len < w[1].len || (w[0].len == w[1].len && w[0].id < w[1].id),
                    "list out of order"
                );
            }
        }
    }

    #[test]
    fn by_id_lists_sorted() {
        let (c, o) = index_of(&["abcd", "bcda", "cdab"], IndexOptions::default());
        let idx = InvertedIndex::build(&c, o);
        for l in idx.lists.values() {
            let p = l.postings_by_id();
            assert_eq!(p.len(), l.len());
            for w in p.windows(2) {
                assert!(w[0].id < w[1].id);
            }
        }
    }

    #[test]
    fn posting_lengths_match_weights() {
        let (c, o) = index_of(&["abcd", "wxyz"], IndexOptions::default());
        let idx = InvertedIndex::build(&c, o);
        for l in idx.lists.values() {
            for p in l.postings() {
                assert_eq!(p.len, idx.set_len(p.id));
                let expect = idx.weights().set_length(c.set(p.id));
                assert_eq!(p.len, expect);
            }
        }
    }

    #[test]
    fn seek_len_with_and_without_skip() {
        // Prefixes of a non-repeating sequence: every string has a distinct
        // gram set and therefore a distinct length.
        let seq = "abcdefghijklmnopqrstuvwxyz".repeat(4);
        let texts: Vec<String> = (3..90).map(|i| seq[..i].to_string()).collect();
        let refs: Vec<&str> = texts.iter().map(std::string::String::as_str).collect();
        let (c, o) = index_of(&refs, IndexOptions::default());
        let idx = InvertedIndex::build(&c, o);
        // Token "abc" occurs in every string; pick its list.
        let t = c.dict().get("abc").unwrap();
        let l = idx.list(t).unwrap();
        let target = l.postings()[l.len() / 2].len;

        let mut with = SearchStats::default();
        let off_skip = l.seek_len(target, true, &mut with);
        let mut without = SearchStats::default();
        let off_lin = l.seek_len(target, false, &mut without);
        assert_eq!(off_skip, off_lin, "seek must land on the same posting");
        assert!(l.postings()[off_skip].len >= target);
        if off_skip > 0 {
            assert!(l.postings()[off_skip - 1].len < target);
        }
        assert!(with.elements_read < without.elements_read);
        assert!(with.elements_skipped > 0);
        assert_eq!(without.elements_read as usize, off_lin);
    }

    #[test]
    fn seek_len_past_end() {
        let (c, o) = index_of(&["abcd", "bcde"], IndexOptions::default());
        let idx = InvertedIndex::build(&c, o);
        let t = c.dict().get("abc").unwrap();
        let l = idx.list(t).unwrap();
        let mut stats = SearchStats::default();
        assert_eq!(l.seek_len(f64::MAX, true, &mut stats), l.len());
    }

    #[test]
    fn hash_membership() {
        let (c, o) = index_of(&["abcd", "bcde", "cdef"], IndexOptions::default());
        let idx = InvertedIndex::build(&c, o);
        let t = c.dict().get("bcd").unwrap();
        let l = idx.list(t).unwrap();
        let mut stats = SearchStats::default();
        assert!(l.contains_id(SetId(0), &mut stats)); // "abcd" has bcd
        assert!(l.contains_id(SetId(1), &mut stats)); // "bcde" has bcd
        assert!(!l.contains_id(SetId(2), &mut stats)); // "cdef" lacks bcd
        assert_eq!(stats.random_probes, 3);
    }

    #[test]
    fn prepare_query_drops_unknown_but_keeps_mass() {
        let (c, o) = index_of(&["abcdef"], IndexOptions::default());
        let idx = InvertedIndex::build(&c, o);
        let clean = idx.prepare_query_str("abcdef");
        let dirty = idx.prepare_query_str("abcxyz");
        assert!(dirty.num_lists() < clean.num_lists());
        assert!(!dirty.is_empty());
        // Unknown grams still weigh the query down.
        assert!(dirty.len > dirty.idf_sq_total.sqrt());
    }

    #[test]
    fn prepare_query_orders_by_idf_desc() {
        let (c, o) = index_of(&["abcd", "abce", "abcf", "zzzz"], IndexOptions::default());
        let idx = InvertedIndex::build(&c, o);
        let q = idx.prepare_query_str("abcdzzzz");
        for w in q.tokens.windows(2) {
            assert!(w[0].idf >= w[1].idf);
        }
    }

    #[test]
    fn empty_query_prepares_empty() {
        let (c, o) = index_of(&["abcd"], IndexOptions::default());
        let idx = InvertedIndex::build(&c, o);
        let q = idx.prepare_query_str("");
        assert!(q.is_empty() || q.num_lists() == 0);
    }

    #[test]
    fn options_disable_structures() {
        let (c, _) = index_of(&["abcd", "bcde"], IndexOptions::default());
        let lean = IndexOptions {
            build_skip_lists: false,
            build_hash_indexes: false,
            build_id_sorted_lists: false,
            ..IndexOptions::default()
        };
        let idx = InvertedIndex::build(&c, lean);
        for l in idx.lists.values() {
            assert!(l.postings_by_id().is_empty());
            assert!(!l.has_hash_index());
            let (_, skip, hash) = l.size_bytes();
            assert_eq!(skip, 0);
            assert_eq!(hash, 0);
        }
    }

    #[test]
    fn compressed_lists_round_trip_and_shrink() {
        let texts: Vec<String> = (0..300).map(|i| format!("record number {i:05}")).collect();
        let refs: Vec<&str> = texts.iter().map(std::string::String::as_str).collect();
        let (c, o) = index_of(&refs, IndexOptions::default());
        let idx = InvertedIndex::build(&c, o);
        // Round trip one list through the codec and compare.
        let t = c.dict().get("rec").unwrap();
        let list = idx.list(t).unwrap();
        let entries: Vec<setsim_collections::CodecEntry> = list
            .postings()
            .iter()
            .map(|p| setsim_collections::CodecEntry {
                key: p.len.to_bits(),
                id: p.id.0,
            })
            .collect();
        let compressed = setsim_collections::CompressedList::build(&entries, 64);
        assert_eq!(compressed.decode_all(), entries);
        // Aggregate: compression must beat the raw 16-byte postings. The
        // f64 length bit patterns make deltas large, so the win is modest
        // but must exist.
        let (raw_both_orders, _, _) = idx.size_bytes();
        assert!(idx.compressed_lists_bytes() < raw_both_orders / 2);
    }

    #[test]
    fn size_breakdown_nonzero() {
        // Force the run representation: adaptively these tiny lists all go
        // inline, which carries no skip or hash structure at all.
        let (c, o) = index_of(
            &["abcd", "bcde", "cdef", "defg"],
            IndexOptions::default().with_repr_policy(ReprPolicy::Force(ReprKind::Run)),
        );
        let idx = InvertedIndex::build(&c, o);
        let (lists, skip, hash) = idx.size_bytes();
        assert!(lists > 0);
        assert!(skip > 0);
        assert!(hash > 0);
    }
}
