use crate::{PreparedQuery, QueryToken, SearchStats, SetCollection, SetId, TokenWeights};
use setsim_collections::{ExtendibleHashMap, SkipList};
use setsim_tokenize::{Token, TokenSet};
use std::collections::HashMap;

/// One inverted-list entry: the pair `⟨s, len(s)⟩` of Section III-B.
///
/// Carrying the set length in the posting is what enables Magnitude
/// Boundedness: after a single sorted access the set's *exact* best-case
/// score is computable, because every other list's contribution
/// `idf(qⱼ)²/(len(s)·len(q))` depends only on `len(s)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posting {
    /// The set containing this list's token.
    pub id: SetId,
    /// `len(s)`, the set's normalized length.
    pub len: f64,
}

/// Build options for [`InvertedIndex`].
///
/// Marked non-exhaustive so new knobs can be added without breaking
/// downstream builds: construct via [`IndexOptions::default`] and the
/// `with_*` setters (or functional update syntax off `default()`).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct IndexOptions {
    /// Build a sparse skip list per weight-sorted list (enables O(log n)
    /// length seeks; Figure 9 ablates this).
    pub build_skip_lists: bool,
    /// One skip entry every `skip_stride` postings (the paper caps skip
    /// lists at a small fraction of list size; sparsity is the same knob).
    pub skip_stride: usize,
    /// Build an extendible-hash id index per list (required by TA/iTA's
    /// random accesses; a large space cost in Figure 5).
    pub build_hash_indexes: bool,
    /// Entries per extendible-hash bucket page.
    pub hash_bucket_capacity: usize,
    /// Build the id-sorted copy of every list (required by the sort-by-id
    /// merge baseline).
    pub build_id_sorted_lists: bool,
}

impl Default for IndexOptions {
    fn default() -> Self {
        Self {
            build_skip_lists: true,
            skip_stride: 16,
            build_hash_indexes: true,
            hash_bucket_capacity: 64,
            build_id_sorted_lists: true,
        }
    }
}

impl IndexOptions {
    /// Toggle skip-list construction.
    #[must_use]
    pub fn with_skip_lists(mut self, on: bool) -> Self {
        self.build_skip_lists = on;
        self
    }

    /// Set the skip-list stride (postings per skip entry).
    #[must_use]
    pub fn with_skip_stride(mut self, stride: usize) -> Self {
        self.skip_stride = stride;
        self
    }

    /// Toggle extendible-hash id indexes (needed by TA/iTA probes).
    #[must_use]
    pub fn with_hash_indexes(mut self, on: bool) -> Self {
        self.build_hash_indexes = on;
        self
    }

    /// Set the extendible-hash bucket page capacity.
    #[must_use]
    pub fn with_hash_bucket_capacity(mut self, capacity: usize) -> Self {
        self.hash_bucket_capacity = capacity;
        self
    }

    /// Toggle the id-sorted list copies (needed by sort-by-id merge).
    #[must_use]
    pub fn with_id_sorted_lists(mut self, on: bool) -> Self {
        self.build_id_sorted_lists = on;
        self
    }
}

/// A token's inverted list in both sort orders plus auxiliary indexes.
pub struct PostingList {
    /// Sorted by `(len, id)` ascending — equivalently by descending
    /// per-token contribution `w`, the order TA/NRA-style algorithms need.
    by_len: Vec<Posting>,
    /// Sorted by id ascending, for the multiway merge baseline. Empty if
    /// not built.
    by_id: Vec<Posting>,
    /// Sparse `(len_bits, id) → offset into by_len`.
    skip: Option<SkipList<(u64, u32), u32>>,
    /// id membership for random access.
    hash: Option<ExtendibleHashMap<u32, ()>>,
}

impl PostingList {
    /// Postings in ascending `(len, id)` order.
    pub fn postings(&self) -> &[Posting] {
        &self.by_len
    }

    /// Postings in ascending id order (empty unless built).
    pub fn postings_by_id(&self) -> &[Posting] {
        &self.by_id
    }

    /// List length.
    pub fn len(&self) -> usize {
        self.by_len.len()
    }

    /// True if the list is empty (never for an indexed token).
    pub fn is_empty(&self) -> bool {
        self.by_len.is_empty()
    }

    /// Random-access membership probe (one simulated page I/O).
    ///
    /// # Panics
    /// Panics if the index was built without hash indexes.
    pub fn contains_id(&self, id: SetId, stats: &mut SearchStats) -> bool {
        let Some(hash) = self.hash.as_ref() else {
            panic!("random access requires build_hash_indexes")
        };
        stats.random_probes += 1;
        hash.contains_key(&id.0)
    }

    /// True if this list supports random access.
    pub fn has_hash_index(&self) -> bool {
        self.hash.is_some()
    }

    /// Offset of the first posting with `len ≥ min_len`.
    ///
    /// With `use_skip` (and a built skip list) the seek jumps via the skip
    /// index: bypassed postings are counted as `elements_skipped` and only
    /// the ≤ stride postings walked after the jump count as reads. Without
    /// it, the prefix is scanned and discarded, every entry counting as a
    /// read — exactly the contrast Figure 9 measures.
    pub fn seek_len(&self, min_len: f64, use_skip: bool, stats: &mut SearchStats) -> usize {
        let mut off = 0usize;
        if use_skip {
            if let Some(skip) = &self.skip {
                if let Some((_, &o)) = skip.predecessor(&(min_len.to_bits(), 0)) {
                    off = o as usize;
                    stats.elements_skipped += off as u64;
                }
            }
        }
        while off < self.by_len.len() && self.by_len[off].len < min_len {
            off += 1;
            stats.elements_read += 1;
        }
        off
    }

    /// Footprint of the weight-sorted list under the delta+varint codec
    /// (`setsim_collections::codec`): what this list would occupy on disk
    /// compressed, with seekability preserved by per-block skip keys.
    pub fn compressed_size_bytes(&self) -> usize {
        let entries: Vec<setsim_collections::CodecEntry> = self
            .by_len
            .iter()
            .map(|p| setsim_collections::CodecEntry {
                key: p.len.to_bits(),
                id: p.id.0,
            })
            .collect();
        setsim_collections::CompressedList::build(&entries, 128).size_bytes()
    }

    /// Sizes of the list's components in bytes: `(postings, skip, hash)`.
    /// Postings count both sort orders if built.
    pub fn size_bytes(&self) -> (usize, usize, usize) {
        let posting = std::mem::size_of::<Posting>();
        let lists = (self.by_len.len() + self.by_id.len()) * posting;
        let skip = self
            .skip
            .as_ref()
            .map_or(0, setsim_collections::SkipList::size_bytes);
        let hash = self
            .hash
            .as_ref()
            .map_or(0, setsim_collections::ExtendibleHashMap::size_bytes);
        (lists, skip, hash)
    }
}

/// How an [`InvertedIndex`] holds its collection: borrowed from the
/// caller (the in-memory build path) or owned outright (the snapshot
/// load path, which has no caller to borrow from).
enum CollectionHandle<'c> {
    Borrowed(&'c SetCollection),
    Owned(Box<SetCollection>),
}

impl CollectionHandle<'_> {
    #[inline]
    fn get(&self) -> &SetCollection {
        match self {
            CollectionHandle::Borrowed(c) => c,
            CollectionHandle::Owned(c) => c,
        }
    }
}

/// Derive the auxiliary structures of one list from its `(len, id)`-sorted
/// postings. Shared by [`InvertedIndex::build`] and the snapshot load
/// path so both produce bit-identical lists: the id-sorted copy, the skip
/// list (seeded per token, one entry per stride), and the extendible-hash
/// id index are all functions of the sorted postings alone.
fn assemble_list(token: Token, by_len: Vec<Posting>, options: &IndexOptions) -> PostingList {
    let by_id = if options.build_id_sorted_lists {
        let mut v = by_len.clone();
        v.sort_by_key(|p| p.id);
        v
    } else {
        Vec::new()
    };
    let skip = if options.build_skip_lists {
        let mut sl = SkipList::with_seed(0x51c1_f1ed ^ u64::from(token.0));
        for (off, p) in by_len
            .iter()
            .enumerate()
            .step_by(options.skip_stride.max(1))
        {
            sl.insert((p.len.to_bits(), p.id.0), off as u32);
        }
        Some(sl)
    } else {
        None
    };
    let hash = if options.build_hash_indexes {
        let mut h = ExtendibleHashMap::new(options.hash_bucket_capacity);
        for p in &by_len {
            h.insert(p.id.0, ());
        }
        Some(h)
    } else {
        None
    };
    PostingList {
        by_len,
        by_id,
        skip,
        hash,
    }
}

/// The inverted-list index of Section III-B.
///
/// One [`PostingList`] per token, each sorted by increasing set length —
/// which, because `len(q)` and `idf(qⁱ)` are constant per list, is exactly
/// decreasing contribution order `w`, making the lists directly usable by
/// TA/NRA-style algorithms.
pub struct InvertedIndex<'c> {
    collection: CollectionHandle<'c>,
    options: IndexOptions,
    weights: TokenWeights,
    lengths: Vec<f64>,
    lists: HashMap<Token, PostingList>,
    total_postings: u64,
}

impl<'c> InvertedIndex<'c> {
    /// Build the index over `collection`.
    pub fn build(collection: &'c SetCollection, options: IndexOptions) -> Self {
        let weights = TokenWeights::compute(collection);
        let lengths: Vec<f64> = collection
            .iter_sets()
            .map(|(_, s)| weights.set_length(s))
            .collect();

        let mut raw: HashMap<Token, Vec<Posting>> = HashMap::new();
        for (id, set) in collection.iter_sets() {
            let len = lengths[id.index()];
            for t in set.iter() {
                raw.entry(t).or_default().push(Posting { id, len });
            }
        }

        let mut total_postings = 0u64;
        let mut lists = HashMap::with_capacity(raw.len());
        for (token, mut postings) in raw {
            total_postings += postings.len() as u64;
            postings.sort_by(|a, b| a.len.total_cmp(&b.len).then(a.id.cmp(&b.id)));
            lists.insert(token, assemble_list(token, postings, &options));
        }

        Self {
            collection: CollectionHandle::Borrowed(collection),
            options,
            weights,
            lengths,
            lists,
            total_postings,
        }
    }

    /// Build the index around an **owned** collection. The result borrows
    /// nothing (`'static`), so it can live inside long-lived serving
    /// structures — this is how the segment layer
    /// ([`MutableIndex`](crate::segment::MutableIndex)) materializes its
    /// immutable base segment. Construction is bit-identical to
    /// [`build`](Self::build): same weight computation, same
    /// `(len, id)`-sorted lists, same auxiliary structures.
    pub fn build_owned(
        collection: Box<SetCollection>,
        options: IndexOptions,
    ) -> InvertedIndex<'static> {
        let weights = TokenWeights::compute(&collection);
        let lengths: Vec<f64> = collection
            .iter_sets()
            .map(|(_, s)| weights.set_length(s))
            .collect();
        let mut raw: HashMap<Token, Vec<Posting>> = HashMap::new();
        for (id, set) in collection.iter_sets() {
            let len = lengths[id.index()];
            for t in set.iter() {
                raw.entry(t).or_default().push(Posting { id, len });
            }
        }
        let mut sorted_lists: Vec<(Token, Vec<Posting>)> = raw.into_iter().collect();
        for (_, postings) in &mut sorted_lists {
            postings.sort_by(|a, b| a.len.total_cmp(&b.len).then(a.id.cmp(&b.id)));
        }
        Self::assemble_owned(collection, options, sorted_lists)
    }

    /// Reassemble an index around an owned collection from decoded
    /// `(len, id)`-sorted posting lists (the snapshot load path).
    /// Weights, set lengths, and every per-list auxiliary structure are
    /// recomputed with the same deterministic code the build path uses,
    /// so a loaded index is bit-identical to the one that was saved.
    pub(crate) fn assemble_owned(
        collection: Box<SetCollection>,
        options: IndexOptions,
        sorted_lists: Vec<(Token, Vec<Posting>)>,
    ) -> InvertedIndex<'static> {
        let weights = TokenWeights::compute(&collection);
        let lengths: Vec<f64> = collection
            .iter_sets()
            .map(|(_, s)| weights.set_length(s))
            .collect();
        let mut total_postings = 0u64;
        let mut lists = HashMap::with_capacity(sorted_lists.len());
        for (token, postings) in sorted_lists {
            total_postings += postings.len() as u64;
            lists.insert(token, assemble_list(token, postings, &options));
        }
        InvertedIndex {
            collection: CollectionHandle::Owned(collection),
            options,
            weights,
            lengths,
            lists,
            total_postings,
        }
    }

    /// Persist this index as a page-structured, checksummed snapshot file
    /// (see `setsim-storage::snapshot` for the container layout and
    /// DESIGN.md §10 for the full format). Load it back with
    /// [`InvertedIndex::load`] or serve it directly via
    /// [`QueryEngine::open`](crate::QueryEngine::open).
    ///
    /// Fails with [`SnapshotError::Unsupported`] if the collection's
    /// tokenizer has no serializable [`TokenizerSpec`]
    /// (see [`setsim_tokenize::Tokenizer::spec`]).
    ///
    /// [`SnapshotError::Unsupported`]: crate::SnapshotError::Unsupported
    /// [`TokenizerSpec`]: setsim_tokenize::TokenizerSpec
    pub fn save(&self, path: &std::path::Path) -> Result<(), crate::SnapshotError> {
        crate::snapshot::save_index(self, path, crate::snapshot::DEFAULT_PAGE_SIZE)
    }

    /// Like [`save`](Self::save) with an explicit page size (tests and
    /// experiments; the default is
    /// [`DEFAULT_PAGE_SIZE`](crate::snapshot::DEFAULT_PAGE_SIZE)).
    pub fn save_with_page_size(
        &self,
        path: &std::path::Path,
        page_size: usize,
    ) -> Result<(), crate::SnapshotError> {
        crate::snapshot::save_index(self, path, page_size)
    }

    /// Load an index previously written by [`save`](Self::save). The
    /// returned index owns its collection (`'static`), so it can outlive
    /// the call site — the cold-start path behind
    /// [`QueryEngine::open`](crate::QueryEngine::open).
    ///
    /// Every failure mode is a typed [`SnapshotError`]
    /// (bad magic, version mismatch, checksum failure, truncation,
    /// malformed contents); hostile bytes never panic.
    ///
    /// [`SnapshotError`]: crate::SnapshotError
    pub fn load(path: &std::path::Path) -> Result<InvertedIndex<'static>, crate::SnapshotError> {
        crate::snapshot::load_index(path)
    }

    /// The collection this index covers.
    pub fn collection(&self) -> &SetCollection {
        self.collection.get()
    }

    /// Build options used.
    pub fn options(&self) -> &IndexOptions {
        &self.options
    }

    /// Token weights (idf table).
    pub fn weights(&self) -> &TokenWeights {
        &self.weights
    }

    /// `len(s)` for set `id`.
    #[inline]
    pub fn set_len(&self, id: SetId) -> f64 {
        self.lengths[id.index()]
    }

    /// The inverted list of `token`, if the token occurs in the database.
    pub fn list(&self, token: Token) -> Option<&PostingList> {
        self.lists.get(&token)
    }

    /// The inverted list of a prepared-query token. Prepared queries only
    /// retain tokens with lists ([`prepare_query`](Self::prepare_query)
    /// filters the rest), so algorithms use this instead of unwrapping
    /// [`list`](Self::list) at every site.
    ///
    /// # Panics
    /// Panics if `token` has no list — i.e. the query was prepared
    /// against a different index.
    pub(crate) fn query_list(&self, token: Token) -> &PostingList {
        let Some(list) = self.lists.get(&token) else {
            panic!("prepared-query token {token:?} has no inverted list; was the query prepared against this index?")
        };
        list
    }

    /// Iterate `(token, list)` pairs in unspecified order (snapshot save
    /// sorts by token id for a deterministic file).
    pub(crate) fn iter_lists(&self) -> impl Iterator<Item = (Token, &PostingList)> {
        self.lists.iter().map(|(t, l)| (*t, l))
    }

    /// Number of distinct indexed tokens.
    pub fn num_lists(&self) -> usize {
        self.lists.len()
    }

    /// Total postings across all lists.
    pub fn total_postings(&self) -> u64 {
        self.total_postings
    }

    /// Prepare a query from an already-tokenized set plus a count of
    /// tokens that are not in the database dictionary.
    pub fn prepare_query(&self, known: &TokenSet, unknown_tokens: usize) -> PreparedQuery {
        let toks: Vec<QueryToken> = known
            .iter()
            .filter(|t| self.lists.contains_key(t))
            .map(|t| {
                let idf = self.weights.idf(t);
                QueryToken {
                    token: t,
                    idf,
                    idf_sq: idf * idf,
                }
            })
            .collect();
        let unseen = self.weights.unseen_idf();
        // Tokens in the dictionary but absent from every set (possible if
        // the dictionary was shared) behave like unknown tokens.
        let dictionary_only = known.len() - toks.len();
        let unknown_mass = (unknown_tokens + dictionary_only) as f64 * unseen * unseen;
        PreparedQuery::assemble(toks, unknown_mass)
    }

    /// Tokenize `text` with the collection's tokenizer and prepare it.
    pub fn prepare_query_str(&self, text: &str) -> PreparedQuery {
        let (known, unknown) = self.collection.get().tokenize_query(text);
        self.prepare_query(&known, unknown)
    }

    /// Total postings across the lists of `query` (the pruning-power
    /// denominator of Figure 7).
    pub fn query_list_elements(&self, query: &PreparedQuery) -> u64 {
        query
            .tokens
            .iter()
            .filter_map(|t| self.lists.get(&t.token))
            .map(|l| l.len() as u64)
            .sum()
    }

    /// What all weight-sorted lists would occupy compressed on disk
    /// (delta + varint blocks; see [`PostingList::compressed_size_bytes`]).
    pub fn compressed_lists_bytes(&self) -> usize {
        self.lists
            .values()
            .map(PostingList::compressed_size_bytes)
            .sum()
    }

    /// Index size breakdown in bytes:
    /// `(inverted lists, skip lists, hash indexes)`.
    pub fn size_bytes(&self) -> (usize, usize, usize) {
        let mut lists = 0;
        let mut skip = 0;
        let mut hash = 0;
        for l in self.lists.values() {
            let (a, b, c) = l.size_bytes();
            lists += a;
            skip += b;
            hash += c;
        }
        (lists, skip, hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CollectionBuilder;
    use setsim_tokenize::QGramTokenizer;

    fn index_of(texts: &[&str], options: IndexOptions) -> (SetCollection, IndexOptions) {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        b.extend(texts.iter().copied());
        (b.build(), options)
    }

    #[test]
    fn lists_cover_every_posting() {
        let (c, o) = index_of(&["abcd", "bcde", "abce"], IndexOptions::default());
        let idx = InvertedIndex::build(&c, o);
        let total: u64 = idx.lists.values().map(|l| l.len() as u64).sum();
        let expect: u64 = c.iter_sets().map(|(_, s)| s.len() as u64).sum();
        assert_eq!(total, expect);
        assert_eq!(idx.total_postings(), expect);
    }

    #[test]
    fn lists_sorted_by_len_then_id() {
        let (c, o) = index_of(
            &["abcd", "abcdefgh", "abc", "abcdef"],
            IndexOptions::default(),
        );
        let idx = InvertedIndex::build(&c, o);
        for l in idx.lists.values() {
            let p = l.postings();
            for w in p.windows(2) {
                assert!(
                    w[0].len < w[1].len || (w[0].len == w[1].len && w[0].id < w[1].id),
                    "list out of order"
                );
            }
        }
    }

    #[test]
    fn by_id_lists_sorted() {
        let (c, o) = index_of(&["abcd", "bcda", "cdab"], IndexOptions::default());
        let idx = InvertedIndex::build(&c, o);
        for l in idx.lists.values() {
            let p = l.postings_by_id();
            assert_eq!(p.len(), l.len());
            for w in p.windows(2) {
                assert!(w[0].id < w[1].id);
            }
        }
    }

    #[test]
    fn posting_lengths_match_weights() {
        let (c, o) = index_of(&["abcd", "wxyz"], IndexOptions::default());
        let idx = InvertedIndex::build(&c, o);
        for l in idx.lists.values() {
            for p in l.postings() {
                assert_eq!(p.len, idx.set_len(p.id));
                let expect = idx.weights().set_length(c.set(p.id));
                assert_eq!(p.len, expect);
            }
        }
    }

    #[test]
    fn seek_len_with_and_without_skip() {
        // Prefixes of a non-repeating sequence: every string has a distinct
        // gram set and therefore a distinct length.
        let seq = "abcdefghijklmnopqrstuvwxyz".repeat(4);
        let texts: Vec<String> = (3..90).map(|i| seq[..i].to_string()).collect();
        let refs: Vec<&str> = texts.iter().map(std::string::String::as_str).collect();
        let (c, o) = index_of(&refs, IndexOptions::default());
        let idx = InvertedIndex::build(&c, o);
        // Token "abc" occurs in every string; pick its list.
        let t = c.dict().get("abc").unwrap();
        let l = idx.list(t).unwrap();
        let target = l.postings()[l.len() / 2].len;

        let mut with = SearchStats::default();
        let off_skip = l.seek_len(target, true, &mut with);
        let mut without = SearchStats::default();
        let off_lin = l.seek_len(target, false, &mut without);
        assert_eq!(off_skip, off_lin, "seek must land on the same posting");
        assert!(l.postings()[off_skip].len >= target);
        if off_skip > 0 {
            assert!(l.postings()[off_skip - 1].len < target);
        }
        assert!(with.elements_read < without.elements_read);
        assert!(with.elements_skipped > 0);
        assert_eq!(without.elements_read as usize, off_lin);
    }

    #[test]
    fn seek_len_past_end() {
        let (c, o) = index_of(&["abcd", "bcde"], IndexOptions::default());
        let idx = InvertedIndex::build(&c, o);
        let t = c.dict().get("abc").unwrap();
        let l = idx.list(t).unwrap();
        let mut stats = SearchStats::default();
        assert_eq!(l.seek_len(f64::MAX, true, &mut stats), l.len());
    }

    #[test]
    fn hash_membership() {
        let (c, o) = index_of(&["abcd", "bcde", "cdef"], IndexOptions::default());
        let idx = InvertedIndex::build(&c, o);
        let t = c.dict().get("bcd").unwrap();
        let l = idx.list(t).unwrap();
        let mut stats = SearchStats::default();
        assert!(l.contains_id(SetId(0), &mut stats)); // "abcd" has bcd
        assert!(l.contains_id(SetId(1), &mut stats)); // "bcde" has bcd
        assert!(!l.contains_id(SetId(2), &mut stats)); // "cdef" lacks bcd
        assert_eq!(stats.random_probes, 3);
    }

    #[test]
    fn prepare_query_drops_unknown_but_keeps_mass() {
        let (c, o) = index_of(&["abcdef"], IndexOptions::default());
        let idx = InvertedIndex::build(&c, o);
        let clean = idx.prepare_query_str("abcdef");
        let dirty = idx.prepare_query_str("abcxyz");
        assert!(dirty.num_lists() < clean.num_lists());
        assert!(!dirty.is_empty());
        // Unknown grams still weigh the query down.
        assert!(dirty.len > dirty.idf_sq_total.sqrt());
    }

    #[test]
    fn prepare_query_orders_by_idf_desc() {
        let (c, o) = index_of(&["abcd", "abce", "abcf", "zzzz"], IndexOptions::default());
        let idx = InvertedIndex::build(&c, o);
        let q = idx.prepare_query_str("abcdzzzz");
        for w in q.tokens.windows(2) {
            assert!(w[0].idf >= w[1].idf);
        }
    }

    #[test]
    fn empty_query_prepares_empty() {
        let (c, o) = index_of(&["abcd"], IndexOptions::default());
        let idx = InvertedIndex::build(&c, o);
        let q = idx.prepare_query_str("");
        assert!(q.is_empty() || q.num_lists() == 0);
    }

    #[test]
    fn options_disable_structures() {
        let (c, _) = index_of(&["abcd", "bcde"], IndexOptions::default());
        let lean = IndexOptions {
            build_skip_lists: false,
            build_hash_indexes: false,
            build_id_sorted_lists: false,
            ..IndexOptions::default()
        };
        let idx = InvertedIndex::build(&c, lean);
        for l in idx.lists.values() {
            assert!(l.postings_by_id().is_empty());
            assert!(!l.has_hash_index());
            let (_, skip, hash) = l.size_bytes();
            assert_eq!(skip, 0);
            assert_eq!(hash, 0);
        }
    }

    #[test]
    fn compressed_lists_round_trip_and_shrink() {
        let texts: Vec<String> = (0..300).map(|i| format!("record number {i:05}")).collect();
        let refs: Vec<&str> = texts.iter().map(std::string::String::as_str).collect();
        let (c, o) = index_of(&refs, IndexOptions::default());
        let idx = InvertedIndex::build(&c, o);
        // Round trip one list through the codec and compare.
        let t = c.dict().get("rec").unwrap();
        let list = idx.list(t).unwrap();
        let entries: Vec<setsim_collections::CodecEntry> = list
            .postings()
            .iter()
            .map(|p| setsim_collections::CodecEntry {
                key: p.len.to_bits(),
                id: p.id.0,
            })
            .collect();
        let compressed = setsim_collections::CompressedList::build(&entries, 64);
        assert_eq!(compressed.decode_all(), entries);
        // Aggregate: compression must beat the raw 16-byte postings. The
        // f64 length bit patterns make deltas large, so the win is modest
        // but must exist.
        let (raw_both_orders, _, _) = idx.size_bytes();
        assert!(idx.compressed_lists_bytes() < raw_both_orders / 2);
    }

    #[test]
    fn size_breakdown_nonzero() {
        let (c, o) = index_of(&["abcd", "bcde", "cdef", "defg"], IndexOptions::default());
        let idx = InvertedIndex::build(&c, o);
        let (lists, skip, hash) = idx.size_bytes();
        assert!(lists > 0);
        assert!(skip > 0);
        assert!(hash > 0);
    }
}
