/// Access counters filled in by every selection algorithm.
///
/// The paper evaluates algorithms on wall-clock time *and* pruning power —
/// "the percentage of words examined over the total number of words"
/// (Figure 7). These counters expose both: `elements_read` is sorted
/// (sequential) access, `random_probes` counts extendible-hash lookups
/// (the TA family's per-element random I/O), and `total_list_elements` is
/// the denominator for [`pruning_pct`](Self::pruning_pct).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SearchStats {
    /// Postings read by sorted access across all of the query's lists.
    pub elements_read: u64,
    /// Random-access probes (extendible hashing lookups) issued.
    pub random_probes: u64,
    /// Postings stepped over by skip-list seeks (never materialized).
    pub elements_skipped: u64,
    /// Candidates ever inserted into the candidate set.
    pub candidates_inserted: u64,
    /// Candidate-set entries visited during bookkeeping scans.
    pub candidate_scan_steps: u64,
    /// Round-robin rounds (breadth-first algorithms) or lists processed
    /// (depth-first algorithms).
    pub rounds: u64,
    /// Base-table records scored directly (full scans and relational
    /// baselines). Kept separate from `elements_read`, which counts only
    /// inverted-list accesses: mixing the two silently broke the pruning
    /// invariant `elements_read ≤ total_list_elements`.
    pub records_scanned: u64,
    /// Total postings across the query's inverted lists — the pruning
    /// denominator.
    pub total_list_elements: u64,
    /// Whole shards skipped by the band table before any of their lists
    /// was touched (sharded indexes only; always 0 on a single index).
    pub shards_pruned: u64,
    /// Postings that were never visited because the entire shard holding
    /// them fell outside the Theorem 1 length window. These elements are
    /// part of `total_list_elements` but are neither read nor skipped —
    /// the third leg of the access partition.
    pub shard_pruned_elements: u64,
    /// Distinct snapshot pages this query faulted through the paged
    /// engine's buffer pool (always 0 on the heap engine). Counts each
    /// page once per query regardless of how many blocks it serves.
    pub pages_touched: u64,
    /// Page faults served from a resident, re-verified pool frame
    /// (paged engine only).
    pub page_cache_hits: u64,
    /// Page faults that read the snapshot file (paged engine only).
    /// Bounded above by the pages inside the query's Theorem 1 window.
    pub page_cache_misses: u64,
}

impl SearchStats {
    /// Percentage of list elements *not* read by sorted access, the
    /// paper's pruning-power metric. 100 means nothing was read.
    ///
    /// Sorted reads can never exceed the denominator; an algorithm that
    /// over-counts (e.g. by charging base-table records to
    /// `elements_read`) is a bug, not something to clamp away. The same
    /// holds for reads and skips together: every list element is either
    /// read, skipped, shard-pruned, or untouched — a seek that charged an
    /// element to both sides (or a jump that re-counted an already-passed
    /// prefix) would break the sum, not just one term. Shard pruning adds
    /// the third leg: postings in a band-skipped shard count toward the
    /// denominator but can never also be read or skipped.
    pub fn pruning_pct(&self) -> f64 {
        debug_assert!(
            self.elements_read <= self.total_list_elements,
            "elements_read ({}) exceeds total_list_elements ({}): \
             an algorithm is over-counting sorted accesses",
            self.elements_read,
            self.total_list_elements
        );
        debug_assert!(
            self.elements_read + self.elements_skipped <= self.total_list_elements,
            "elements_read ({}) + elements_skipped ({}) exceeds \
             total_list_elements ({}): a seek double-charged postings",
            self.elements_read,
            self.elements_skipped,
            self.total_list_elements
        );
        debug_assert!(
            self.elements_read + self.elements_skipped + self.shard_pruned_elements
                <= self.total_list_elements,
            "elements_read ({}) + elements_skipped ({}) + shard_pruned_elements ({}) \
             exceeds total_list_elements ({}): a pruned shard's postings were \
             also charged as visited",
            self.elements_read,
            self.elements_skipped,
            self.shard_pruned_elements,
            self.total_list_elements
        );
        if self.total_list_elements == 0 {
            return 100.0;
        }
        100.0 * (1.0 - self.elements_read as f64 / self.total_list_elements as f64)
    }

    /// Compact JSON object of every counter, in declaration order. All
    /// values are exact integers, so the output is byte-stable for a
    /// given counter state — machine-readable companion to the text
    /// rendering paths (used by the bench report pipeline and
    /// `setsim-cli bench --json`).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"elements_read\":{},\"random_probes\":{},\"elements_skipped\":{},\
             \"candidates_inserted\":{},\"candidate_scan_steps\":{},\"rounds\":{},\
             \"records_scanned\":{},\"total_list_elements\":{},\
             \"shards_pruned\":{},\"shard_pruned_elements\":{},\
             \"pages_touched\":{},\"page_cache_hits\":{},\"page_cache_misses\":{}}}",
            self.elements_read,
            self.random_probes,
            self.elements_skipped,
            self.candidates_inserted,
            self.candidate_scan_steps,
            self.rounds,
            self.records_scanned,
            self.total_list_elements,
            self.shards_pruned,
            self.shard_pruned_elements,
            self.pages_touched,
            self.page_cache_hits,
            self.page_cache_misses,
        )
    }

    /// Merge counters from another search (for workload aggregation).
    pub fn merge(&mut self, other: &SearchStats) {
        self.elements_read += other.elements_read;
        self.random_probes += other.random_probes;
        self.elements_skipped += other.elements_skipped;
        self.candidates_inserted += other.candidates_inserted;
        self.candidate_scan_steps += other.candidate_scan_steps;
        self.rounds += other.rounds;
        self.records_scanned += other.records_scanned;
        self.total_list_elements += other.total_list_elements;
        self.shards_pruned += other.shards_pruned;
        self.shard_pruned_elements += other.shard_pruned_elements;
        self.pages_touched += other.pages_touched;
        self.page_cache_hits += other.page_cache_hits;
        self.page_cache_misses += other.page_cache_misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruning_pct_full_read_is_zero() {
        let s = SearchStats {
            elements_read: 100,
            total_list_elements: 100,
            ..Default::default()
        };
        assert_eq!(s.pruning_pct(), 0.0);
    }

    #[test]
    fn pruning_pct_no_read_is_hundred() {
        let s = SearchStats {
            elements_read: 0,
            total_list_elements: 50,
            ..Default::default()
        };
        assert_eq!(s.pruning_pct(), 100.0);
    }

    #[test]
    fn pruning_pct_empty_lists() {
        let s = SearchStats::default();
        assert_eq!(s.pruning_pct(), 100.0);
    }

    #[test]
    fn pruning_pct_partial() {
        let s = SearchStats {
            elements_read: 25,
            total_list_elements: 100,
            ..Default::default()
        };
        assert!((s.pruning_pct() - 75.0).abs() < 1e-12);
    }

    #[test]
    fn to_json_is_stable_and_complete() {
        let s = SearchStats {
            elements_read: 1,
            random_probes: 2,
            elements_skipped: 3,
            candidates_inserted: 4,
            candidate_scan_steps: 5,
            rounds: 6,
            records_scanned: 7,
            total_list_elements: 8,
            shards_pruned: 9,
            shard_pruned_elements: 10,
            pages_touched: 11,
            page_cache_hits: 12,
            page_cache_misses: 13,
        };
        assert_eq!(
            s.to_json(),
            "{\"elements_read\":1,\"random_probes\":2,\"elements_skipped\":3,\
             \"candidates_inserted\":4,\"candidate_scan_steps\":5,\"rounds\":6,\
             \"records_scanned\":7,\"total_list_elements\":8,\
             \"shards_pruned\":9,\"shard_pruned_elements\":10,\
             \"pages_touched\":11,\"page_cache_hits\":12,\"page_cache_misses\":13}"
        );
        assert_eq!(s.to_json(), s.to_json(), "byte-stable");
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = SearchStats {
            elements_read: 1,
            random_probes: 2,
            elements_skipped: 3,
            candidates_inserted: 4,
            candidate_scan_steps: 5,
            rounds: 6,
            records_scanned: 8,
            total_list_elements: 7,
            shards_pruned: 9,
            shard_pruned_elements: 0,
            pages_touched: 2,
            page_cache_hits: 3,
            page_cache_misses: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.elements_read, 2);
        assert_eq!(a.random_probes, 4);
        assert_eq!(a.records_scanned, 16);
        assert_eq!(a.total_list_elements, 14);
        assert_eq!(a.shards_pruned, 18);
        assert_eq!(a.shard_pruned_elements, 0);
        assert_eq!(a.pages_touched, 4);
        assert_eq!(a.page_cache_hits, 6);
        assert_eq!(a.page_cache_misses, 8);
    }

    #[test]
    #[should_panic(expected = "over-counting")]
    #[cfg(debug_assertions)]
    fn pruning_pct_rejects_overcounted_reads_in_debug() {
        let s = SearchStats {
            elements_read: 101,
            total_list_elements: 100,
            ..Default::default()
        };
        let _ = s.pruning_pct();
    }

    #[test]
    #[should_panic(expected = "double-charged")]
    #[cfg(debug_assertions)]
    fn pruning_pct_rejects_double_charged_seeks_in_debug() {
        // Reads and skips individually within bounds, but their sum says
        // some posting was charged on both sides of a seek.
        let s = SearchStats {
            elements_read: 60,
            elements_skipped: 60,
            total_list_elements: 100,
            ..Default::default()
        };
        let _ = s.pruning_pct();
    }

    #[test]
    fn pruning_pct_accepts_exact_partition() {
        // Every element accounted for exactly once: read + skipped may
        // reach the denominator but never pass it.
        let s = SearchStats {
            elements_read: 40,
            elements_skipped: 60,
            total_list_elements: 100,
            ..Default::default()
        };
        assert!((s.pruning_pct() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn pruning_pct_accepts_shard_pruned_partition() {
        // A pruned shard's postings complete the partition: read +
        // skipped + shard-pruned may reach the denominator exactly.
        let s = SearchStats {
            elements_read: 30,
            elements_skipped: 20,
            shard_pruned_elements: 50,
            shards_pruned: 2,
            total_list_elements: 100,
            ..Default::default()
        };
        assert!((s.pruning_pct() - 70.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "also charged as visited")]
    #[cfg(debug_assertions)]
    fn pruning_pct_rejects_visited_postings_in_pruned_shards_in_debug() {
        // Reads + skips alone fit the denominator, but adding the
        // shard-pruned leg overflows it: some posting was charged both
        // as shard-pruned and as visited.
        let s = SearchStats {
            elements_read: 40,
            elements_skipped: 30,
            shard_pruned_elements: 40,
            shards_pruned: 1,
            total_list_elements: 100,
            ..Default::default()
        };
        let _ = s.pruning_pct();
    }
}
