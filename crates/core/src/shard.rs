//! Length-banded sharding: the N-way scale-out generalization of the
//! segment layer's base+delta layout.
//!
//! Theorem 1 (Length Boundedness) says a record can only match a query
//! `q` at threshold `τ` if its normalized length lies in
//! `[τ·len(q), len(q)/τ]`. The single-index algorithms exploit this *per
//! posting list* (skip-list seeks to the window start); a
//! [`ShardedIndex`] exploits it *per partition*: records are split into
//! N contiguous **length bands** (boundaries chosen from the length
//! histogram so shards hold roughly equal record counts), each band an
//! independent [`InvertedIndex`] over its own sub-collection. At query
//! time the band table is consulted first, so every shard whose whole
//! band falls outside the window is skipped without touching a single
//! posting — charged to [`SearchStats::shards_pruned`] and
//! [`SearchStats::shard_pruned_elements`].
//!
//! # Bit-identical results
//!
//! Three invariants make the scatter-gather result set bit-identical to
//! the unsharded index (enforced by `tests/shard_equivalence.rs`):
//!
//! 1. **Global weights.** Every shard is built with the corpus-global
//!    document-frequency table ([`TokenWeights::from_doc_freqs`]), so
//!    idf values, set lengths, and therefore scores are the exact bits
//!    the unsharded index computes.
//! 2. **Order-preserving query filtering.** A shard sees the global
//!    prepared query restricted to tokens that have lists in it. Every
//!    token shared between the query and any record of the shard
//!    survives the filter, and relative token order is preserved, so the
//!    per-candidate score sum visits the same terms in the same order.
//! 3. **A sound band bound.** For any record `s`,
//!    `I(q, s) ≤ min(len(q)/len(s), len(s)/len(q))`; maximizing over a
//!    band `[lo, hi]` gives the pruning bound used here, and a shard is
//!    only skipped when that bound is *safely below* (`safely_below`)
//!    `τ` — the same one-sided slack every algorithm's emission test
//!    grants, so no borderline match can be lost to banding.

use crate::engine::{execute, Scratch};
use crate::{
    IndexOptions, InvertedIndex, Match, PreparedQuery, QueryToken, SearchError, SearchOutcome,
    SearchRequest, SearchStats, SearchStatus, SetCollection, SetId, SnapshotError, Tau,
    TokenWeights, MAX_QUERY_LISTS,
};
use setsim_storage::manifest::{
    sniff_manifest_magic, ManifestEntry, ShardEntry, ShardManifest, SHARD_MANIFEST_MAGIC,
};
use setsim_tokenize::{Dictionary, TokenMultiSet, TokenSet, TokenizerSpec};
use std::path::Path;

/// The closed interval of normalized set lengths one shard covers
/// (the actual min/max of its records, tighter than the planned cut
/// points).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LengthBand {
    /// Smallest `len(s)` in the shard.
    pub min_len: f64,
    /// Largest `len(s)` in the shard.
    pub max_len: f64,
}

impl LengthBand {
    /// Upper bound on `I(q, s)` for any record `s` in this band, given
    /// `len(q)`. Derived from
    /// `Σ_{t ∈ q∩s} idf² ≤ min(len(q)², len(s)²)`, so
    /// `I ≤ min(len(q)/len(s), len(s)/len(q))`, maximized over the band:
    /// bands entirely below `len(q)` are capped by their upper edge,
    /// bands entirely above by their lower edge, straddling bands by 1.
    #[must_use]
    pub fn score_upper_bound(&self, len_q: f64) -> f64 {
        if len_q <= 0.0 {
            // Degenerate query (no known mass): nothing scores anyway;
            // never prune on its account.
            return 1.0;
        }
        if self.max_len < len_q {
            self.max_len / len_q
        } else if self.min_len > len_q {
            len_q / self.min_len
        } else {
            1.0
        }
    }
}

/// One length band's independent index plus its local→global id map.
pub(crate) struct Shard {
    pub(crate) index: InvertedIndex<'static>,
    /// Global [`SetId`] of local record `i`, ascending.
    pub(crate) ids: Vec<SetId>,
    pub(crate) band: LengthBand,
}

/// Which shards a query must visit at a given threshold, plus the
/// band-pruning counters for everything it may skip.
pub(crate) struct ShardPlan {
    /// `(shard index, query filtered to that shard's lists)` for every
    /// surviving shard, ascending by shard index.
    pub(crate) surviving: Vec<(usize, PreparedQuery)>,
    /// Shards skipped outright by the band table.
    pub(crate) shards_pruned: u64,
    /// Query-list postings inside those skipped shards (counted from
    /// list metadata — no posting is read to compute this).
    pub(crate) shard_pruned_elements: u64,
}

/// Pick band boundaries from the sorted length histogram so shards hold
/// roughly equal record counts. Returns ascending cut points; record of
/// length `l` belongs to band `boundaries.partition_point(|b| b <= l)`.
/// Cut points are deduplicated and never equal the global minimum, so
/// ties stay in one band and no planned band is structurally empty
/// (requesting more shards than distinct lengths yields fewer bands).
pub(crate) fn plan_band_boundaries(lengths: &[f64], num_shards: usize) -> Vec<f64> {
    let shards = num_shards.max(1);
    if lengths.is_empty() || shards == 1 {
        return Vec::new();
    }
    let mut sorted = lengths.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mut boundaries = Vec::with_capacity(shards - 1);
    for k in 1..shards {
        let cut = sorted[k * sorted.len() / shards];
        if cut > sorted[0] && boundaries.last().map_or(true, |&b| cut > b) {
            boundaries.push(cut);
        }
    }
    boundaries
}

/// A corpus partitioned into length-banded shards, searched by
/// band-resolve → scatter → gather. See the module docs for the design
/// and [`crate::engine::ShardedEngine`] for the parallel serving path.
pub struct ShardedIndex {
    /// Empty collection carrying the global dictionary + tokenizer (the
    /// query-tokenization side; no records live here).
    query_side: SetCollection,
    weights: TokenWeights,
    options: IndexOptions,
    num_records: usize,
    shards: Vec<Shard>,
}

impl ShardedIndex {
    /// Shard `collection` into (at most) `num_shards` length bands.
    /// Records are copied; prefer [`build_owned`](Self::build_owned) or
    /// [`build_streaming`](Self::build_streaming) when the collection
    /// can be consumed.
    ///
    /// Fails with [`SnapshotError::Unsupported`] if the collection's
    /// tokenizer has no serializable spec (each shard needs its own
    /// tokenizer instance, and [`save`](Self::save) needs the spec
    /// regardless).
    pub fn build(
        collection: &SetCollection,
        num_shards: usize,
        options: IndexOptions,
    ) -> Result<Self, SnapshotError> {
        let spec = spec_of(collection)?;
        Ok(Self::from_tokenized(
            &spec,
            collection.dict().clone(),
            collection.texts().to_vec(),
            collection.multisets().to_vec(),
            num_shards,
            options,
        ))
    }

    /// Like [`build`](Self::build), but consume the collection and
    /// *move* its records into the shard sub-collections — the corpus is
    /// held once, never duplicated.
    pub fn build_owned(
        collection: SetCollection,
        num_shards: usize,
        options: IndexOptions,
    ) -> Result<Self, SnapshotError> {
        let spec = spec_of(&collection)?;
        let (_tokenizer, dict, texts, multisets) = collection.into_parts();
        Ok(Self::from_tokenized(
            &spec, dict, texts, multisets, num_shards, options,
        ))
    }

    /// Build from a stream of record texts: one tokenize pass
    /// accumulates each record exactly once (text + token multiset) and
    /// the records are then *moved* into per-shard sub-collections. No
    /// global index is ever materialized and the corpus is never held
    /// twice — the ≥10M-record path of the `large` datagen cell.
    ///
    /// # Panics
    /// Panics if the stream outgrows the `u32` id space (the same
    /// contract as [`crate::CollectionBuilder::add`]).
    pub fn build_streaming<I>(
        spec: &TokenizerSpec,
        texts: I,
        num_shards: usize,
        options: IndexOptions,
    ) -> Self
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let tokenizer = spec.build();
        let mut dict = Dictionary::new();
        let mut stored = Vec::new();
        let mut multisets = Vec::new();
        for text in texts {
            assert!(
                u32::try_from(stored.len()).is_ok(),
                "collection overflowed the u32 id space"
            );
            let ms = TokenMultiSet::tokenize(text.as_ref(), tokenizer.as_ref(), &mut dict);
            stored.push(text.as_ref().to_string());
            multisets.push(ms);
        }
        Self::from_tokenized(spec, dict, stored, multisets, num_shards, options)
    }

    /// The shared build core: compute global df/weights/lengths, plan
    /// band boundaries from the length histogram, then move each record
    /// into its band's sub-collection and build the per-shard indexes
    /// with the **global** weight table.
    fn from_tokenized(
        spec: &TokenizerSpec,
        dict: Dictionary,
        mut texts: Vec<String>,
        mut multisets: Vec<TokenMultiSet>,
        num_shards: usize,
        options: IndexOptions,
    ) -> Self {
        let num_records = texts.len();
        let mut df = vec![0u32; dict.len()];
        let mut lengths = Vec::with_capacity(num_records);
        let mut sets = Vec::with_capacity(num_records);
        for ms in &multisets {
            let set = ms.to_set();
            for t in set.iter() {
                df[t.index()] += 1;
            }
            sets.push(set);
        }
        let weights = TokenWeights::from_doc_freqs(num_records, df);
        for set in &sets {
            lengths.push(weights.set_length(set));
        }
        drop(sets);

        let boundaries = plan_band_boundaries(&lengths, num_shards);
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); boundaries.len() + 1];
        for (i, &len) in lengths.iter().enumerate() {
            let band = boundaries.partition_point(|&b| b <= len);
            buckets[band].push(i as u32);
        }

        let mut shards = Vec::new();
        for bucket in &buckets {
            if bucket.is_empty() {
                continue;
            }
            shards.push(Self::build_shard(
                spec,
                &dict,
                &options,
                &weights,
                bucket,
                &lengths,
                &mut texts,
                &mut multisets,
            ));
        }
        if shards.is_empty() {
            // Empty corpus: keep one empty shard so the directory layout
            // (and the dictionary/options round trip) stays uniform.
            shards.push(Self::build_shard(
                spec,
                &dict,
                &options,
                &weights,
                &[],
                &lengths,
                &mut texts,
                &mut multisets,
            ));
        }

        let query_side = SetCollection::from_parts(spec.build(), dict, Vec::new(), Vec::new());
        Self {
            query_side,
            weights,
            options,
            num_records,
            shards,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_shard(
        spec: &TokenizerSpec,
        dict: &Dictionary,
        options: &IndexOptions,
        weights: &TokenWeights,
        bucket: &[u32],
        lengths: &[f64],
        texts: &mut [String],
        multisets: &mut [TokenMultiSet],
    ) -> Shard {
        let mut s_texts = Vec::with_capacity(bucket.len());
        let mut s_multisets = Vec::with_capacity(bucket.len());
        let mut min_len = f64::INFINITY;
        let mut max_len = 0.0f64;
        for &gid in bucket {
            let gi = gid as usize;
            s_texts.push(std::mem::take(&mut texts[gi]));
            s_multisets.push(std::mem::take(&mut multisets[gi]));
            min_len = min_len.min(lengths[gi]);
            max_len = max_len.max(lengths[gi]);
        }
        if bucket.is_empty() {
            min_len = 0.0;
        }
        let sub = SetCollection::from_parts(spec.build(), dict.clone(), s_texts, s_multisets);
        let index = InvertedIndex::build_owned_with_weights(
            Box::new(sub),
            options.clone(),
            weights.clone(),
        );
        Shard {
            index,
            ids: bucket.iter().map(|&g| SetId(g)).collect(),
            band: LengthBand { min_len, max_len },
        }
    }

    /// Number of shards (≤ the requested count: quantile ties collapse).
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total records across all shards.
    #[must_use]
    pub fn num_records(&self) -> usize {
        self.num_records
    }

    /// The length band of every shard, ascending.
    #[must_use]
    pub fn bands(&self) -> Vec<LengthBand> {
        self.shards.iter().map(|s| s.band).collect()
    }

    /// The corpus-global weight table every shard scores with.
    #[must_use]
    pub fn weights(&self) -> &TokenWeights {
        &self.weights
    }

    /// Build options shared by every shard.
    #[must_use]
    pub fn options(&self) -> &IndexOptions {
        &self.options
    }

    pub(crate) fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Map a shard-local match back to its global [`SetId`].
    pub(crate) fn to_global(&self, shard: usize, m: Match) -> Match {
        Match {
            id: self.shards[shard].ids[m.id.index()],
            score: m.score,
        }
    }

    /// Original text of a record by global id (spans all shards).
    #[must_use]
    pub fn text(&self, id: SetId) -> Option<&str> {
        for shard in &self.shards {
            // ids are ascending per shard; binary search locates the
            // record's local id if this shard holds it.
            if let Ok(local) = shard.ids.binary_search(&id) {
                return shard.index.collection().text(SetId(local as u32));
            }
        }
        None
    }

    /// Prepare a query against the global dictionary and weight table —
    /// bit-identical to preparing it on the unsharded index (a token has
    /// a global inverted list iff its document frequency is nonzero).
    #[must_use]
    pub fn prepare_query(&self, known: &TokenSet, unknown_tokens: usize) -> PreparedQuery {
        let toks: Vec<QueryToken> = known
            .iter()
            .filter(|t| self.weights.df(*t) > 0)
            .map(|t| {
                let idf = self.weights.idf(t);
                QueryToken {
                    token: t,
                    idf,
                    idf_sq: idf * idf,
                }
            })
            .collect();
        let unseen = self.weights.unseen_idf();
        let dictionary_only = known.len() - toks.len();
        let unknown_mass = (unknown_tokens + dictionary_only) as f64 * unseen * unseen;
        PreparedQuery::assemble(toks, unknown_mass)
    }

    /// Tokenize `text` with the global tokenizer and prepare it.
    #[must_use]
    pub fn prepare_query_str(&self, text: &str) -> PreparedQuery {
        let (known, unknown) = self.query_side.tokenize_query(text);
        self.prepare_query(&known, unknown)
    }

    /// Validate a request exactly as the single-index engine does, so a
    /// sharded search rejects the same requests with the same errors.
    pub(crate) fn validate(req: &SearchRequest<'_>) -> Result<(), SearchError> {
        if Tau::new(req.tau).is_none() {
            return Err(SearchError::InvalidTau(req.tau));
        }
        if req.algorithm.width_limited() && req.query.num_lists() > MAX_QUERY_LISTS {
            return Err(SearchError::QueryTooWide {
                lists: req.query.num_lists(),
                max: MAX_QUERY_LISTS,
            });
        }
        Ok(())
    }

    /// Resolve the band table: decide per shard whether its whole band is
    /// safely below `tau` (prune — counters only, no posting access) or
    /// must be searched (compute its filtered query).
    pub(crate) fn plan(&self, query: &PreparedQuery, tau: f64) -> ShardPlan {
        let mut surviving = Vec::new();
        let mut shards_pruned = 0u64;
        let mut shard_pruned_elements = 0u64;
        for (i, shard) in self.shards.iter().enumerate() {
            let upper = shard.band.score_upper_bound(query.len);
            if crate::safely_below(upper, tau) {
                shards_pruned += 1;
                // List lengths come from the shard's list directory —
                // metadata, not postings.
                shard_pruned_elements += shard.index.query_list_elements(query);
            } else {
                surviving.push((i, filter_query(&shard.index, query)));
            }
        }
        ShardPlan {
            surviving,
            shards_pruned,
            shard_pruned_elements,
        }
    }

    /// Fold per-shard outcomes (in surviving-shard order) plus the
    /// plan's pruning counters into one global outcome: local ids are
    /// mapped through the shard id tables, stats are summed, the pruned
    /// shards' elements are added to both the denominator and the
    /// shard-pruned leg of the access partition, and the merged status
    /// is `BudgetExceeded` if any shard exceeded its (per-shard) budget.
    pub(crate) fn gather(
        &self,
        plan: &ShardPlan,
        outcomes: Vec<(usize, SearchOutcome)>,
    ) -> SearchOutcome {
        let mut results = Vec::new();
        let mut stats = SearchStats::default();
        let mut status = SearchStatus::Complete;
        for (shard, out) in outcomes {
            results.extend(out.results.into_iter().map(|m| self.to_global(shard, m)));
            stats.merge(&out.stats);
            if !out.status.is_complete() {
                status = out.status;
            }
        }
        stats.shards_pruned += plan.shards_pruned;
        stats.shard_pruned_elements += plan.shard_pruned_elements;
        stats.total_list_elements += plan.shard_pruned_elements;
        SearchOutcome {
            results,
            stats,
            status,
        }
    }

    /// Run one request sequentially across the surviving shards (the
    /// parallel scatter lives in
    /// [`ShardedEngine`](crate::engine::ShardedEngine)). Results are the
    /// unsharded index's matches exactly, in per-shard emission order
    /// with shards ascending by band.
    pub fn search(&self, req: &SearchRequest<'_>) -> Result<SearchOutcome, SearchError> {
        let mut scratch = Scratch::default();
        self.search_with_scratch(&mut scratch, req)
    }

    /// [`search`](Self::search) against a caller-provided warm scratch.
    pub fn search_with_scratch(
        &self,
        scratch: &mut Scratch,
        req: &SearchRequest<'_>,
    ) -> Result<SearchOutcome, SearchError> {
        Self::validate(req)?;
        let plan = self.plan(req.query, req.tau);
        let mut outcomes = Vec::with_capacity(plan.surviving.len());
        for (shard, fq) in &plan.surviving {
            let sreq = SearchRequest {
                query: fq,
                tau: req.tau,
                algorithm: req.algorithm,
                config: req.config,
                budget: req.budget,
            };
            let out = execute(&self.shards[*shard].index, scratch, &sreq)?;
            outcomes.push((*shard, out));
        }
        Ok(self.gather(&plan, outcomes))
    }

    /// True if `dir` holds a sharded-index directory (its `MANIFEST`
    /// carries the shard magic; segment directories have their own).
    #[must_use]
    pub fn exists(dir: &Path) -> bool {
        matches!(sniff_manifest_magic(dir), Ok(m) if m == SHARD_MANIFEST_MAGIC)
    }

    /// Persist the sharded index as a directory: one ordinary snapshot
    /// file per shard (`shard-NNN.snap`) plus a checksummed `MANIFEST`
    /// recording each file's length + CRC32, its length band, its
    /// local→global id table, and the global document-frequency table.
    /// The manifest is written **last**, so a torn save never yields a
    /// readable directory.
    pub fn save(&self, dir: &Path) -> Result<(), SnapshotError> {
        std::fs::create_dir_all(dir)?;
        let mut entries = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            let name = format!("shard-{i:03}.snap");
            let path = dir.join(&name);
            shard.index.save(&path)?;
            entries.push(ShardEntry {
                file: ManifestEntry::describe(&path, &name)?,
                min_len_bits: shard.band.min_len.to_bits(),
                max_len_bits: shard.band.max_len.to_bits(),
                global_ids: shard.ids.iter().map(|id| id.0).collect(),
            });
        }
        ShardManifest {
            num_records: self.num_records as u64,
            doc_freqs: self.weights.doc_freqs().to_vec(),
            shards: entries,
        }
        .write(dir)
    }

    /// Open a directory written by [`save`](Self::save). Every shard
    /// file's length and CRC32 are verified against the manifest before
    /// its bytes are decoded; the global weight table is reconstructed
    /// from the manifest's df table and every shard is assembled with
    /// it. Inconsistencies (id tables that do not partition the record
    /// space, bands out of order, collection/manifest disagreements)
    /// are typed [`SnapshotError`]s, never panics.
    pub fn open(dir: &Path) -> Result<Self, SnapshotError> {
        let manifest = ShardManifest::read(dir)?;
        let num_records = usize::try_from(manifest.num_records)
            .map_err(|_| corrupt("record count overflows usize"))?;
        let weights = TokenWeights::from_doc_freqs(num_records, manifest.doc_freqs);
        if manifest.shards.is_empty() {
            return Err(corrupt("shard manifest lists no shards"));
        }
        let mut seen = vec![false; num_records];
        let mut shards = Vec::with_capacity(manifest.shards.len());
        for entry in &manifest.shards {
            // Length + CRC gate before any decoding, as the segment
            // layer does for its two files.
            entry.file.read_verified(dir)?;
            let index = crate::snapshot::load_index_with_weights(
                &dir.join(&entry.file.name),
                weights.clone(),
            )?;
            if index.collection().len() != entry.global_ids.len() {
                return Err(corrupt(format!(
                    "shard {} holds {} records, manifest says {}",
                    entry.file.name,
                    index.collection().len(),
                    entry.global_ids.len()
                )));
            }
            let mut prev: Option<u32> = None;
            for &gid in &entry.global_ids {
                let slot = seen.get_mut(gid as usize).ok_or_else(|| {
                    corrupt(format!(
                        "shard id {gid} outside the {num_records}-record corpus"
                    ))
                })?;
                if *slot {
                    return Err(corrupt(format!("record {gid} appears in two shards")));
                }
                *slot = true;
                if prev.is_some_and(|p| p >= gid) {
                    return Err(corrupt("shard id table is not strictly ascending"));
                }
                prev = Some(gid);
            }
            let band = LengthBand {
                min_len: f64::from_bits(entry.min_len_bits),
                max_len: f64::from_bits(entry.max_len_bits),
            };
            // Finiteness first: with both edges finite, `>` is NaN-safe.
            if !band.min_len.is_finite()
                || !band.max_len.is_finite()
                || band.min_len > band.max_len
                || band.min_len < 0.0
            {
                return Err(corrupt("shard band is not a valid length interval"));
            }
            shards.push(Shard {
                index,
                ids: entry.global_ids.iter().map(|&g| SetId(g)).collect(),
                band,
            });
        }
        if seen.iter().any(|s| !*s) {
            return Err(corrupt("shard id tables do not cover every record"));
        }
        let first = &shards[0].index;
        let spec = first
            .collection()
            .tokenizer()
            .spec()
            .ok_or_else(|| corrupt("loaded shard has no tokenizer spec"))?;
        let dict = first.collection().dict().clone();
        if dict.len() != weights.doc_freqs().len() {
            return Err(corrupt(format!(
                "dictionary has {} tokens, df table has {}",
                dict.len(),
                weights.doc_freqs().len()
            )));
        }
        let options = first.options().clone();
        let query_side = SetCollection::from_parts(spec.build(), dict, Vec::new(), Vec::new());
        Ok(Self {
            query_side,
            weights,
            options,
            num_records,
            shards,
        })
    }

    /// Per-shard posting totals, ascending by band (diagnostics and the
    /// bench report's scale-out figures).
    #[must_use]
    pub fn shard_postings(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.index.total_postings())
            .collect()
    }
}

/// Restrict the global prepared query to the tokens that have lists in
/// `index`, preserving order (and therefore per-candidate summation
/// order). `len(q)` stays global — it is part of every score's
/// denominator; `idf_sq_total` is recomputed over the kept tokens, a
/// tighter (still sound) bound for the shard's candidates, every one of
/// which can only match kept tokens.
fn filter_query(index: &InvertedIndex<'_>, query: &PreparedQuery) -> PreparedQuery {
    let tokens: Vec<QueryToken> = query
        .tokens
        .iter()
        .filter(|t| index.list(t.token).is_some())
        .copied()
        .collect();
    let idf_sq_total = tokens.iter().map(|t| t.idf_sq).sum();
    PreparedQuery {
        tokens,
        len: query.len,
        idf_sq_total,
    }
}

fn spec_of(collection: &SetCollection) -> Result<TokenizerSpec, SnapshotError> {
    collection
        .tokenizer()
        .spec()
        .ok_or_else(|| SnapshotError::Unsupported {
            detail: "sharding requires a tokenizer with a serializable spec".to_string(),
        })
}

fn corrupt(detail: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt {
        detail: detail.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlgorithmKind, CollectionBuilder};
    use setsim_tokenize::WordTokenizer;

    fn collection(texts: &[&str]) -> SetCollection {
        let mut b = CollectionBuilder::new(WordTokenizer::new().with_lowercase());
        b.extend(texts.iter().copied());
        b.build()
    }

    fn corpus() -> Vec<String> {
        (0..40)
            .map(|i| {
                let mut words = vec![format!("tok{}", i % 7)];
                for j in 0..(i % 5) {
                    words.push(format!("w{i}x{j}"));
                }
                words.join(" ")
            })
            .collect()
    }

    #[test]
    fn boundaries_balance_and_dedup() {
        let lengths = [1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 4.0, 5.0];
        let b = plan_band_boundaries(&lengths, 4);
        assert!(b.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
        assert!(b.iter().all(|&x| x > 1.0), "never cuts at the minimum");
        // One shard or empty input needs no boundaries.
        assert!(plan_band_boundaries(&lengths, 1).is_empty());
        assert!(plan_band_boundaries(&[], 8).is_empty());
        // All-equal lengths collapse to a single band.
        assert!(plan_band_boundaries(&[2.0; 10], 8).is_empty());
    }

    #[test]
    fn sharded_build_partitions_records() {
        let texts = corpus();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let c = collection(&refs);
        let sharded = ShardedIndex::build(&c, 4, IndexOptions::default()).unwrap();
        assert_eq!(sharded.num_records(), texts.len());
        let total: usize = sharded.shards().iter().map(|s| s.ids.len()).sum();
        assert_eq!(total, texts.len());
        // Bands are disjoint and ascending.
        let bands = sharded.bands();
        for w in bands.windows(2) {
            assert!(w[0].max_len < w[1].min_len, "bands must be disjoint");
        }
        // Every record's text is reachable through the global id.
        for (i, t) in texts.iter().enumerate() {
            assert_eq!(sharded.text(SetId(i as u32)), Some(t.as_str()));
        }
    }

    #[test]
    fn sharded_matches_unsharded_and_counts_pruning() {
        let texts = corpus();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let c = collection(&refs);
        let baseline = InvertedIndex::build(&c, IndexOptions::default());
        let sharded = ShardedIndex::build(&c, 8, IndexOptions::default()).unwrap();
        assert!(sharded.num_shards() > 1);
        let mut pruned_somewhere = false;
        for q in ["tok3", "tok1 w8x0", "tok5 w12x1 w12x2"] {
            for tau in [0.5, 0.8, 0.95] {
                let bq = baseline.prepare_query_str(q);
                let sq = sharded.prepare_query_str(q);
                assert_eq!(bq.len.to_bits(), sq.len.to_bits(), "query prep drifted");
                let mut scratch = Scratch::default();
                crate::engine::execute_into(
                    &baseline,
                    &mut scratch,
                    &SearchRequest::new(&bq)
                        .tau(tau)
                        .algorithm(AlgorithmKind::Sf),
                )
                .unwrap();
                let mut expect: Vec<(u32, u64)> = scratch
                    .results()
                    .iter()
                    .map(|m| (m.id.0, m.score.to_bits()))
                    .collect();
                expect.sort_unstable();
                let out = sharded
                    .search(
                        &SearchRequest::new(&sq)
                            .tau(tau)
                            .algorithm(AlgorithmKind::Sf),
                    )
                    .unwrap();
                let mut got: Vec<(u32, u64)> = out
                    .results
                    .iter()
                    .map(|m| (m.id.0, m.score.to_bits()))
                    .collect();
                got.sort_unstable();
                assert_eq!(got, expect, "query {q:?} tau {tau}");
                if out.stats.shards_pruned > 0 {
                    pruned_somewhere = true;
                    assert!(out.stats.shard_pruned_elements > 0 || out.stats.shards_pruned > 0);
                }
                // The partition invariant holds on the merged stats
                // (pruning_pct debug-asserts it).
                let _ = out.stats.pruning_pct();
            }
        }
        assert!(pruned_somewhere, "no query pruned any shard");
    }

    #[test]
    fn save_open_round_trip_preserves_results() {
        let texts = corpus();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let c = collection(&refs);
        let sharded = ShardedIndex::build(&c, 5, IndexOptions::default()).unwrap();
        let dir = std::env::temp_dir().join(format!(
            "setsim-shard-roundtrip-{}-{:p}",
            std::process::id(),
            &texts
        ));
        sharded.save(&dir).unwrap();
        assert!(ShardedIndex::exists(&dir));
        let back = ShardedIndex::open(&dir).unwrap();
        assert_eq!(back.num_shards(), sharded.num_shards());
        assert_eq!(back.num_records(), sharded.num_records());
        let q = sharded.prepare_query_str("tok2 w9x0");
        let q2 = back.prepare_query_str("tok2 w9x0");
        assert_eq!(q.len.to_bits(), q2.len.to_bits());
        let a = sharded.search(&SearchRequest::new(&q).tau(0.5)).unwrap();
        let b = back.search(&SearchRequest::new(&q2).tau(0.5)).unwrap();
        let key = |ms: &[Match]| {
            let mut v: Vec<(u32, u64)> = ms.iter().map(|m| (m.id.0, m.score.to_bits())).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(key(&a.results), key(&b.results));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_corpus_builds_one_empty_shard() {
        let c = collection(&[]);
        let sharded = ShardedIndex::build(&c, 4, IndexOptions::default()).unwrap();
        assert_eq!(sharded.num_shards(), 1);
        let q = sharded.prepare_query_str("anything");
        let out = sharded.search(&SearchRequest::new(&q).tau(0.5)).unwrap();
        assert!(out.results.is_empty());
        assert!(out.status.is_complete());
    }

    #[test]
    fn band_upper_bound_is_sound() {
        let band = LengthBand {
            min_len: 2.0,
            max_len: 4.0,
        };
        assert_eq!(band.score_upper_bound(3.0), 1.0); // straddles
        assert!((band.score_upper_bound(8.0) - 0.5).abs() < 1e-12); // below
        assert!((band.score_upper_bound(1.0) - 0.5).abs() < 1e-12); // above
        assert_eq!(band.score_upper_bound(0.0), 1.0); // degenerate query
    }

    #[test]
    fn open_rejects_damaged_directories() {
        let texts = corpus();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let c = collection(&refs);
        let sharded = ShardedIndex::build(&c, 3, IndexOptions::default()).unwrap();
        let dir = std::env::temp_dir().join(format!(
            "setsim-shard-damage-{}-{:p}",
            std::process::id(),
            &texts
        ));
        sharded.save(&dir).unwrap();
        // Flip a byte in the middle of a shard file: the manifest's CRC
        // gate must reject it before decoding.
        let victim = dir.join("shard-001.snap");
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&victim, &bytes).unwrap();
        assert!(matches!(
            ShardedIndex::open(&dir),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
