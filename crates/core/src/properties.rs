//! The semantic properties of the IDF measure (Section IV).
//!
//! These three properties are what separate the paper's algorithms from
//! plain TA/NRA:
//!
//! * **Property 1 — Order Preservation.** Lists are sorted by `len(s)`,
//!   which is constant across lists, so two sets keep their relative order
//!   in every list. If `len(s) < len(fᵢ)` (the frontier of list `i`) and
//!   `s` has not been seen in list `i`, then `s` is *not* in list `i`.
//! * **Property 2 — Magnitude Boundedness.** After one sighting, `len(s)`
//!   is known and the exact best-case score `Σᵢ idf(qᵢ)²/(len(s)·len(q))`
//!   is computable — a tight upper bound, unlike NRA's frontier sums.
//! * **Theorem 1 — Length Boundedness.** `I(q,s) ≥ τ` implies
//!   `τ·len(q) ≤ len(s) ≤ len(q)/τ`, so whole list prefixes and suffixes
//!   can be skipped outright.
//!
//! This module provides the arithmetic; the algorithms apply it.

use crate::PreparedQuery;

/// A similarity threshold validated to lie in `(0, 1]`.
///
/// The IDF measure is normalized to `[0, 1]`, so a threshold outside
/// `(0, 1]` can never be meaningful: `τ ≤ 0` admits every set (and
/// divides by zero in [`length_bounds`]), `τ > 1` admits none. Code that
/// accepts thresholds from untrusted input (CLI flags, query parsers)
/// should go through [`Tau::new`] once at the boundary and pass the
/// validated value inward, instead of relying on the `debug_assert!`
/// contract of the raw-`f64` helpers below.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Tau(f64);

impl Tau {
    /// Validate `tau`, returning `None` unless `0 < tau ≤ 1` and finite.
    pub fn new(tau: f64) -> Option<Self> {
        (tau > 0.0 && tau <= 1.0 && tau.is_finite()).then_some(Self(tau))
    }

    /// The validated threshold value.
    #[inline]
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }
}

/// Theorem 1: the inclusive `len(s)` window `[τ·len(q), len(q)/τ]` any
/// qualifying set must fall in. The bounds are tight (cases `q∩s = q` and
/// `q∩s = s` attain them).
///
/// # Contract
/// `tau` must lie in `(0, 1]` ([`Tau::new`] checks this); outside that
/// range the window is meaningless — `tau = 0` divides by zero — and
/// debug builds panic.
#[inline]
pub fn length_bounds(tau: f64, len_q: f64) -> (f64, f64) {
    debug_assert!(
        tau > 0.0 && tau <= 1.0 && tau.is_finite(),
        "length_bounds requires tau in (0, 1], got {tau}"
    );
    (tau * len_q, len_q / tau)
}

/// Magnitude Boundedness: the best-case score of a set with length
/// `len_s`, assuming it appears in every list whose combined `idf²` mass
/// is `idf_sq_sum`.
#[inline]
pub fn max_score(idf_sq_sum: f64, len_s: f64, len_q: f64) -> f64 {
    idf_sq_sum / (len_s * len_q)
}

/// The λᵢ cutoffs of the SF algorithm (Equation 2): with lists in
/// descending idf order, `λᵢ = Σ_{j ≥ i} idf(qʲ)² / (τ·len(q))` is the
/// largest length a *new* candidate first discovered in list `i` can have.
/// Monotonically non-increasing; `λ₁ = len(q)/τ`.
///
/// # Contract
/// `tau` must lie in `(0, 1]` ([`Tau::new`] checks this); `tau = 0`
/// would divide by zero and `tau` outside `(0, 1]` yields cutoffs with
/// no pruning meaning. Debug builds panic on violation.
pub fn lambda_cutoffs(query: &PreparedQuery, tau: f64) -> Vec<f64> {
    let suffix = query.idf_sq_suffix_sums();
    let mut out = Vec::with_capacity(query.num_lists());
    lambda_cutoffs_into(query, tau, &suffix, &mut out);
    out
}

/// Allocation-free λᵢ computation from precomputed suffix sums (see
/// [`crate::PreparedQuery::idf_sq_suffix_sums_into`]): fills `out`
/// (cleared first) reusing its capacity. Used by the engine's
/// reusable-scratch search path.
///
/// # Contract
/// Same as [`lambda_cutoffs`]; additionally `suffix` must have at least
/// `query.num_lists()` entries.
pub fn lambda_cutoffs_into(query: &PreparedQuery, tau: f64, suffix: &[f64], out: &mut Vec<f64>) {
    debug_assert!(
        tau > 0.0 && tau <= 1.0 && tau.is_finite(),
        "lambda_cutoffs requires tau in (0, 1], got {tau}"
    );
    out.clear();
    out.extend(
        suffix[..query.num_lists()]
            .iter()
            .map(|&s| s / (tau * query.len)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PreparedQuery, QueryToken};
    use setsim_tokenize::Token;

    fn q(idfs: &[f64]) -> PreparedQuery {
        let toks = idfs
            .iter()
            .enumerate()
            .map(|(i, &idf)| QueryToken {
                token: Token(i as u32),
                idf,
                idf_sq: idf * idf,
            })
            .collect();
        PreparedQuery::assemble(toks, 0.0)
    }

    #[test]
    fn bounds_are_symmetric_around_len_q() {
        let (lo, hi) = length_bounds(0.5, 10.0);
        assert_eq!((lo, hi), (5.0, 20.0));
        let (lo, hi) = length_bounds(1.0, 10.0);
        assert_eq!((lo, hi), (10.0, 10.0));
    }

    #[test]
    fn paper_example_lambdas() {
        // Section VI works the Figure 3 example with idf(q1)=15:
        // idf² = 225, 180, 45; len(q) = 21.21; τ = 1 →
        // λ1 = 21.21, λ2 = 10.6, λ3 = 2.12.
        let pq = q(&[15.0, 180f64.sqrt(), 45f64.sqrt()]);
        assert!((pq.len - 21.213).abs() < 1e-2);
        let l = lambda_cutoffs(&pq, 1.0);
        assert!((l[0] - 21.21).abs() < 1e-2, "λ1 = {}", l[0]);
        assert!((l[1] - 10.61).abs() < 1e-2, "λ2 = {}", l[1]);
        assert!((l[2] - 2.12).abs() < 1e-2, "λ3 = {}", l[2]);
    }

    #[test]
    fn lambdas_monotone_and_first_equals_upper_bound() {
        let pq = q(&[4.0, 3.0, 2.0, 1.0]);
        for tau in [0.3, 0.6, 0.9, 1.0] {
            let l = lambda_cutoffs(&pq, tau);
            for w in l.windows(2) {
                assert!(w[0] >= w[1], "λ must be non-increasing");
            }
            let (_, hi) = length_bounds(tau, pq.len);
            assert!((l[0] - hi).abs() < 1e-9, "λ1 = len(q)/τ");
        }
    }

    #[test]
    fn max_score_matches_definition() {
        assert!((max_score(50.0, 5.0, 2.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn max_score_decreases_with_length() {
        assert!(max_score(10.0, 2.0, 1.0) > max_score(10.0, 4.0, 1.0));
    }

    #[test]
    fn tau_constructor_accepts_only_unit_interval() {
        assert!(Tau::new(0.5).is_some());
        assert!(Tau::new(1.0).is_some());
        assert!(Tau::new(f64::MIN_POSITIVE).is_some());
        assert_eq!(Tau::new(0.75).map(Tau::get), Some(0.75));
        for bad in [0.0, -0.1, 1.0 + 1e-9, f64::NAN, f64::INFINITY, -1.0] {
            assert!(Tau::new(bad).is_none(), "Tau::new({bad}) should reject");
        }
    }

    #[test]
    #[should_panic(expected = "requires tau in (0, 1]")]
    #[cfg(debug_assertions)]
    fn length_bounds_rejects_zero_tau_in_debug() {
        let _ = length_bounds(0.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "requires tau in (0, 1]")]
    #[cfg(debug_assertions)]
    fn lambda_cutoffs_rejects_oversized_tau_in_debug() {
        let pq = q(&[2.0, 1.0]);
        let _ = lambda_cutoffs(&pq, 1.5);
    }
}
