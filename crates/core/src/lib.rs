//! Set similarity selection queries over inverted lists.
//!
//! This crate implements the primary contribution of *"Fast Indexes and
//! Algorithms for Set Similarity Selection Queries"* (ICDE 2008):
//!
//! * the **IDF similarity measure** (length-normalized TF/IDF with the term
//!   frequency component dropped) and its companions TF/IDF, BM25, BM25′
//!   (see [`measures`]);
//! * the **semantic properties** of IDF — Order Preservation, Magnitude
//!   Boundedness, and Length Boundedness (Theorem 1) — in [`properties`];
//! * an **inverted index** whose lists are sorted by normalized set length
//!   (equivalently, descending per-token contribution), with optional skip
//!   lists for length seeks and extendible-hash id indexes for random
//!   access ([`InvertedIndex`]);
//! * **eight selection algorithms** sharing one interface
//!   ([`SelectionAlgorithm`]): full scan, sort-by-id multiway merge, the
//!   classic TA and NRA, the improved iTA and iNRA, the Shortest-First
//!   (SF) algorithm, and the Hybrid algorithm; plus a relational (SQL)
//!   baseline in [`algorithms::sql`];
//! * extensions the paper lists as future work: **top-k** variants
//!   ([`algorithms::topk`]) and **parallel batch execution**
//!   ([`algorithms::parallel`]);
//! * a **serving layer** ([`engine`]): a persistent [`QueryEngine`] that
//!   reuses per-worker scratch memory across queries, executes batches
//!   with a work-stealing thread pool, enforces per-query budgets
//!   (deadline / max element accesses), and aggregates latency and
//!   pruning metrics — all behind the [`SearchRequest`] builder API;
//! * **persistent snapshots** ([`snapshot`]): `InvertedIndex::save` /
//!   `InvertedIndex::load` serialize the index into a page-structured,
//!   CRC-checksummed file, and [`QueryEngine::open`] cold-starts a
//!   serving engine from one with typed [`SnapshotError`]s — never a
//!   panic — on damaged files.
//!
//! # The problem
//!
//! Given a database `D` of token sets and a query set `q`, return every
//! `s ∈ D` with `I(q, s) ≥ τ`, where
//!
//! ```text
//! idf(t)  = log2(1 + N / N(t))
//! len(s)  = sqrt( Σ_{t ∈ s} idf(t)² )
//! I(q, s) = Σ_{t ∈ q ∩ s} idf(t)² / (len(s) · len(q))
//! ```
//!
//! # Quickstart
//!
//! ```
//! use setsim_core::{AlgorithmKind, CollectionBuilder, IndexOptions,
//!                   InvertedIndex, QueryEngine, SearchRequest};
//! use setsim_tokenize::QGramTokenizer;
//!
//! let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
//! for s in ["main street", "main st", "maine street", "park avenue"] {
//!     b.add(s);
//! }
//! let collection = b.build();
//! let index = InvertedIndex::build(&collection, IndexOptions::default());
//! let mut engine = QueryEngine::new(index);
//! let query = engine.prepare_query_str("main street");
//! let out = engine
//!     .search(SearchRequest::new(&query).tau(0.5).algorithm(AlgorithmKind::Sf))
//!     .expect("valid request");
//! assert!(out
//!     .results
//!     .iter()
//!     .any(|m| collection.text(m.id) == Some("main street")));
//! ```

pub mod algorithms;
pub mod api;
#[cfg(feature = "audit")]
pub mod audit;
mod collection;
pub mod engine;
mod index;
pub mod measures;
pub mod properties;
mod query;
mod result;
pub mod segment;
pub mod shard;
pub mod snapshot;
mod stats;
pub mod tfsearch;
mod weights;

pub use algorithms::{
    AlgoConfig, FullScan, HybridAlgorithm, INraAlgorithm, ITaAlgorithm, NraAlgorithm,
    SelectionAlgorithm, SfAlgorithm, SortByIdMerge, TaAlgorithm, MAX_QUERY_LISTS,
};
pub use api::{
    ErrorCode, SearchCall, SearchReply, WireError, WireMatch, WireRequest, WireResponse, WireStats,
    PROTOCOL_VERSION,
};
pub use collection::{CollectionBuilder, SetCollection, SetId};
pub use engine::{
    AlgorithmKind, Budget, EngineMetrics, MetricsSnapshot, PagedEngine, PagedSearchError,
    QueryEngine, Scratch, SearchError, SearchRequest, SearchView, ShardedEngine,
};
pub use index::{
    IdPostings, IndexOptions, InvertedIndex, Posting, PostingList, ReprKind, ReprPolicy,
    BITMAP_DENSITY_DEN, BITMAP_MIN_POSTINGS, INLINE_CAP,
};
pub use properties::Tau;
pub use query::{PreparedQuery, QueryToken};
pub use result::{Match, SearchOutcome, SearchStatus};
pub use segment::{
    DriftBudget, MutableEngine, MutableIndex, MutableMatch, MutableOutcome, MutableQuery,
    MutableSearchRequest, RecordId,
};
pub use setsim_storage::{SnapshotError, SnapshotRegion};
pub use shard::{LengthBand, ShardedIndex};
pub use stats::SearchStats;
pub use weights::TokenWeights;

/// Relative slack used in pruning and boundary comparisons so that
/// floating-point summation order can never cause a true result to be
/// pruned. All slack is one-sided: it may keep a borderline candidate a
/// little longer, never discard one early.
pub(crate) const EPS_REL: f64 = 1e-9;

/// True if `upper` is strictly below `tau` even after granting the
/// floating-point slack — i.e. it is safe to prune.
#[inline]
pub(crate) fn safely_below(upper: f64, tau: f64) -> bool {
    upper < tau - tau.abs() * EPS_REL - 1e-12
}

/// True if a completed score qualifies for reporting. The complement of
/// [`safely_below`]: a score within floating-point slack of `tau` passes,
/// so an exact match (whose score is 1 up to summation order) is always
/// reported at `tau = 1` regardless of which algorithm summed it.
#[inline]
pub(crate) fn passes(score: f64, tau: f64) -> bool {
    !safely_below(score, tau)
}

/// Validate a selection threshold. The IDF score is normalized to `[0, 1]`,
/// so thresholds outside `(0, 1]` are programming errors.
#[inline]
pub(crate) fn validate_tau(tau: f64) {
    assert!(
        tau > 0.0 && tau <= 1.0 && tau.is_finite(),
        "threshold must lie in (0, 1], got {tau}"
    );
}
