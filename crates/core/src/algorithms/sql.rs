//! The relational (SQL) baseline of Section III-A.
//!
//! The database of sets is materialized as a q-gram table in First Normal
//! Form — one row per `(id, token, len, weight)` with
//! `weight = idf(token)²/len(s)` — under a clustered composite B+-tree on
//! `(token, len, id)`. A similarity selection is then the plan
//!
//! ```sql
//! SELECT Q.id, SUM(Q.weight) AS partial
//! FROM   qgrams Q
//! WHERE  Q.token IN (q¹ … qⁿ)
//!   AND  Q.len BETWEEN τ·len(q) AND len(q)/τ   -- Length Boundedness
//! GROUP  BY Q.id
//! HAVING SUM(Q.weight) ≥ τ·len(q)
//! ```
//!
//! executed as one clustered index range scan per query token feeding a
//! hash aggregate. The `len` predicate is pushed into the index scan —
//! this is how "existing solutions take advantage of semantic properties"
//! and what Figure 8 switches off for the SQL NLB variant.

use crate::{
    properties, validate_tau, Match, PreparedQuery, SearchOutcome, SearchStats, SetCollection,
    SetId, TokenWeights,
};
use setsim_relational::{exec, ColumnType, Schema, Table, TableIndex, Value};

/// The materialized q-gram table plus its clustered index.
pub struct SqlBaseline {
    table: Table,
    index: TableIndex,
    /// Rows scanned and aggregated are counted per query.
    length_bounding: bool,
}

impl SqlBaseline {
    /// Materialize the q-gram table and clustered index for `collection`.
    pub fn build(collection: &SetCollection, weights: &TokenWeights) -> Self {
        Self::build_with(collection, weights, true, 64)
    }

    /// As [`build`](Self::build), with the Length Boundedness pushdown
    /// toggleable and the B+-tree branching factor exposed.
    pub fn build_with(
        collection: &SetCollection,
        weights: &TokenWeights,
        length_bounding: bool,
        branching: usize,
    ) -> Self {
        let schema = Schema::new(vec![
            ("id", ColumnType::Int),
            ("token", ColumnType::Int),
            ("len", ColumnType::Float),
            ("weight", ColumnType::Float),
        ]);
        let mut table = Table::new("qgrams", schema);
        for (id, set) in collection.iter_sets() {
            let len = weights.set_length(set);
            if len == 0.0 {
                continue;
            }
            for t in set.iter() {
                let idf = weights.idf(t);
                table.insert(vec![
                    Value::Int(i64::from(id.0)),
                    Value::Int(i64::from(t.0)),
                    Value::Float(len),
                    Value::Float(idf * idf / len),
                ]);
            }
        }
        let index = TableIndex::build(&table, &["token", "len", "id"], branching);
        Self {
            table,
            index,
            length_bounding,
        }
    }

    /// Run the similarity selection plan.
    pub fn search(&self, query: &PreparedQuery, tau: f64) -> SearchOutcome {
        validate_tau(tau);
        let mut stats = SearchStats::default();
        let mut results = Vec::new();
        if query.is_empty() {
            return SearchOutcome::complete(results, stats);
        }
        let (len_lo, len_hi) = properties::length_bounds(tau, query.len);
        let lo = len_lo * (1.0 - crate::EPS_REL);
        let hi = len_hi * (1.0 + crate::EPS_REL);

        // One clustered range scan per query token, unioned (the IN-list).
        let mut scanned: Vec<setsim_relational::Row> = Vec::new();
        for qt in &query.tokens {
            let token = i64::from(qt.token.0);
            let (scan_lo, scan_hi): (Vec<Value>, Vec<Value>) = if self.length_bounding {
                (
                    vec![Value::Int(token), Value::Float(lo)],
                    vec![Value::Int(token), Value::Float(hi)],
                )
            } else {
                (vec![Value::Int(token)], vec![Value::Int(token)])
            };
            for row in exec::index_range_scan(&self.table, &self.index, &scan_lo, &scan_hi) {
                stats.elements_read += 1;
                scanned.push(row);
            }
            stats.total_list_elements += self
                .index
                .range_scan(&[Value::Int(token)], &[Value::Int(token)])
                .len() as u64;
        }

        // GROUP BY id, SUM(weight); HAVING SUM ≥ τ·len(q).
        let aggregated = exec::hash_aggregate_sum(scanned.into_iter(), 0, 3);
        for row in aggregated {
            let partial = row[1].as_float();
            let score = partial / query.len;
            if crate::passes(score, tau) {
                let Ok(id) = u32::try_from(row[0].as_int()) else {
                    unreachable!("set ids originate from u32")
                };
                results.push(Match {
                    id: SetId(id),
                    score,
                });
            }
        }
        SearchOutcome::complete(results, stats)
    }

    /// Rows in the q-gram table.
    pub fn num_rows(&self) -> usize {
        self.table.len()
    }

    /// Sizes in bytes: `(q-gram table, clustered B+-tree)` (Figure 5).
    pub fn size_bytes(&self) -> (usize, usize) {
        (self.table.size_bytes(), self.index.size_bytes())
    }

    /// A static rendering of the plan's SQL, for documentation and logs.
    pub fn sql_text(&self) -> &'static str {
        "SELECT Q.id, SUM(Q.weight) FROM qgrams Q \
         WHERE Q.token IN (?) AND Q.len BETWEEN ? AND ? \
         GROUP BY Q.id HAVING SUM(Q.weight) >= ?"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{FullScan, SelectionAlgorithm};
    use crate::{CollectionBuilder, IndexOptions, InvertedIndex};
    use setsim_tokenize::QGramTokenizer;

    fn setup(texts: &[&str]) -> crate::SetCollection {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        b.extend(texts.iter().copied());
        b.build()
    }

    #[test]
    fn agrees_with_scan() {
        let c = setup(&[
            "main street",
            "main st",
            "maine street",
            "park avenue",
            "main street east",
        ]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let sql = SqlBaseline::build(&c, idx.weights());
        let sql_nlb = SqlBaseline::build_with(&c, idx.weights(), false, 64);
        for text in ["main street", "maine", "park avenue"] {
            let q = idx.prepare_query_str(text);
            for tau in [0.3, 0.6, 0.9, 1.0] {
                let oracle = FullScan.search(&idx, &q, tau);
                let got = sql.search(&q, tau);
                assert_eq!(got.ids_sorted(), oracle.ids_sorted(), "q={text} tau={tau}");
                let got_nlb = sql_nlb.search(&q, tau);
                assert_eq!(got_nlb.ids_sorted(), oracle.ids_sorted());
            }
        }
    }

    #[test]
    fn length_bounding_reads_fewer_rows() {
        let texts: Vec<String> = (1..50).map(|i| "ab".repeat(i)).collect();
        let refs: Vec<&str> = texts.iter().map(std::string::String::as_str).collect();
        let c = setup(&refs);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let with = SqlBaseline::build(&c, idx.weights());
        let without = SqlBaseline::build_with(&c, idx.weights(), false, 64);
        let q = idx.prepare_query_str(&"ab".repeat(25));
        let a = with.search(&q, 0.9);
        let b = without.search(&q, 0.9);
        assert_eq!(a.ids_sorted(), b.ids_sorted());
        assert!(a.stats.elements_read < b.stats.elements_read);
    }

    #[test]
    fn one_row_per_id_token_pair() {
        let c = setup(&["abcabc"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let sql = SqlBaseline::build(&c, idx.weights());
        // Set semantics: each distinct gram once.
        assert_eq!(sql.num_rows(), c.set(SetId(0)).len());
    }

    #[test]
    fn empty_query_is_empty() {
        let c = setup(&["abcd"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let sql = SqlBaseline::build(&c, idx.weights());
        let q = idx.prepare_query_str("");
        assert!(sql.search(&q, 0.5).results.is_empty());
    }

    #[test]
    fn sizes_reported() {
        let c = setup(&["abcd", "bcde"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let sql = SqlBaseline::build(&c, idx.weights());
        let (t, i) = sql.size_bytes();
        assert!(t > 0 && i > 0);
        assert!(sql.sql_text().contains("GROUP BY"));
    }
}
