//! The prefix-filter baseline (Chaudhuri et al., discussed in Section IX).
//!
//! The paper's Related Work notes the Prefix Filter "can be modified to
//! work for all weighted similarity measures for selection queries", and
//! claims it is subsumed by the SQL/B-tree approach. This module makes
//! that comparison concrete for the IDF measure.
//!
//! **Principle.** Fix a global token order (descending idf). For a set
//! `s`, its *prefix* is the shortest head of `s` in that order whose
//! removal would leave suffix mass `Σ idf² < τ_min²·len(s)²`. If
//! `I(q, s) ≥ τ ≥ τ_min` then, combining the score bound with Theorem 1's
//! `len(q) ≥ τ·len(s)`:
//!
//! ```text
//! Σ_{t∈q∩s} idf(t)²  =  I·len(s)·len(q)  ≥  τ²·len(s)²  ≥  τ_min²·len(s)²,
//! ```
//!
//! so `q` must hit the prefix — indexing only prefix tokens cannot lose a
//! result. The index is therefore much smaller than full inverted lists,
//! but every candidate surfaced must be **verified** with an exact score
//! against the base table, and the filter weakens rapidly as `τ_min`
//! drops (prefixes approach whole sets).

use crate::algorithms::scan::exact_score;
use crate::{
    passes, validate_tau, InvertedIndex, Match, PreparedQuery, SearchOutcome, SearchStats, SetId,
};
use setsim_tokenize::Token;
use std::collections::HashMap;

/// A prefix-filter index supporting selections with `τ ≥ τ_min`.
pub struct PrefixFilterIndex {
    tau_min: f64,
    /// Inverted lists over prefix tokens only.
    lists: HashMap<Token, Vec<SetId>>,
    prefix_postings: u64,
}

impl PrefixFilterIndex {
    /// Build the filter over the same collection as `index`, valid for
    /// thresholds down to `tau_min`.
    ///
    /// # Panics
    /// Panics if `tau_min` is outside `(0, 1]`.
    pub fn build(index: &InvertedIndex<'_>, tau_min: f64) -> Self {
        validate_tau(tau_min);
        let weights = index.weights();
        let mut lists: HashMap<Token, Vec<SetId>> = HashMap::new();
        let mut prefix_postings = 0u64;
        for (id, set) in index.collection().iter_sets() {
            let len_s = index.set_len(id);
            // Tokens in descending idf order (ties by token id — any fixed
            // global order works).
            let mut toks: Vec<Token> = set.iter().collect();
            toks.sort_by(|a, b| weights.idf(*b).total_cmp(&weights.idf(*a)).then(a.cmp(b)));
            let budget = tau_min * tau_min * len_s * len_s;
            let mut suffix: f64 = toks.iter().map(|t| weights.idf(*t).powi(2)).sum();
            for t in toks {
                // Keep indexing until the remaining suffix (excluding this
                // token) can no longer reach the budget on its own.
                lists.entry(t).or_default().push(id);
                prefix_postings += 1;
                suffix -= weights.idf(t).powi(2);
                if suffix < budget * (1.0 - crate::EPS_REL) {
                    break;
                }
            }
        }
        Self {
            tau_min,
            lists,
            prefix_postings,
        }
    }

    /// The minimum threshold this filter supports.
    pub fn tau_min(&self) -> f64 {
        self.tau_min
    }

    /// Prefix postings indexed (vs. the full index's posting count).
    pub fn prefix_postings(&self) -> u64 {
        self.prefix_postings
    }

    /// Run a selection: candidate generation over the prefix lists, then
    /// exact verification against the base table.
    ///
    /// # Panics
    /// Panics if `tau < tau_min` (the filter would lose results).
    pub fn search(
        &self,
        index: &InvertedIndex<'_>,
        query: &PreparedQuery,
        tau: f64,
    ) -> SearchOutcome {
        validate_tau(tau);
        assert!(
            tau >= self.tau_min - 1e-12,
            "filter built for tau >= {}, asked for {tau}",
            self.tau_min
        );
        let mut stats = SearchStats {
            total_list_elements: index.query_list_elements(query),
            ..Default::default()
        };
        let mut results = Vec::new();
        if query.is_empty() {
            return SearchOutcome::complete(results, stats);
        }
        let mut candidates: Vec<SetId> = Vec::new();
        for qt in &query.tokens {
            if let Some(list) = self.lists.get(&qt.token) {
                stats.elements_read += list.len() as u64;
                candidates.extend_from_slice(list);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        for id in candidates {
            stats.candidate_scan_steps += 1;
            let score = exact_score(index, query, id);
            if passes(score, tau) {
                results.push(Match { id, score });
            }
        }
        SearchOutcome::complete(results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{FullScan, SelectionAlgorithm};
    use crate::{CollectionBuilder, IndexOptions};
    use setsim_tokenize::QGramTokenizer;

    fn setup(texts: &[&str]) -> crate::SetCollection {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        b.extend(texts.iter().copied());
        b.build()
    }

    #[test]
    fn agrees_with_scan_at_and_above_tau_min() {
        let c = setup(&[
            "main street",
            "main st",
            "maine street",
            "park avenue",
            "main street east",
            "maine",
        ]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let filter = PrefixFilterIndex::build(&idx, 0.5);
        for text in ["main street", "maine", "park avenue"] {
            let q = idx.prepare_query_str(text);
            for tau in [0.5, 0.7, 0.9, 1.0] {
                let oracle = FullScan.search(&idx, &q, tau);
                let got = filter.search(&idx, &q, tau);
                assert_eq!(got.ids_sorted(), oracle.ids_sorted(), "q={text} tau={tau}");
            }
        }
    }

    #[test]
    fn prefix_index_is_smaller() {
        let texts: Vec<String> = (0..300).map(|i| format!("record number {i:05}")).collect();
        let refs: Vec<&str> = texts.iter().map(std::string::String::as_str).collect();
        let c = setup(&refs);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let strict = PrefixFilterIndex::build(&idx, 0.9);
        let loose = PrefixFilterIndex::build(&idx, 0.3);
        assert!(strict.prefix_postings() < idx.total_postings());
        assert!(
            strict.prefix_postings() < loose.prefix_postings(),
            "higher tau_min => shorter prefixes"
        );
        assert!(loose.prefix_postings() <= idx.total_postings());
    }

    #[test]
    #[should_panic(expected = "filter built for tau")]
    fn below_tau_min_panics() {
        let c = setup(&["abcdef"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let filter = PrefixFilterIndex::build(&idx, 0.8);
        let q = idx.prepare_query_str("abcdef");
        let _ = filter.search(&idx, &q, 0.5);
    }

    #[test]
    fn empty_query() {
        let c = setup(&["abcdef"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let filter = PrefixFilterIndex::build(&idx, 0.5);
        let q = idx.prepare_query_str("");
        assert!(filter.search(&idx, &q, 0.5).results.is_empty());
    }

    #[test]
    fn exact_match_survives_strictest_filter() {
        let texts: Vec<String> = (0..100).map(|i| format!("word{i:03}")).collect();
        let refs: Vec<&str> = texts.iter().map(std::string::String::as_str).collect();
        let c = setup(&refs);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let filter = PrefixFilterIndex::build(&idx, 1.0);
        for text in ["word007", "word042"] {
            let q = idx.prepare_query_str(text);
            let out = filter.search(&idx, &q, 1.0);
            assert_eq!(out.results.len(), 1, "{text}");
        }
    }
}
