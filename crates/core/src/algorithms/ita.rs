use crate::algorithms::{AlgoConfig, SelectionAlgorithm};
use crate::engine::SearchCtx;
use crate::{properties, safely_below, Match, SearchStatus};

/// The improved Threshold Algorithm (Section V's "iTA").
///
/// TA plus the semantic properties of IDF:
///
/// * **Length Boundedness** — every list is seeked to the first posting
///   with `len ≥ τ·len(q)` (via the skip list when available) and closed
///   once the frontier passes `len(q)/τ`.
/// * **Magnitude Boundedness** — when a new set surfaces, its exact
///   best-case score `Σⱼ wⱼ(s)` is computed from its length *before* any
///   random access; if it cannot reach τ, the `n − 1` hash probes are
///   skipped entirely.
///
/// iTA retains the highest pruning power in Figure 7 but pays a random
/// I/O per probe, which keeps it behind SF/iNRA on wall-clock time.
#[derive(Debug, Clone, Copy, Default)]
pub struct ITaAlgorithm {
    /// Property toggles (Figures 8 and 9 ablations).
    pub config: AlgoConfig,
}

impl ITaAlgorithm {
    /// iTA with explicit property toggles.
    pub fn with_config(config: AlgoConfig) -> Self {
        Self { config }
    }
}

impl SelectionAlgorithm for ITaAlgorithm {
    fn name(&self) -> &'static str {
        "iTA"
    }

    fn search_with(&self, ctx: &mut SearchCtx<'_, '_>) {
        let index = ctx.index;
        let query = ctx.query;
        let tau = ctx.tau;
        let budget = ctx.budget;
        let scratch = &mut *ctx.scratch;
        scratch.stats.total_list_elements = index.query_list_elements(query);
        if query.is_empty() {
            return;
        }

        let lists: Vec<&crate::index::PostingList> = query
            .tokens
            .iter()
            .map(|qt| index.query_list(qt.token))
            .collect();
        let n = lists.len();
        let (len_lo, len_hi) = properties::length_bounds(tau, query.len);
        let hi_cut = len_hi * (1.0 + crate::EPS_REL);

        scratch.pos.resize(n, 0);
        scratch.closed.resize(n, false);
        scratch.frontier.resize(n, 0.0);
        for (i, l) in lists.iter().enumerate() {
            scratch.pos[i] = if self.config.length_bounding {
                l.seek_len(
                    len_lo * (1.0 - crate::EPS_REL),
                    self.config.use_skip_lists,
                    &mut scratch.stats,
                )
            } else {
                0
            };
            scratch.closed[i] = scratch.pos[i] >= l.len();
        }

        loop {
            if budget.exceeded(&scratch.stats) {
                scratch.status = SearchStatus::BudgetExceeded;
                return;
            }
            scratch.stats.rounds += 1;
            let mut any_read = false;
            for i in 0..n {
                if scratch.closed[i] {
                    continue;
                }
                let postings = lists[i].postings();
                let p = postings[scratch.pos[i]];
                scratch.pos[i] += 1;
                scratch.stats.elements_read += 1;
                any_read = true;
                scratch.frontier[i] = p.len;
                if scratch.pos[i] >= postings.len() {
                    scratch.closed[i] = true;
                }
                if self.config.length_bounding && p.len > hi_cut {
                    scratch.closed[i] = true;
                    continue;
                }
                if !scratch.seen.insert(p.id.0) {
                    continue;
                }
                // Magnitude Boundedness: exact best case before probing.
                let best = properties::max_score(query.idf_sq_total, p.len, query.len);
                if safely_below(best, tau) {
                    continue;
                }
                // Sum in query-token order (not first-seen-list order)
                // so the emitted bits are traversal-independent — see
                // `canonical_score` in the algorithms module.
                let mut dot = 0.0;
                for (j, l) in lists.iter().enumerate() {
                    if j == i || l.contains_id(p.id, &mut scratch.stats) {
                        dot += query.tokens[j].idf_sq;
                    }
                }
                let score = dot / (p.len * query.len);
                if crate::passes(score, tau) {
                    scratch.results.push(Match { id: p.id, score });
                }
            }
            if !any_read {
                break;
            }
            let f: f64 = (0..n)
                .map(|i| {
                    if scratch.closed[i] {
                        0.0
                    } else {
                        query.tokens[i].idf_sq / (scratch.frontier[i] * query.len)
                    }
                })
                .sum();
            if safely_below(f, tau) {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{FullScan, TaAlgorithm};
    use crate::{CollectionBuilder, IndexOptions, InvertedIndex};
    use setsim_tokenize::QGramTokenizer;

    fn setup(texts: &[&str]) -> crate::SetCollection {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        b.extend(texts.iter().copied());
        b.build()
    }

    #[test]
    fn agrees_with_scan_all_configs() {
        let c = setup(&[
            "main street",
            "main st",
            "maine street",
            "park avenue",
            "main street east",
            "maine",
            "mainstreet",
        ]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let configs = [
            AlgoConfig::full(),
            AlgoConfig::no_skip_lists(),
            AlgoConfig::no_length_bounding(),
        ];
        for text in ["main street", "maine", "park avenue", "main"] {
            let q = idx.prepare_query_str(text);
            for tau in [0.2, 0.5, 0.8, 1.0] {
                let oracle = FullScan.search(&idx, &q, tau);
                for cfg in configs {
                    let got = ITaAlgorithm::with_config(cfg).search(&idx, &q, tau);
                    assert_eq!(
                        got.ids_sorted(),
                        oracle.ids_sorted(),
                        "q={text} tau={tau} cfg={cfg:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn reads_fewer_elements_than_ta() {
        // Length ladder sharing grams: the query matches a mid-length
        // prefix, so Length Boundedness lets iTA skip the short prefix of
        // every list and close past the window, while TA grinds from the
        // top of each list.
        // 30 variants per length level: lists get long, the short levels
        // keep TA's frontier bound high (many cheap reads), while iTA's
        // skip-list seek jumps straight to the length window.
        let seq = super::super::test_support::pseudoseq(100);
        let mut texts: Vec<String> = Vec::new();
        for i in 3..90 {
            for j in 0..30 {
                texts.push(format!("{}q{j:02}", &seq[..i]));
            }
        }
        let refs: Vec<&str> = texts.iter().map(std::string::String::as_str).collect();
        let c = setup(&refs);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str(&format!("{}q05", &seq[..60]));
        let ta = TaAlgorithm.search(&idx, &q, 0.98);
        let ita = ITaAlgorithm::default().search(&idx, &q, 0.98);
        assert_eq!(ta.ids_sorted(), ita.ids_sorted());
        assert!(
            3 * ita.stats.elements_read < 2 * ta.stats.elements_read,
            "iTA ({}) should read well under TA ({})",
            ita.stats.elements_read,
            ta.stats.elements_read
        );
        assert!(ita.stats.random_probes <= ta.stats.random_probes);
    }

    #[test]
    fn magnitude_bound_suppresses_probes() {
        // Query much shorter than most sets: most postings fail the
        // magnitude bound at tau=0.9 and must not trigger probes.
        let mut texts: Vec<String> = (0..100).map(|i| format!("abcdefghijklm{i:03}")).collect();
        texts.push("abcdef".into());
        let refs: Vec<&str> = texts.iter().map(std::string::String::as_str).collect();
        let c = setup(&refs);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("abcdef");
        let out = ITaAlgorithm::default().search(&idx, &q, 0.9);
        assert_eq!(out.results.len(), 1);
        // Far fewer probes than (reads × lists).
        assert!(out.stats.random_probes < out.stats.elements_read);
    }

    #[test]
    fn empty_query() {
        let c = setup(&["abcd"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("");
        assert!(ITaAlgorithm::default()
            .search(&idx, &q, 0.5)
            .results
            .is_empty());
    }
}
