use crate::algorithms::{assert_query_width, canonical_score, SelectionAlgorithm};
use crate::engine::{CandCell, SearchCtx};
use crate::{safely_below, Match, SearchStatus, SetId};

/// The classic No-Random-Access algorithm (Algorithm 1).
///
/// Sequential accesses only, in round-robin order. A hash table keeps one
/// candidate per discovered set with its partial (lower-bound) score and a
/// bit vector of the lists it has appeared in; upper bounds use the
/// frontier contributions `wᵢ(fᵢ)`. After each round the candidate set is
/// scanned: candidates whose upper bound falls below τ are discarded,
/// candidates whose score is complete and ≥ τ are reported. The search
/// ends when the candidate set empties.
///
/// The paper could not run textbook NRA to completion at scale, so its
/// experiments enable two bookkeeping reducers (both on by default here,
/// disable via [`NraAlgorithm::pure`]): skip candidate scans while the
/// frontier bound `F ≥ τ` (the search cannot terminate before `F < τ`
/// anyway), and end a scan at the first still-viable candidate.
#[derive(Debug, Clone, Copy)]
pub struct NraAlgorithm {
    /// Skip candidate-set scans while `F ≥ τ`.
    pub lazy_scans: bool,
    /// Terminate a candidate scan at the first surviving candidate.
    pub early_scan_exit: bool,
}

impl Default for NraAlgorithm {
    fn default() -> Self {
        Self {
            lazy_scans: true,
            early_scan_exit: true,
        }
    }
}

impl NraAlgorithm {
    /// Textbook NRA: full candidate scan every round.
    pub fn pure() -> Self {
        Self {
            lazy_scans: false,
            early_scan_exit: false,
        }
    }
}

// Classic NRA tracks no set length for its *bounds*: those use frontier
// weights only (that blindness is exactly what iNRA fixes). The scratch
// CandCell's len field is still recorded so completed candidates can be
// emitted through `canonical_score` — order-independent bits.

impl SelectionAlgorithm for NraAlgorithm {
    fn name(&self) -> &'static str {
        "NRA"
    }

    fn search_with(&self, ctx: &mut SearchCtx<'_, '_>) {
        let index = ctx.index;
        let query = ctx.query;
        let tau = ctx.tau;
        let budget = ctx.budget;
        let scratch = &mut *ctx.scratch;
        scratch.stats.total_list_elements = index.query_list_elements(query);
        if query.is_empty() {
            return;
        }
        assert_query_width(query);

        let lists: Vec<&[crate::Posting]> = query
            .tokens
            .iter()
            .map(|qt| index.query_list(qt.token).postings())
            .collect();
        let n = lists.len();
        scratch.pos.resize(n, 0);
        scratch.frontier.resize(n, f64::INFINITY); // wᵢ(fᵢ); 0 when exhausted
        scratch.closed.resize(n, false); // exhaustion flags, refreshed per round

        loop {
            if budget.exceeded(&scratch.stats) {
                scratch.status = SearchStatus::BudgetExceeded;
                return;
            }
            scratch.stats.rounds += 1;
            let mut any_read = false;
            for i in 0..n {
                if scratch.pos[i] >= lists[i].len() {
                    scratch.frontier[i] = 0.0;
                    continue;
                }
                let p = lists[i][scratch.pos[i]];
                scratch.pos[i] += 1;
                scratch.stats.elements_read += 1;
                any_read = true;
                let w = query.tokens[i].idf_sq / (p.len * query.len);
                scratch.frontier[i] = w;
                let e = scratch.candidates.entry(p.id.0).or_insert_with(|| {
                    scratch.stats.candidates_inserted += 1;
                    CandCell::default()
                });
                e.lower += w;
                e.len = p.len;
                e.seen |= 1u128 << i;
            }

            for (i, list) in lists.iter().enumerate() {
                scratch.closed[i] = scratch.pos[i] >= list.len();
            }
            let all_exhausted = scratch.closed.iter().all(|&e| e);
            // Best possible score of an unseen set.
            let f: f64 = (0..n)
                .map(|i| {
                    if scratch.closed[i] {
                        0.0
                    } else {
                        scratch.frontier[i]
                    }
                })
                .sum();

            let must_scan = !self.lazy_scans || safely_below(f, tau) || all_exhausted;
            if must_scan {
                scratch.to_remove.clear();
                for (&id, c) in &scratch.candidates {
                    scratch.stats.candidate_scan_steps += 1;
                    let mut upper = c.lower;
                    let mut complete = true;
                    for i in 0..n {
                        if c.seen & (1u128 << i) != 0 {
                            continue;
                        }
                        if scratch.closed[i] {
                            continue; // resolved: not in list i
                        }
                        complete = false;
                        upper += scratch.frontier[i];
                    }
                    if complete {
                        // Emit the order-canonical score, not the
                        // round-order partial sum (see canonical_score).
                        let score = canonical_score(query, c.seen, c.len);
                        if crate::passes(score, tau) {
                            scratch.results.push(Match {
                                id: SetId(id),
                                score,
                            });
                        }
                        scratch.to_remove.push(id);
                    } else if safely_below(upper, tau) {
                        scratch.to_remove.push(id);
                    } else if self.early_scan_exit && !all_exhausted {
                        break; // a viable candidate survives; stop scanning
                    }
                }
                for id in &scratch.to_remove {
                    scratch.candidates.remove(id);
                }
            }

            if all_exhausted {
                break; // final scan above resolved every candidate
            }
            if scratch.candidates.is_empty() && safely_below(f, tau) {
                break;
            }
            if !any_read {
                break; // defensive: nothing left to read
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::FullScan;
    use crate::{CollectionBuilder, IndexOptions, InvertedIndex};
    use setsim_tokenize::QGramTokenizer;

    fn setup(texts: &[&str]) -> crate::SetCollection {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        b.extend(texts.iter().copied());
        b.build()
    }

    fn check_against_scan(texts: &[&str], queries: &[&str], taus: &[f64]) {
        let c = setup(texts);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        for text in queries {
            let q = idx.prepare_query_str(text);
            for &tau in taus {
                let oracle = FullScan.search(&idx, &q, tau);
                for algo in [NraAlgorithm::default(), NraAlgorithm::pure()] {
                    let got = algo.search(&idx, &q, tau);
                    assert_eq!(
                        got.ids_sorted(),
                        oracle.ids_sorted(),
                        "q={text} tau={tau} lazy={}",
                        algo.lazy_scans
                    );
                }
            }
        }
    }

    #[test]
    fn agrees_with_scan() {
        check_against_scan(
            &[
                "main street",
                "main st",
                "maine street",
                "park avenue",
                "main street east",
                "maine",
            ],
            &["main street", "maine", "park avenue", "main"],
            &[0.2, 0.5, 0.8, 1.0],
        );
    }

    #[test]
    fn agrees_on_identical_lengths() {
        // All sets the same length: frontier bounds stay flat for a while.
        check_against_scan(
            &["abcd", "bcda", "cdab", "dabc"],
            &["abcd", "bcda"],
            &[0.3, 0.7, 1.0],
        );
    }

    #[test]
    fn no_random_probes() {
        let c = setup(&["abcdef", "abcxyz"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("abcdef");
        let out = NraAlgorithm::default().search(&idx, &q, 0.5);
        assert_eq!(out.stats.random_probes, 0);
    }

    #[test]
    fn scores_are_exact() {
        let c = setup(&["abcdef", "abcxyz", "abqrst"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("abcdef");
        let out = NraAlgorithm::default().search(&idx, &q, 0.1);
        for m in &out.results {
            let expect = super::super::scan::exact_score(&idx, &q, m.id);
            assert!((m.score - expect).abs() < 1e-9, "{m:?}");
        }
    }

    #[test]
    fn empty_query() {
        let c = setup(&["abcd"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("");
        assert!(NraAlgorithm::default()
            .search(&idx, &q, 0.5)
            .results
            .is_empty());
    }
}
