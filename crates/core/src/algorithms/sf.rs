use crate::algorithms::{AlgoConfig, SelectionAlgorithm};
use crate::engine::{SearchCtx, SfCand};
use crate::{properties, safely_below, Match, SearchStatus, SetId};

/// The Shortest-First algorithm (Algorithm 3, "SF").
///
/// Depth-first: lists are processed one at a time in **descending idf**
/// order — shortest (rarest-token) lists first. Before list `i` is
/// scanned, the cutoff
///
/// ```text
/// λᵢ = Σ_{j ≥ i} idf(qʲ)² / (τ·len(q))
/// ```
///
/// bounds the length of any *new* viable candidate: a set first appearing
/// in list `i` can collect contributions only from lists `i..n`, so a
/// longer set cannot reach τ even if it appeared in all of them. Because
/// `λ₁ ≥ λ₂ ≥ …`, reading rare lists first discovers few false positives,
/// and the candidate ceiling `max_len(C)` keeps falling, so only a small
/// prefix of the long, frequent-token lists is ever touched.
///
/// Candidates live in a single list sorted by `(len, id)` — the same order
/// as every inverted list — so each list is combined with the candidate
/// set by one merge pass: no hashing, no per-round scans. Bookkeeping is
/// minimal, which is why SF wins on wall-clock time throughout Figure 6
/// even though iTA prunes slightly more.
#[derive(Debug, Clone, Copy, Default)]
pub struct SfAlgorithm {
    /// Property toggles (Figures 8 and 9 ablations).
    pub config: AlgoConfig,
}

impl SfAlgorithm {
    /// SF with explicit property toggles.
    pub fn with_config(config: AlgoConfig) -> Self {
        Self { config }
    }
}

/// Ordering key shared by candidate list and inverted lists.
#[inline]
fn key(len: f64, id: SetId) -> (u64, u32) {
    (len.to_bits(), id.0)
}

impl SelectionAlgorithm for SfAlgorithm {
    fn name(&self) -> &'static str {
        "SF"
    }

    fn search_with(&self, ctx: &mut SearchCtx<'_, '_>) {
        let index = ctx.index;
        let query = ctx.query;
        let tau = ctx.tau;
        let budget = ctx.budget;
        let scratch = &mut *ctx.scratch;
        scratch.stats.total_list_elements = index.query_list_elements(query);
        if query.is_empty() {
            return;
        }

        let n = query.num_lists();
        let (len_lo, len_hi) = properties::length_bounds(tau, query.len);
        let lo_seek = len_lo * (1.0 - crate::EPS_REL);
        let hi_cut = len_hi * (1.0 + crate::EPS_REL);
        // λᵢ cutoffs (query tokens are already in descending idf order).
        query.idf_sq_suffix_sums_into(&mut scratch.suffix);
        properties::lambda_cutoffs_into(query, tau, &scratch.suffix, &mut scratch.lambdas);

        // Candidate list, kept sorted by (len, id). `sf_cands` holds the
        // survivors of the previous list; `sf_merged` receives this list's
        // merge output, then the buffers swap.
        scratch.sf_cands.clear();

        for i in 0..n {
            if budget.exceeded(&scratch.stats) {
                scratch.status = SearchStatus::BudgetExceeded;
                // Partial lower-bound sums are not exact scores: a
                // truncated SF run must not emit them.
                return;
            }
            scratch.stats.rounds += 1;
            let list = index.query_list(query.tokens[i].token);
            let postings = list.postings();
            let start = if self.config.length_bounding {
                list.seek_len(lo_seek, self.config.use_skip_lists, &mut scratch.stats)
            } else {
                0
            };
            let lambda_i = scratch.lambdas[i] * (1.0 + crate::EPS_REL);
            // µᵢ: no new candidate beyond λᵢ; nothing qualifies beyond
            // len(q)/τ. (λᵢ ≤ len(q)/τ always, but keep the min for the
            // no-length-bounding ablation where hi_cut is disabled.)
            let mu = if self.config.length_bounding {
                lambda_i.min(hi_cut)
            } else {
                lambda_i
            };

            scratch.sf_merged.clear();
            let mut ci = 0usize; // cursor into sf_cands
            let mut pos = start;
            loop {
                // Reading bound: the deepest point any existing candidate
                // or admissible new candidate can sit at. Only the
                // not-yet-merged tail of C matters; new insertions sit
                // below λᵢ ≤ µ already.
                let tail_max = if ci < scratch.sf_cands.len() {
                    scratch.sf_cands[scratch.sf_cands.len() - 1].len
                } else {
                    f64::NEG_INFINITY
                };
                let bound = mu.max(tail_max);
                if pos >= postings.len() {
                    break;
                }
                if budget.exceeded(&scratch.stats) {
                    scratch.status = SearchStatus::BudgetExceeded;
                    return;
                }
                let p = postings[pos];
                if p.len > bound {
                    break;
                }
                // Forward jump: past λᵢ no posting can be admitted as a
                // new candidate (lists are length-sorted, so every later
                // posting is past λᵢ too), and postings ordered before the
                // next pending candidate cannot match any pending
                // candidate either. Seek straight to that candidate's key;
                // everything bypassed is provably irrelevant and counted
                // as skipped, not read.
                if self.config.block_skip && p.len > lambda_i && ci < scratch.sf_cands.len() {
                    let c = scratch.sf_cands[ci];
                    if key(p.len, p.id) < key(c.len, c.id) {
                        pos = list.seek_key(
                            pos,
                            c.len,
                            c.id,
                            self.config.use_skip_lists,
                            &mut scratch.stats,
                        );
                        continue;
                    }
                }
                pos += 1;
                scratch.stats.elements_read += 1;

                // Merge step: flush candidates ordered before this posting;
                // they did not appear in list i.
                while ci < scratch.sf_cands.len()
                    && key(scratch.sf_cands[ci].len, scratch.sf_cands[ci].id) < key(p.len, p.id)
                {
                    let c = scratch.sf_cands[ci];
                    ci += 1;
                    scratch.stats.candidate_scan_steps += 1;
                    let upper = c.lower + scratch.suffix[i + 1] / (c.len * query.len);
                    if !safely_below(upper, tau) {
                        scratch.sf_merged.push(c);
                    }
                }
                let w = query.tokens[i].idf_sq / (p.len * query.len);
                if ci < scratch.sf_cands.len()
                    && key(scratch.sf_cands[ci].len, scratch.sf_cands[ci].id) == key(p.len, p.id)
                {
                    // Existing candidate found in list i.
                    let mut c = scratch.sf_cands[ci];
                    ci += 1;
                    c.lower += w;
                    scratch.sf_merged.push(c);
                } else if p.len <= lambda_i {
                    // New candidate admissible in list i.
                    scratch.stats.candidates_inserted += 1;
                    scratch.sf_merged.push(SfCand {
                        id: p.id,
                        len: p.len,
                        lower: w,
                    });
                }
            }
            // Flush candidates beyond the last posting read: skipped in
            // list i as well.
            while ci < scratch.sf_cands.len() {
                let c = scratch.sf_cands[ci];
                ci += 1;
                scratch.stats.candidate_scan_steps += 1;
                let upper = c.lower + scratch.suffix[i + 1] / (c.len * query.len);
                if !safely_below(upper, tau) {
                    scratch.sf_merged.push(c);
                }
            }
            std::mem::swap(&mut scratch.sf_cands, &mut scratch.sf_merged);
            if scratch.sf_cands.is_empty() && i + 1 < n {
                // No candidate survives; later lists cannot create viable
                // new ones deeper than their own λ, so continue — λ keeps
                // shrinking and scans stay shallow.
                continue;
            }
        }

        for ci in 0..scratch.sf_cands.len() {
            let c = scratch.sf_cands[ci];
            if crate::passes(c.lower, tau) {
                scratch.results.push(Match {
                    id: c.id,
                    score: c.lower,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::FullScan;
    use crate::{CollectionBuilder, IndexOptions, InvertedIndex};
    use setsim_tokenize::QGramTokenizer;

    fn setup(texts: &[&str]) -> crate::SetCollection {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        b.extend(texts.iter().copied());
        b.build()
    }

    #[test]
    fn agrees_with_scan_all_configs() {
        let c = setup(&[
            "main street",
            "main st",
            "maine street",
            "park avenue",
            "main street east",
            "maine",
            "mainstreet",
            "st main",
        ]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let configs = [
            AlgoConfig::full(),
            AlgoConfig::no_skip_lists(),
            AlgoConfig::no_length_bounding(),
        ];
        for text in ["main street", "maine", "park avenue", "main", "st"] {
            let q = idx.prepare_query_str(text);
            for tau in [0.2, 0.5, 0.8, 1.0] {
                let oracle = FullScan.search(&idx, &q, tau);
                for cfg in configs {
                    let got = SfAlgorithm::with_config(cfg).search(&idx, &q, tau);
                    assert_eq!(
                        got.ids_sorted(),
                        oracle.ids_sorted(),
                        "q={text} tau={tau} cfg={cfg:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn candidate_list_merge_keeps_exact_scores() {
        let c = setup(&["abcdef", "abcxyz", "abqrst", "abcdxy"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("abcdef");
        let out = SfAlgorithm::default().search(&idx, &q, 0.1);
        for m in &out.results {
            let expect = super::super::scan::exact_score(&idx, &q, m.id);
            assert!((m.score - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn no_random_probes_and_no_hash_needed() {
        // SF must run on an index without hash structures at all.
        let c = setup(&["abcdef", "abcxyz", "defghi"]);
        let lean = IndexOptions {
            build_hash_indexes: false,
            build_id_sorted_lists: false,
            ..IndexOptions::default()
        };
        let idx = InvertedIndex::build(&c, lean);
        let q = idx.prepare_query_str("abcdef");
        let out = SfAlgorithm::default().search(&idx, &q, 0.4);
        assert_eq!(out.stats.random_probes, 0);
        assert!(!out.results.is_empty());
    }

    #[test]
    fn shallow_scans_on_frequent_lists() {
        // A flood of long records sharing the query's grams: they populate
        // the query's lists but sit far beyond the length window, so SF
        // skips essentially all of them.
        let mut texts: Vec<String> = (0..500)
            .map(|i| format!("zyxwvut padded with lots of extra material {i:04}"))
            .collect();
        texts.push("zyxwvut".into());
        let refs: Vec<&str> = texts.iter().map(std::string::String::as_str).collect();
        let c = setup(&refs);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("zyxwvut");
        let out = SfAlgorithm::default().search(&idx, &q, 0.8);
        assert_eq!(out.results.len(), 1);
        assert!(
            out.stats.pruning_pct() > 90.0,
            "pruning {}%",
            out.stats.pruning_pct()
        );
    }

    #[test]
    fn empty_query() {
        let c = setup(&["abcd"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("");
        assert!(SfAlgorithm::default()
            .search(&idx, &q, 0.5)
            .results
            .is_empty());
    }
}
