use crate::algorithms::{AlgoConfig, SelectionAlgorithm};
use crate::{
    properties, safely_below, validate_tau, InvertedIndex, Match, PreparedQuery, SearchOutcome,
    SearchStats, SetId,
};

/// The Shortest-First algorithm (Algorithm 3, "SF").
///
/// Depth-first: lists are processed one at a time in **descending idf**
/// order — shortest (rarest-token) lists first. Before list `i` is
/// scanned, the cutoff
///
/// ```text
/// λᵢ = Σ_{j ≥ i} idf(qʲ)² / (τ·len(q))
/// ```
///
/// bounds the length of any *new* viable candidate: a set first appearing
/// in list `i` can collect contributions only from lists `i..n`, so a
/// longer set cannot reach τ even if it appeared in all of them. Because
/// `λ₁ ≥ λ₂ ≥ …`, reading rare lists first discovers few false positives,
/// and the candidate ceiling `max_len(C)` keeps falling, so only a small
/// prefix of the long, frequent-token lists is ever touched.
///
/// Candidates live in a single list sorted by `(len, id)` — the same order
/// as every inverted list — so each list is combined with the candidate
/// set by one merge pass: no hashing, no per-round scans. Bookkeeping is
/// minimal, which is why SF wins on wall-clock time throughout Figure 6
/// even though iTA prunes slightly more.
#[derive(Debug, Clone, Copy, Default)]
pub struct SfAlgorithm {
    /// Property toggles (Figures 8 and 9 ablations).
    pub config: AlgoConfig,
}

impl SfAlgorithm {
    /// SF with explicit property toggles.
    pub fn with_config(config: AlgoConfig) -> Self {
        Self { config }
    }
}

#[derive(Debug, Clone, Copy)]
struct Cand {
    id: SetId,
    len: f64,
    lower: f64,
}

/// Ordering key shared by candidate list and inverted lists.
#[inline]
fn key(len: f64, id: SetId) -> (u64, u32) {
    (len.to_bits(), id.0)
}

impl SelectionAlgorithm for SfAlgorithm {
    fn name(&self) -> &'static str {
        "SF"
    }

    fn search(&self, index: &InvertedIndex<'_>, query: &PreparedQuery, tau: f64) -> SearchOutcome {
        validate_tau(tau);
        let mut stats = SearchStats {
            total_list_elements: index.query_list_elements(query),
            ..Default::default()
        };
        let mut results = Vec::new();
        if query.is_empty() {
            return SearchOutcome { results, stats };
        }

        let n = query.num_lists();
        let (len_lo, len_hi) = properties::length_bounds(tau, query.len);
        let lo_seek = len_lo * (1.0 - crate::EPS_REL);
        let hi_cut = len_hi * (1.0 + crate::EPS_REL);
        // λᵢ cutoffs (query tokens are already in descending idf order).
        let lambdas = properties::lambda_cutoffs(query, tau);
        let suffix = query.idf_sq_suffix_sums();

        // Candidate list, kept sorted by (len, id).
        let mut cands: Vec<Cand> = Vec::new();

        for i in 0..n {
            stats.rounds += 1;
            let list = index.query_list(query.tokens[i].token);
            let postings = list.postings();
            let start = if self.config.length_bounding {
                list.seek_len(lo_seek, self.config.use_skip_lists, &mut stats)
            } else {
                0
            };
            let lambda_i = lambdas[i] * (1.0 + crate::EPS_REL);
            // µᵢ: no new candidate beyond λᵢ; nothing qualifies beyond
            // len(q)/τ. (λᵢ ≤ len(q)/τ always, but keep the min for the
            // no-length-bounding ablation where hi_cut is disabled.)
            let mu = if self.config.length_bounding {
                lambda_i.min(hi_cut)
            } else {
                lambda_i
            };

            let mut merged: Vec<Cand> = Vec::with_capacity(cands.len());
            let mut ci = 0usize; // cursor into cands
            let mut pos = start;
            loop {
                // Reading bound: the deepest point any existing candidate
                // or admissible new candidate can sit at. Only the
                // not-yet-merged tail of C matters; new insertions sit
                // below λᵢ ≤ µ already.
                let tail_max = if ci < cands.len() {
                    cands[cands.len() - 1].len
                } else {
                    f64::NEG_INFINITY
                };
                let bound = mu.max(tail_max);
                if pos >= postings.len() {
                    break;
                }
                let p = postings[pos];
                if p.len > bound {
                    break;
                }
                pos += 1;
                stats.elements_read += 1;

                // Merge step: flush candidates ordered before this posting;
                // they did not appear in list i.
                while ci < cands.len() && key(cands[ci].len, cands[ci].id) < key(p.len, p.id) {
                    let c = cands[ci];
                    ci += 1;
                    stats.candidate_scan_steps += 1;
                    let upper = c.lower + suffix[i + 1] / (c.len * query.len);
                    if !safely_below(upper, tau) {
                        merged.push(c);
                    }
                }
                let w = query.tokens[i].idf_sq / (p.len * query.len);
                if ci < cands.len() && key(cands[ci].len, cands[ci].id) == key(p.len, p.id) {
                    // Existing candidate found in list i.
                    let mut c = cands[ci];
                    ci += 1;
                    c.lower += w;
                    merged.push(c);
                } else if p.len <= lambda_i {
                    // New candidate admissible in list i.
                    stats.candidates_inserted += 1;
                    merged.push(Cand {
                        id: p.id,
                        len: p.len,
                        lower: w,
                    });
                }
            }
            // Flush candidates beyond the last posting read: skipped in
            // list i as well.
            while ci < cands.len() {
                let c = cands[ci];
                ci += 1;
                stats.candidate_scan_steps += 1;
                let upper = c.lower + suffix[i + 1] / (c.len * query.len);
                if !safely_below(upper, tau) {
                    merged.push(c);
                }
            }
            cands = merged;
            if cands.is_empty() && i + 1 < n {
                // No candidate survives; later lists cannot create viable
                // new ones deeper than their own λ, so continue — λ keeps
                // shrinking and scans stay shallow.
                continue;
            }
        }

        for c in cands {
            if crate::passes(c.lower, tau) {
                results.push(Match {
                    id: c.id,
                    score: c.lower,
                });
            }
        }

        SearchOutcome { results, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::FullScan;
    use crate::{CollectionBuilder, IndexOptions};
    use setsim_tokenize::QGramTokenizer;

    fn setup(texts: &[&str]) -> crate::SetCollection {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        b.extend(texts.iter().copied());
        b.build()
    }

    #[test]
    fn agrees_with_scan_all_configs() {
        let c = setup(&[
            "main street",
            "main st",
            "maine street",
            "park avenue",
            "main street east",
            "maine",
            "mainstreet",
            "st main",
        ]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let configs = [
            AlgoConfig::full(),
            AlgoConfig::no_skip_lists(),
            AlgoConfig::no_length_bounding(),
        ];
        for text in ["main street", "maine", "park avenue", "main", "st"] {
            let q = idx.prepare_query_str(text);
            for tau in [0.2, 0.5, 0.8, 1.0] {
                let oracle = FullScan.search(&idx, &q, tau);
                for cfg in configs {
                    let got = SfAlgorithm::with_config(cfg).search(&idx, &q, tau);
                    assert_eq!(
                        got.ids_sorted(),
                        oracle.ids_sorted(),
                        "q={text} tau={tau} cfg={cfg:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn candidate_list_merge_keeps_exact_scores() {
        let c = setup(&["abcdef", "abcxyz", "abqrst", "abcdxy"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("abcdef");
        let out = SfAlgorithm::default().search(&idx, &q, 0.1);
        for m in &out.results {
            let expect = super::super::scan::exact_score(&idx, &q, m.id);
            assert!((m.score - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn no_random_probes_and_no_hash_needed() {
        // SF must run on an index without hash structures at all.
        let c = setup(&["abcdef", "abcxyz", "defghi"]);
        let lean = IndexOptions {
            build_hash_indexes: false,
            build_id_sorted_lists: false,
            ..IndexOptions::default()
        };
        let idx = InvertedIndex::build(&c, lean);
        let q = idx.prepare_query_str("abcdef");
        let out = SfAlgorithm::default().search(&idx, &q, 0.4);
        assert_eq!(out.stats.random_probes, 0);
        assert!(!out.results.is_empty());
    }

    #[test]
    fn shallow_scans_on_frequent_lists() {
        // A flood of long records sharing the query's grams: they populate
        // the query's lists but sit far beyond the length window, so SF
        // skips essentially all of them.
        let mut texts: Vec<String> = (0..500)
            .map(|i| format!("zyxwvut padded with lots of extra material {i:04}"))
            .collect();
        texts.push("zyxwvut".into());
        let refs: Vec<&str> = texts.iter().map(std::string::String::as_str).collect();
        let c = setup(&refs);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("zyxwvut");
        let out = SfAlgorithm::default().search(&idx, &q, 0.8);
        assert_eq!(out.results.len(), 1);
        assert!(
            out.stats.pruning_pct() > 90.0,
            "pruning {}%",
            out.stats.pruning_pct()
        );
    }

    #[test]
    fn empty_query() {
        let c = setup(&["abcd"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("");
        assert!(SfAlgorithm::default()
            .search(&idx, &q, 0.5)
            .results
            .is_empty());
    }
}
