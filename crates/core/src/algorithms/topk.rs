//! Top-k set similarity search (the paper's stated future work).
//!
//! Instead of a fixed threshold τ, return the `k` most similar sets. Both
//! variants run with a *dynamic* threshold: the k-th best lower bound seen
//! so far. As results accumulate the threshold rises, and the same
//! semantic properties (Magnitude and Length Boundedness relative to the
//! current threshold) prune the tail of every list.
//!
//! * [`topk_scan`](crate::algorithms::topk::topk_scan) — exhaustive oracle.
//! * [`topk_nra`](crate::algorithms::topk::topk_nra) — NRA-style round-robin with candidate bookkeeping.
//! * [`topk_sf`](crate::algorithms::topk::topk_sf) — restarted SF: run the threshold algorithm at a guessed
//!   τ, halve until k results survive. Exploits SF's extremely cheap
//!   individual runs; with a reasonable first guess it usually finishes in
//!   one or two passes.

use crate::algorithms::scan::exact_score;
use crate::algorithms::{assert_query_width, SelectionAlgorithm, SfAlgorithm};
use crate::{InvertedIndex, Match, PreparedQuery, SearchOutcome, SearchStats, SetId};
use std::collections::HashMap;

/// Exhaustive top-k oracle: score everything, keep the best `k`
/// (ties broken by ascending id).
pub fn topk_scan(index: &InvertedIndex<'_>, query: &PreparedQuery, k: usize) -> Vec<Match> {
    let mut all: Vec<Match> = (0..index.collection().len())
        .map(|i| {
            let id = SetId(i as u32);
            Match {
                id,
                score: exact_score(index, query, id),
            }
        })
        .filter(|m| m.score > 0.0)
        .collect();
    all.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
    all.truncate(k);
    all
}

/// NRA-style top-k: round-robin sorted access, candidates kept with lower
/// and upper bounds, dynamic threshold = k-th best complete lower bound.
pub fn topk_nra(index: &InvertedIndex<'_>, query: &PreparedQuery, k: usize) -> SearchOutcome {
    assert_query_width(query);
    let mut stats = SearchStats {
        total_list_elements: index.query_list_elements(query),
        ..Default::default()
    };
    if query.is_empty() || k == 0 {
        return SearchOutcome::complete(Vec::new(), stats);
    }

    struct Cand {
        lower: f64,
        len: f64,
        seen: u128,
    }

    let lists: Vec<&[crate::Posting]> = query
        .tokens
        .iter()
        .map(|qt| index.query_list(qt.token).postings())
        .collect();
    let n = lists.len();
    let mut pos = vec![0usize; n];
    let mut frontier = vec![f64::INFINITY; n];
    let mut candidates: HashMap<u32, Cand> = HashMap::new();
    // Completed results, maintained as a sorted (descending) vector capped
    // at k — small k keeps this cheap.
    let mut best: Vec<Match> = Vec::new();

    let threshold = |best: &Vec<Match>| -> f64 {
        if best.len() < k {
            0.0
        } else {
            best[k - 1].score
        }
    };

    loop {
        stats.rounds += 1;
        let mut any_read = false;
        for i in 0..n {
            if pos[i] >= lists[i].len() {
                continue;
            }
            let p = lists[i][pos[i]];
            pos[i] += 1;
            stats.elements_read += 1;
            any_read = true;
            frontier[i] = p.len;
            let w = query.tokens[i].idf_sq / (p.len * query.len);
            let e = candidates.entry(p.id.0).or_insert_with(|| {
                stats.candidates_inserted += 1;
                Cand {
                    lower: 0.0,
                    len: p.len,
                    seen: 0,
                }
            });
            e.lower += w;
            e.seen |= 1u128 << i;
        }

        let exhausted: Vec<bool> = (0..n).map(|i| pos[i] >= lists[i].len()).collect();
        let all_exhausted = exhausted.iter().all(|&e| e);
        let tau = threshold(&best);

        let mut to_remove = Vec::new();
        for (&id, c) in &candidates {
            stats.candidate_scan_steps += 1;
            let mut upper = c.lower;
            let mut complete = true;
            for i in 0..n {
                if c.seen & (1u128 << i) != 0 {
                    continue;
                }
                if exhausted[i] || c.len < frontier[i] {
                    continue; // Order Preservation / exhaustion
                }
                complete = false;
                upper += query.tokens[i].idf_sq / (c.len * query.len);
            }
            if complete {
                let m = Match {
                    id: SetId(id),
                    score: c.lower,
                };
                let at = best
                    .binary_search_by(|b| m.score.total_cmp(&b.score).then(b.id.cmp(&m.id)))
                    .unwrap_or_else(|e| e);
                best.insert(at, m);
                best.truncate(k.max(best.len().min(k)));
                best.truncate(k);
                to_remove.push(id);
            } else if best.len() == k && upper < tau {
                to_remove.push(id);
            }
        }
        for id in to_remove {
            candidates.remove(&id);
        }

        if all_exhausted {
            break;
        }
        // Unseen bound: can anything new still enter the top k?
        let f: f64 = (0..n)
            .map(|i| {
                if exhausted[i] {
                    0.0
                } else {
                    query.tokens[i].idf_sq / (frontier[i] * query.len)
                }
            })
            .sum();
        if best.len() == k && candidates.is_empty() && f < threshold(&best) {
            break;
        }
        if !any_read {
            break;
        }
    }

    SearchOutcome::complete(best, stats)
}

/// SF-based top-k: geometric threshold descent. Starts at `tau_guess`,
/// runs [`SfAlgorithm`] and halves the threshold until at least `k`
/// results are found (or the floor is hit), then keeps the best `k`.
pub fn topk_sf(
    index: &InvertedIndex<'_>,
    query: &PreparedQuery,
    k: usize,
    tau_guess: f64,
) -> SearchOutcome {
    assert!(
        tau_guess > 0.0 && tau_guess <= 1.0,
        "initial guess must be in (0, 1]"
    );
    let mut stats = SearchStats::default();
    if query.is_empty() || k == 0 {
        return SearchOutcome::complete(Vec::new(), stats);
    }
    let sf = SfAlgorithm::default();
    let mut tau = tau_guess;
    loop {
        let out = sf.search(index, query, tau);
        stats.merge(&out.stats);
        if out.results.len() >= k || tau <= 1e-6 {
            let mut results = out.results;
            results.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
            results.truncate(k);
            return SearchOutcome::complete(results, stats);
        }
        tau *= 0.5;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollectionBuilder, IndexOptions};
    use setsim_tokenize::QGramTokenizer;

    fn setup(texts: &[&str]) -> crate::SetCollection {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        b.extend(texts.iter().copied());
        b.build()
    }

    fn assert_topk_matches(got: &[Match], want: &[Match]) {
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            // Scores must agree; ids may differ only on exact ties.
            assert!((g.score - w.score).abs() < 1e-9, "{g:?} vs {w:?}");
        }
    }

    #[test]
    fn nra_topk_matches_oracle() {
        let c = setup(&[
            "main street",
            "main st",
            "maine street",
            "park avenue",
            "main street east",
            "maine",
        ]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        for text in ["main street", "maine st"] {
            let q = idx.prepare_query_str(text);
            for k in [1, 2, 3, 5, 10] {
                let oracle = topk_scan(&idx, &q, k);
                let got = topk_nra(&idx, &q, k);
                assert_topk_matches(&got.results, &oracle);
            }
        }
    }

    #[test]
    fn sf_topk_matches_oracle() {
        let c = setup(&[
            "main street",
            "main st",
            "maine street",
            "park avenue",
            "main street east",
            "maine",
        ]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        for text in ["main street", "park"] {
            let q = idx.prepare_query_str(text);
            for k in [1, 3, 5] {
                let oracle = topk_scan(&idx, &q, k);
                let got = topk_sf(&idx, &q, k, 0.9);
                assert_topk_matches(&got.results, &oracle);
            }
        }
    }

    #[test]
    fn k_zero_and_empty_query() {
        let c = setup(&["abcd"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("abcd");
        assert!(topk_nra(&idx, &q, 0).results.is_empty());
        assert!(topk_sf(&idx, &q, 0, 0.5).results.is_empty());
        let empty = idx.prepare_query_str("");
        assert!(topk_nra(&idx, &empty, 3).results.is_empty());
    }

    #[test]
    fn k_larger_than_matches() {
        let c = setup(&["abcd", "zzzz"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("abcd");
        let got = topk_nra(&idx, &q, 10);
        // Only one record overlaps the query at all.
        assert_eq!(got.results.len(), 1);
    }

    #[test]
    fn results_sorted_descending() {
        let c = setup(&["abcdef", "abcdeg", "abcxyz", "qrstuv"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("abcdef");
        let got = topk_nra(&idx, &q, 3);
        for w in got.results.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
