//! Parallel batch query execution (the paper's stated future work).
//!
//! The index is immutable after construction, so queries parallelize
//! embarrassingly: a batch is split across scoped worker threads
//! (`std::thread::scope`), each running any [`SelectionAlgorithm`] against
//! the shared index. Results come back in input order.

use crate::algorithms::SelectionAlgorithm;
use crate::{InvertedIndex, PreparedQuery, SearchOutcome};

/// Run `algo` over every query in `queries` using `num_threads` workers,
/// splitting the batch into **static contiguous chunks**.
///
/// Outcomes are returned in the order of `queries`. With `num_threads`
/// of 0 or 1, runs inline on the caller's thread.
///
/// Static chunking idles a whole chunk behind one straggler query; the
/// work-stealing executor in [`crate::QueryEngine::search_batch`] avoids
/// that (this function is kept as the comparison baseline).
pub fn search_batch<A>(
    algo: &A,
    index: &InvertedIndex<'_>,
    queries: &[PreparedQuery],
    tau: f64,
    num_threads: usize,
) -> Vec<SearchOutcome>
where
    A: SelectionAlgorithm + Sync,
{
    if num_threads <= 1 || queries.len() <= 1 {
        return queries.iter().map(|q| algo.search(index, q, tau)).collect();
    }
    let workers = num_threads.min(queries.len());
    let chunk = queries.len().div_ceil(workers);
    let mut slots: Vec<Option<SearchOutcome>> = (0..queries.len()).map(|_| None).collect();

    // A worker panic propagates when the scope joins, so a lost outcome is
    // impossible without a panic reaching the caller.
    std::thread::scope(|scope| {
        for (qchunk, schunk) in queries.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (q, slot) in qchunk.iter().zip(schunk.iter_mut()) {
                    *slot = Some(algo.search(index, q, tau));
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|s| {
            let Some(outcome) = s else {
                unreachable!("every chunk fills its slots before the scope joins")
            };
            outcome
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{FullScan, SfAlgorithm};
    use crate::{CollectionBuilder, IndexOptions};
    use setsim_tokenize::QGramTokenizer;

    fn setup(n: usize) -> crate::SetCollection {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        for i in 0..n {
            b.add(&format!("record number {i:05}"));
        }
        b.build()
    }

    #[test]
    fn parallel_matches_serial() {
        let c = setup(200);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let queries: Vec<_> = (0..16)
            .map(|i| idx.prepare_query_str(&format!("record number {i:05}")))
            .collect();
        let serial = search_batch(&SfAlgorithm::default(), &idx, &queries, 0.8, 1);
        let parallel = search_batch(&SfAlgorithm::default(), &idx, &queries, 0.8, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.ids_sorted(), p.ids_sorted());
        }
    }

    #[test]
    fn parallel_agrees_with_oracle() {
        let c = setup(100);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let queries: Vec<_> = (0..8)
            .map(|i| idx.prepare_query_str(&format!("record number {i:05}")))
            .collect();
        let outs = search_batch(&SfAlgorithm::default(), &idx, &queries, 0.7, 3);
        for (q, out) in queries.iter().zip(&outs) {
            let oracle = FullScan.search(&idx, q, 0.7);
            assert_eq!(out.ids_sorted(), oracle.ids_sorted());
        }
    }

    #[test]
    fn empty_batch() {
        let c = setup(5);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let outs = search_batch(&SfAlgorithm::default(), &idx, &[], 0.5, 4);
        assert!(outs.is_empty());
    }

    #[test]
    fn more_threads_than_queries() {
        let c = setup(20);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let queries = vec![idx.prepare_query_str("record number 00001")];
        let outs = search_batch(&SfAlgorithm::default(), &idx, &queries, 0.8, 16);
        assert_eq!(outs.len(), 1);
        assert!(!outs[0].results.is_empty());
    }
}
