use crate::algorithms::{assert_query_width, AlgoConfig, SelectionAlgorithm, MAX_QUERY_LISTS};
use crate::engine::{CandCell, SearchCtx};
use crate::{properties, safely_below, Match, SearchStatus, SetId};

/// The improved NRA algorithm (Algorithm 2, "iNRA").
///
/// Breadth-first round-robin like NRA, with every semantic property of
/// Section IV engaged:
///
/// * **Length Boundedness** — lists start at `τ·len(q)` (skip-list seek)
///   and are marked complete once the frontier passes `len(q)/τ`.
/// * **Magnitude Boundedness** — a new set is only admitted as a candidate
///   if its exact best-case score `Σⱼ wⱼ(s)` reaches τ; upper bounds of
///   tracked candidates use `wᵢ(s)` (a function of the set's own length),
///   not the looser frontier weights.
/// * **Order Preservation** — if `len(s) < len(fᵢ)` and `s` has not been
///   seen in list `i`, then `s ∉ list i`: the list's contribution resolves
///   to zero without reading further.
///
/// Bookkeeping reducers from Section V: no new candidates are admitted
/// once the unseen-set bound `F` drops below τ; candidate scans are
/// skipped entirely while `F ≥ τ` (the algorithm cannot terminate before
/// then); and a scan ends at the first still-viable candidate.
#[derive(Debug, Clone, Copy, Default)]
pub struct INraAlgorithm {
    /// Property toggles (Figures 8 and 9 ablations).
    pub config: AlgoConfig,
}

impl INraAlgorithm {
    /// iNRA with explicit property toggles.
    pub fn with_config(config: AlgoConfig) -> Self {
        Self { config }
    }
}

impl SelectionAlgorithm for INraAlgorithm {
    fn name(&self) -> &'static str {
        "iNRA"
    }

    fn search_with(&self, ctx: &mut SearchCtx<'_, '_>) {
        let index = ctx.index;
        let query = ctx.query;
        let tau = ctx.tau;
        let budget = ctx.budget;
        let scratch = &mut *ctx.scratch;
        scratch.stats.total_list_elements = index.query_list_elements(query);
        if query.is_empty() {
            return;
        }
        assert_query_width(query);

        // Stack-allocated list table: keeps the warm-scratch hot path free
        // of per-query heap allocation (width is capped by
        // assert_query_width / the engine's QueryTooWide check).
        let mut lists_buf: [&[crate::Posting]; MAX_QUERY_LISTS] = [&[]; MAX_QUERY_LISTS];
        let n = query.num_lists();
        for (slot, qt) in lists_buf.iter_mut().zip(&query.tokens) {
            *slot = index.query_list(qt.token).postings();
        }
        let lists = &lists_buf[..n];
        let (len_lo, len_hi) = properties::length_bounds(tau, query.len);
        let hi_cut = len_hi * (1.0 + crate::EPS_REL);

        scratch.pos.resize(n, 0);
        scratch.closed.resize(n, false);
        // Frontier length per list (last posting read by sorted access).
        scratch.frontier.resize(n, 0.0);
        for (i, list) in lists.iter().enumerate() {
            scratch.pos[i] = if self.config.length_bounding {
                index.query_list(query.tokens[i].token).seek_len(
                    len_lo * (1.0 - crate::EPS_REL),
                    self.config.use_skip_lists,
                    &mut scratch.stats,
                )
            } else {
                0
            };
            scratch.closed[i] = scratch.pos[i] >= list.len();
        }
        // F from the previous round; sound for gating new insertions since
        // frontier weights only decrease.
        let mut f_bound = f64::INFINITY;

        loop {
            if budget.exceeded(&scratch.stats) {
                scratch.status = SearchStatus::BudgetExceeded;
                return;
            }
            scratch.stats.rounds += 1;
            let mut any_read = false;
            for i in 0..n {
                if scratch.closed[i] {
                    continue;
                }
                // Endgame block skipping: once F < τ no posting can be
                // admitted as a new candidate, so list i only owes the
                // entries of candidates still unseen in it and not yet
                // resolved absent by Order Preservation. Jump straight to
                // the smallest such key — every bypassed posting either
                // belongs to no candidate or to one already seen here, and
                // is counted as skipped. If no such candidate exists the
                // list's tail is irrelevant: close it outright. (The
                // frontier is left where the last *read* put it, which
                // only under-resolves — never a false resolution.)
                if self.config.block_skip && safely_below(f_bound, tau) {
                    let mut target: Option<(u64, u32)> = None;
                    for (&id, c) in &scratch.candidates {
                        if c.seen & (1u128 << i) != 0 || c.len < scratch.frontier[i] {
                            continue;
                        }
                        let k = (c.len.to_bits(), id);
                        if target.map_or(true, |t| k < t) {
                            target = Some(k);
                        }
                    }
                    match target {
                        None => {
                            scratch.stats.elements_skipped +=
                                (lists[i].len() - scratch.pos[i]) as u64;
                            scratch.closed[i] = true;
                            continue;
                        }
                        Some((len_bits, id)) => {
                            scratch.pos[i] = index.query_list(query.tokens[i].token).seek_key(
                                scratch.pos[i],
                                f64::from_bits(len_bits),
                                SetId(id),
                                self.config.use_skip_lists,
                                &mut scratch.stats,
                            );
                            if scratch.pos[i] >= lists[i].len() {
                                scratch.closed[i] = true;
                                continue;
                            }
                        }
                    }
                }
                let p = lists[i][scratch.pos[i]];
                scratch.pos[i] += 1;
                scratch.stats.elements_read += 1;
                any_read = true;
                scratch.frontier[i] = p.len;
                if scratch.pos[i] >= lists[i].len() {
                    scratch.closed[i] = true;
                }
                if self.config.length_bounding && p.len > hi_cut {
                    scratch.closed[i] = true;
                    continue;
                }
                let w = query.tokens[i].idf_sq / (p.len * query.len);
                if let Some(c) = scratch.candidates.get_mut(&p.id.0) {
                    c.lower += w;
                    c.seen |= 1u128 << i;
                    continue;
                }
                // New set: admit only if it could still qualify.
                if safely_below(f_bound, tau) {
                    continue;
                }
                let best = properties::max_score(query.idf_sq_total, p.len, query.len);
                if safely_below(best, tau) {
                    continue;
                }
                scratch.stats.candidates_inserted += 1;
                scratch.candidates.insert(
                    p.id.0,
                    CandCell {
                        lower: w,
                        len: p.len,
                        seen: 1u128 << i,
                    },
                );
            }

            let all_closed = scratch.closed.iter().all(|&c| c);
            f_bound = (0..n)
                .map(|i| {
                    if scratch.closed[i] {
                        0.0
                    } else {
                        query.tokens[i].idf_sq / (scratch.frontier[i] * query.len)
                    }
                })
                .sum();

            // The search cannot terminate while F ≥ τ, so candidate scans
            // before that point are wasted work (Section V).
            if safely_below(f_bound, tau) || all_closed {
                scratch.to_remove.clear();
                for (&id, c) in &scratch.candidates {
                    scratch.stats.candidate_scan_steps += 1;
                    let mut upper = c.lower;
                    let mut complete = true;
                    for i in 0..n {
                        if c.seen & (1u128 << i) != 0 {
                            continue;
                        }
                        // Order Preservation: the frontier passed this
                        // set's length, so it cannot be in list i.
                        if scratch.closed[i] || c.len < scratch.frontier[i] {
                            continue;
                        }
                        complete = false;
                        // Magnitude Boundedness: the set's own weight is a
                        // tighter cap than the frontier weight.
                        upper += query.tokens[i].idf_sq / (c.len * query.len);
                    }
                    if complete {
                        // Emit the order-canonical score, not the
                        // round-order partial sum (see canonical_score).
                        let score = crate::algorithms::canonical_score(query, c.seen, c.len);
                        if crate::passes(score, tau) {
                            scratch.results.push(Match {
                                id: SetId(id),
                                score,
                            });
                        }
                        scratch.to_remove.push(id);
                    } else if safely_below(upper, tau) {
                        scratch.to_remove.push(id);
                    } else if !all_closed {
                        break; // early scan exit at the first survivor
                    }
                }
                for id in &scratch.to_remove {
                    scratch.candidates.remove(id);
                }
            }

            if all_closed {
                break;
            }
            if scratch.candidates.is_empty() && safely_below(f_bound, tau) {
                break;
            }
            if !any_read {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{FullScan, NraAlgorithm};
    use crate::{CollectionBuilder, IndexOptions, InvertedIndex};
    use setsim_tokenize::QGramTokenizer;

    fn setup(texts: &[&str]) -> crate::SetCollection {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        b.extend(texts.iter().copied());
        b.build()
    }

    #[test]
    fn agrees_with_scan_all_configs() {
        let c = setup(&[
            "main street",
            "main st",
            "maine street",
            "park avenue",
            "main street east",
            "maine",
            "mainstreet",
            "st main",
        ]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let configs = [
            AlgoConfig::full(),
            AlgoConfig::no_skip_lists(),
            AlgoConfig::no_length_bounding(),
        ];
        for text in ["main street", "maine", "park avenue", "main", "st"] {
            let q = idx.prepare_query_str(text);
            for tau in [0.2, 0.5, 0.8, 1.0] {
                let oracle = FullScan.search(&idx, &q, tau);
                for cfg in configs {
                    let got = INraAlgorithm::with_config(cfg).search(&idx, &q, tau);
                    assert_eq!(
                        got.ids_sorted(),
                        oracle.ids_sorted(),
                        "q={text} tau={tau} cfg={cfg:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn prunes_more_than_nra() {
        // Length ladder with shared grams and a mid-length query: length
        // bounding skips the short prefixes of every list, which blind NRA
        // must read (Lemma 1's direction of improvement).
        let seq = super::super::test_support::pseudoseq(160);
        let texts: Vec<String> = (3..120).map(|i| seq[..i].to_string()).collect();
        let refs: Vec<&str> = texts.iter().map(std::string::String::as_str).collect();
        let c = setup(&refs);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str(&seq[..60]);
        let nra = NraAlgorithm::default().search(&idx, &q, 0.9);
        let inra = INraAlgorithm::default().search(&idx, &q, 0.9);
        assert_eq!(nra.ids_sorted(), inra.ids_sorted());
        assert!(
            2 * inra.stats.elements_read < nra.stats.elements_read,
            "iNRA {} vs NRA {}",
            inra.stats.elements_read,
            nra.stats.elements_read
        );
    }

    #[test]
    fn unique_lengths_tau_one_touches_little() {
        // Theorem 1 with unique lengths and τ = 1: the window collapses to
        // a single length, so almost nothing is read (the Section V
        // observation that any Length Bounded algorithm beats NRA
        // arbitrarily here). A non-repeating sequence keeps gram sets
        // distinct (a cyclic alphabet would alias whole prefixes).
        let seq = super::super::test_support::pseudoseq(120);
        let texts: Vec<String> = (3..80).map(|i| seq[..i].to_string()).collect();
        let refs: Vec<&str> = texts.iter().map(std::string::String::as_str).collect();
        let c = setup(&refs);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str(&seq[..40]);
        let out = INraAlgorithm::default().search(&idx, &q, 1.0);
        assert_eq!(out.results.len(), 1);
        assert!(
            out.stats.pruning_pct() > 50.0,
            "pruning {}%",
            out.stats.pruning_pct()
        );
    }

    #[test]
    fn empty_query() {
        let c = setup(&["abcd"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("");
        assert!(INraAlgorithm::default()
            .search(&idx, &q, 0.5)
            .results
            .is_empty());
    }
}
