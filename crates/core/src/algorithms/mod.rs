//! The eight selection algorithms plus top-k and parallel extensions.
//!
//! All list-based algorithms implement [`SelectionAlgorithm`] and can be
//! swapped freely; every one of them returns exactly the sets with
//! `I(q, s) ≥ τ` (the integration suite checks each against [`FullScan`]).
//!
//! | Algorithm | Section | Access pattern | Properties used |
//! |---|---|---|---|
//! | [`FullScan`] | — | whole database | none (oracle) |
//! | [`SortByIdMerge`] | III-B | all list elements, heap merge | none |
//! | [`TaAlgorithm`] | III-B | sorted + random | monotonicity |
//! | [`NraAlgorithm`] | III-B (Alg. 1) | sorted, round-robin | monotonicity |
//! | [`ITaAlgorithm`] | V | sorted + random | all three |
//! | [`INraAlgorithm`] | V (Alg. 2) | sorted, round-robin | all three |
//! | [`SfAlgorithm`] | VI (Alg. 3) | sorted, depth-first by idf | all three + λᵢ |
//! | [`HybridAlgorithm`] | VII (Alg. 4) | sorted, round-robin | all three + λᵢ + max_len(C) |

mod hybrid;
mod inra;
mod ita;
mod merge;
mod nra;
/// Parallel batch query execution (the paper's stated future work,
/// Section IX).
pub mod parallel;
/// The prefix-filter baseline (Chaudhuri et al., discussed in Section IX).
pub mod prefix;
mod scan;
/// Set similarity self-join composed from selection queries (the join
/// setting of the Section IX related work).
pub mod selfjoin;
mod sf;
/// The relational (SQL) baseline of Section III-A.
pub mod sql;
mod ta;
/// Top-k set similarity search (the paper's stated future work,
/// Section IX).
pub mod topk;

pub use hybrid::HybridAlgorithm;
pub use inra::INraAlgorithm;
pub use ita::ITaAlgorithm;
pub use merge::SortByIdMerge;
pub use nra::NraAlgorithm;
#[cfg(feature = "audit")]
pub(crate) use scan::exact_score;
pub use scan::FullScan;
pub use sf::SfAlgorithm;
pub use ta::TaAlgorithm;

use crate::engine::{ArmedBudget, Scratch, SearchCtx};
use crate::{validate_tau, InvertedIndex, PreparedQuery, SearchOutcome};

/// Toggles for the property-based optimizations, matching the ablations of
/// Figures 8 (Length Bounding) and 9 (skip lists). `#[non_exhaustive]` so
/// future toggles are non-breaking; construct via the named presets or
/// [`Default`] plus the builder setters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct AlgoConfig {
    /// Apply Theorem 1: seek lists to `τ·len(q)` and stop them past
    /// `len(q)/τ`. Disabling reproduces the "NLB" variants of Figure 8.
    pub length_bounding: bool,
    /// Use the per-list skip lists for the initial seek. Disabling forces
    /// a scan-and-discard of the prefix — the "NSL" variants of Figure 9.
    /// Irrelevant unless `length_bounding` is on.
    pub use_skip_lists: bool,
    /// Let SF and iNRA jump forward *inside* the Theorem 1 window — over
    /// postings that provably cannot create or resolve a candidate — via
    /// each list's skip layer (skip list or block-max directory). Skipped
    /// elements are counted in `elements_skipped`, never read. Disabling
    /// reproduces the pre-kernel element-at-a-time behaviour exactly.
    pub block_skip: bool,
}

impl Default for AlgoConfig {
    fn default() -> Self {
        Self {
            length_bounding: true,
            use_skip_lists: true,
            block_skip: true,
        }
    }
}

impl AlgoConfig {
    /// Everything on (the paper's default setting).
    pub fn full() -> Self {
        Self::default()
    }

    /// Length Bounding disabled (Figure 8's NLB).
    pub fn no_length_bounding() -> Self {
        Self {
            length_bounding: false,
            use_skip_lists: false,
            block_skip: false,
        }
    }

    /// Skip lists disabled but Length Bounding on (Figure 9's NSL).
    /// Forward jumps need the skip layer too, so they are off as well.
    pub fn no_skip_lists() -> Self {
        Self {
            length_bounding: true,
            use_skip_lists: false,
            block_skip: false,
        }
    }

    /// In-window forward jumps disabled; everything else on. Isolates the
    /// effect of the candidate-targeted skips from the initial seeks.
    pub fn no_block_skip() -> Self {
        Self {
            block_skip: false,
            ..Self::default()
        }
    }

    /// Toggle Length Bounding (Theorem 1, the Figure 8 ablation).
    #[must_use]
    pub fn with_length_bounding(mut self, on: bool) -> Self {
        self.length_bounding = on;
        self
    }

    /// Toggle skip-list seeks (the Figure 9 ablation).
    #[must_use]
    pub fn with_skip_lists(mut self, on: bool) -> Self {
        self.use_skip_lists = on;
        self
    }

    /// Toggle in-window forward jumps (SF and iNRA candidate-targeted
    /// seeks through the skip layer).
    #[must_use]
    pub fn with_block_skip(mut self, on: bool) -> Self {
        self.block_skip = on;
        self
    }
}

/// A set similarity selection algorithm: given a prepared query and a
/// threshold `τ ∈ (0, 1]`, return every set with `I(q, s) ≥ τ`.
pub trait SelectionAlgorithm {
    /// Display name used in experiment output ("SF", "iNRA", …).
    fn name(&self) -> &'static str;

    /// Run the selection against the reusable scratch state carried by
    /// `ctx` — the hot-path entry point used by [`crate::engine`].
    ///
    /// Implementations must be exact when they run to completion: no
    /// false negatives, no false positives, exact scores in the result.
    /// They must honor the request budget by polling
    /// [`SearchCtx::budget_exhausted`] at progress checkpoints and
    /// stopping when it trips, emitting only fully-scored matches (a
    /// truncated result must be an exact subset of the true answer).
    /// `ctx.tau()` is pre-validated to lie in `(0, 1]`.
    fn search_with(&self, ctx: &mut SearchCtx<'_, '_>);

    /// Run the selection standalone, allocating fresh scratch state — a
    /// thin wrapper over [`search_with`](Self::search_with) kept for
    /// tests, the audit suite, and one-off calls. Serving code should go
    /// through [`crate::engine::QueryEngine`] instead (enforced for the
    /// CLI by `cargo xtask check`).
    ///
    /// # Panics
    /// Panics if `tau` is outside `(0, 1]`. (The engine path reports
    /// `SearchError::InvalidTau` instead.)
    fn search(&self, index: &InvertedIndex<'_>, query: &PreparedQuery, tau: f64) -> SearchOutcome {
        validate_tau(tau);
        let mut scratch = Scratch::default();
        let mut ctx = SearchCtx::new(index, query, tau, ArmedBudget::unlimited(), &mut scratch);
        self.search_with(&mut ctx);
        scratch.take_outcome()
    }
}

/// Bitset width over query lists, the cap enforced by the algorithms that
/// track per-list membership in a `u128` (NRA, iNRA, Hybrid; Section V's
/// candidate bookkeeping). Queries are words decomposed into q-grams, so
/// 128 lists is far beyond anything the paper's workloads produce.
pub const MAX_QUERY_LISTS: usize = 128;

/// Canonical emission score for a candidate whose matched query lists are
/// the set bits of `seen`: sum the idf² weights **in query-token order**,
/// then divide once by `len(s)·len(q)` — exactly [`FullScan`]'s arithmetic
/// shape. The algorithms discover a candidate's matches in traversal
/// order (round-robin depth for NRA/iNRA/Hybrid, first-seen list for
/// TA/iTA), and floating-point addition is not associative, so emitting
/// the *accumulated* partial sum would leak traversal order into the
/// reported bits. Routing every emission through this helper makes the
/// reported score a pure function of the match set — which is what lets a
/// length-banded [`ShardedIndex`](crate::ShardedIndex), whose shards
/// traverse shorter lists in different orders, return bit-identical
/// results to the unsharded index.
#[inline]
pub(crate) fn canonical_score(query: &PreparedQuery, seen: u128, len_s: f64) -> f64 {
    let mut dot = 0.0;
    for (i, qt) in query.tokens.iter().enumerate() {
        if seen & (1u128 << i) != 0 {
            dot += qt.idf_sq;
        }
    }
    dot / (len_s * query.len)
}

pub(crate) fn assert_query_width(query: &PreparedQuery) {
    assert!(
        query.num_lists() <= MAX_QUERY_LISTS,
        "query has {} lists; maximum supported is {MAX_QUERY_LISTS}",
        query.num_lists()
    );
}

#[cfg(test)]
pub(crate) mod test_support {
    /// Deterministic pseudo-random lowercase sequence (LCG). Prefixes of it
    /// have pairwise-distinct gram sets and strictly growing normalized
    /// lengths — unlike a cycled alphabet, whose prefixes alias each other's
    /// gram sets every period.
    pub(crate) fn pseudoseq(len: usize) -> String {
        let mut x: u32 = 0xbeef;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(1_103_515_245).wrapping_add(12_345);
                char::from(b'a' + ((x >> 16) % 26) as u8)
            })
            .collect()
    }
}
