use crate::algorithms::SelectionAlgorithm;
use crate::engine::SearchCtx;
use crate::{InvertedIndex, Match, PreparedQuery, SearchStatus, SetId};

/// Exhaustive scan: scores every database set directly from the base
/// table. `O(N · |q|)`, no index structures used.
///
/// This is the correctness oracle for every other algorithm, and the
/// behaviour of the relational baseline when no index is available (which
/// the paper reports as "did not terminate in a reasonable amount of
/// time" at their scale).
#[derive(Debug, Clone, Copy, Default)]
pub struct FullScan;

impl SelectionAlgorithm for FullScan {
    fn name(&self) -> &'static str {
        "scan"
    }

    fn search_with(&self, ctx: &mut SearchCtx<'_, '_>) {
        let index = ctx.index;
        let query = ctx.query;
        let tau = ctx.tau;
        let budget = ctx.budget;
        let scratch = &mut *ctx.scratch;
        scratch.stats.total_list_elements = index.query_list_elements(query);
        if query.is_empty() || query.len == 0.0 {
            return;
        }
        for (id, set) in index.collection().iter_sets() {
            if budget.exceeded(&scratch.stats) {
                scratch.status = SearchStatus::BudgetExceeded;
                return;
            }
            // Base-table access, not a sorted list read: counted in
            // records_scanned so the pruning invariant
            // elements_read ≤ total_list_elements holds.
            scratch.stats.records_scanned += 1;
            let len_s = index.set_len(id);
            if len_s == 0.0 {
                continue;
            }
            let mut dot = 0.0;
            for qt in &query.tokens {
                if set.contains(qt.token) {
                    dot += qt.idf_sq;
                }
            }
            let score = dot / (len_s * query.len);
            if crate::passes(score, tau) {
                scratch.results.push(Match { id, score });
            }
        }
    }
}

/// Exact IDF score of one set against a prepared query (used by tests and
/// the top-k oracle).
pub(crate) fn exact_score(index: &InvertedIndex<'_>, query: &PreparedQuery, id: SetId) -> f64 {
    let set = index.collection().set(id);
    let len_s = index.set_len(id);
    if len_s == 0.0 || query.len == 0.0 {
        return 0.0;
    }
    let dot: f64 = query
        .tokens
        .iter()
        .filter(|qt| set.contains(qt.token))
        .map(|qt| qt.idf_sq)
        .sum();
    dot / (len_s * query.len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollectionBuilder, IndexOptions};
    use setsim_tokenize::QGramTokenizer;

    fn setup(texts: &[&str]) -> crate::SetCollection {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        b.extend(texts.iter().copied());
        b.build()
    }

    #[test]
    fn exact_match_scores_one() {
        let c = setup(&["main street", "park avenue"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("main street");
        let out = FullScan.search(&idx, &q, 0.99);
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].id, SetId(0));
        assert!((out.results[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tau_one_returns_only_exact() {
        let c = setup(&["abcdef", "abcdeg", "abcdef"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("abcdef");
        let out = FullScan.search(&idx, &q, 1.0);
        assert_eq!(out.ids_sorted(), vec![SetId(0), SetId(2)]);
    }

    #[test]
    fn low_tau_returns_everything_overlapping() {
        let c = setup(&["abcdef", "defghi", "zzzzzz"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("abcdef");
        let out = FullScan.search(&idx, &q, 0.01);
        // zzzzzz shares no grams.
        assert_eq!(out.ids_sorted(), vec![SetId(0), SetId(1)]);
    }

    #[test]
    fn empty_query_returns_nothing() {
        let c = setup(&["abcdef"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("");
        let out = FullScan.search(&idx, &q, 0.5);
        assert!(out.results.is_empty());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_tau_panics() {
        let c = setup(&["abcdef"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("abcdef");
        let _ = FullScan.search(&idx, &q, 0.0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn tau_above_one_panics() {
        let c = setup(&["abcdef"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("abcdef");
        let _ = FullScan.search(&idx, &q, 1.5);
    }

    #[test]
    fn exact_score_agrees_with_scan() {
        let c = setup(&["abcdef", "abcxyz", "qrstuv"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("abcdef");
        let out = FullScan.search(&idx, &q, 0.0001);
        for m in &out.results {
            assert!((exact_score(&idx, &q, m.id) - m.score).abs() < 1e-12);
        }
    }
}
