use crate::algorithms::{assert_query_width, AlgoConfig, SelectionAlgorithm, MAX_QUERY_LISTS};
use crate::engine::{PoolCand, SearchCtx};
use crate::{properties, safely_below, Match, SearchStatus, SetId};

/// The Hybrid algorithm (Section VII, Algorithm 4).
///
/// Round-robin breadth-first like iNRA, but each list additionally stops
/// at the SF reading bound: once list `i`'s frontier exceeds both `λᵢ` (no
/// new viable candidate can be *first discovered* here) and `max_len(C)`
/// (no tracked candidate can still appear here), the list **rests**. A
/// resting list resumes if a later-discovered candidate raises
/// `max_len(C)` past its head — that re-read rule is what makes the stop
/// sound under round-robin, where (unlike SF's fixed order) a set's first
/// sighting can come from any of its lists.
///
/// Hybrid therefore never descends deeper into a list than SF, and being
/// round-robin it also never reads more than iNRA (Lemma 4): the best of
/// both in element accesses. The price is bookkeeping: `max_len(C)` is
/// consulted on every access, which the paper's special candidate
/// organization makes `O(n)` — candidates are partitioned into per-list
/// append-only vectors (each sorted by length by construction, since
/// lists are scanned in increasing length order) plus a hash table on set
/// ids, so `max_len(C)` is read off the tails and pruning pops dead
/// entries from the backs. That pool lives in the engine scratch
/// ([`crate::engine::Scratch`]) so repeated queries reuse its allocations.
#[derive(Debug, Clone, Copy, Default)]
pub struct HybridAlgorithm {
    /// Property toggles (Figures 8 and 9 ablations).
    pub config: AlgoConfig,
}

impl HybridAlgorithm {
    /// Hybrid with explicit property toggles.
    pub fn with_config(config: AlgoConfig) -> Self {
        Self { config }
    }
}

impl SelectionAlgorithm for HybridAlgorithm {
    fn name(&self) -> &'static str {
        "Hybrid"
    }

    fn search_with(&self, ctx: &mut SearchCtx<'_, '_>) {
        let index = ctx.index;
        let query = ctx.query;
        let tau = ctx.tau;
        let budget = ctx.budget;
        let scratch = &mut *ctx.scratch;
        scratch.stats.total_list_elements = index.query_list_elements(query);
        if query.is_empty() {
            return;
        }
        assert_query_width(query);

        // Stack-allocated list table (see iNRA): no per-query heap
        // allocation on a warm scratch.
        let mut lists_buf: [&[crate::Posting]; MAX_QUERY_LISTS] = [&[]; MAX_QUERY_LISTS];
        let n = query.num_lists();
        for (slot, qt) in lists_buf.iter_mut().zip(&query.tokens) {
            *slot = index.query_list(qt.token).postings();
        }
        let lists = &lists_buf[..n];
        let (len_lo, len_hi) = properties::length_bounds(tau, query.len);
        let hi_cut = len_hi * (1.0 + crate::EPS_REL);
        query.idf_sq_suffix_sums_into(&mut scratch.suffix);
        properties::lambda_cutoffs_into(query, tau, &scratch.suffix, &mut scratch.lambdas);
        for l in &mut scratch.lambdas {
            *l *= 1.0 + crate::EPS_REL;
        }

        scratch.pos.resize(n, 0);
        scratch.closed.resize(n, false);
        scratch.resting.resize(n, false);
        for (i, list) in lists.iter().enumerate() {
            scratch.pos[i] = if self.config.length_bounding {
                index.query_list(query.tokens[i].token).seek_len(
                    len_lo * (1.0 - crate::EPS_REL),
                    self.config.use_skip_lists,
                    &mut scratch.stats,
                )
            } else {
                0
            };
            scratch.closed[i] = scratch.pos[i] >= list.len();
        }
        scratch.pool.prepare(n);
        let mut f_star = f64::INFINITY;

        // Next unread length per list (∞ when closed/exhausted).
        let next_len = |pos: &[usize], closed: &[bool], i: usize| -> f64 {
            if closed[i] || pos[i] >= lists[i].len() {
                f64::INFINITY
            } else {
                lists[i][pos[i]].len
            }
        };

        loop {
            if budget.exceeded(&scratch.stats) {
                scratch.status = SearchStatus::BudgetExceeded;
                return;
            }
            scratch.stats.rounds += 1;
            let mut any_read = false;
            for i in 0..n {
                if scratch.closed[i] {
                    continue;
                }
                if scratch.resting[i] {
                    // Resume if a tracked candidate may still appear here.
                    let head = next_len(&scratch.pos, &scratch.closed, i);
                    let bound = scratch.pool.max_len().max(scratch.lambdas[i]);
                    if head <= bound {
                        scratch.resting[i] = false;
                    } else {
                        continue;
                    }
                }
                let p = lists[i][scratch.pos[i]];
                scratch.pos[i] += 1;
                scratch.stats.elements_read += 1;
                any_read = true;
                if scratch.pos[i] >= lists[i].len() {
                    scratch.closed[i] = true;
                }
                if self.config.length_bounding && p.len > hi_cut {
                    scratch.closed[i] = true;
                    continue;
                }
                let w = query.tokens[i].idf_sq / (p.len * query.len);
                if let Some(c) = scratch.pool.get_mut(p.id.0) {
                    c.lower += w;
                    c.seen |= 1u128 << i;
                } else {
                    let admissible = !safely_below(f_star, tau)
                        && !safely_below(
                            properties::max_score(query.idf_sq_total, p.len, query.len),
                            tau,
                        );
                    if admissible {
                        scratch.stats.candidates_inserted += 1;
                        scratch.pool.insert(
                            i,
                            PoolCand {
                                id: p.id.0,
                                len: p.len,
                                lower: w,
                                seen: 1u128 << i,
                                dead: false,
                            },
                        );
                    }
                }
                // SF-style stop: beyond λᵢ nothing new viable can be first
                // discovered here, and beyond max_len(C) no tracked
                // candidate can still appear here.
                if !scratch.closed[i]
                    && p.len > scratch.lambdas[i]
                    && p.len > scratch.pool.max_len()
                {
                    scratch.resting[i] = true;
                }
            }

            let all_closed = scratch.closed.iter().all(|&c| c);
            // Unseen-set bound via Magnitude Boundedness: a set first
            // discovered in list j has len ≥ that list's head, so its best
            // score is suffix(j) / (head·len(q)); the max over lists bounds
            // every unseen set (tighter than NRA's frontier sum).
            f_star = (0..n)
                .filter(|&j| !scratch.closed[j])
                .map(|j| {
                    let head = next_len(&scratch.pos, &scratch.closed, j)
                        .max(len_lo.max(f64::MIN_POSITIVE));
                    scratch.suffix[j] / (head * query.len)
                })
                .fold(0.0f64, f64::max);

            if safely_below(f_star, tau) || all_closed || !any_read {
                for li in 0..n {
                    for pi in 0..scratch.pool.per_list[li].len() {
                        let (id, len, lower, seen, dead) = {
                            let c = &scratch.pool.per_list[li][pi];
                            (c.id, c.len, c.lower, c.seen, c.dead)
                        };
                        if dead {
                            continue;
                        }
                        scratch.stats.candidate_scan_steps += 1;
                        let mut upper = lower;
                        let mut complete = true;
                        for i in 0..n {
                            if seen & (1u128 << i) != 0 {
                                continue;
                            }
                            // Resolved absent: list fully consumed for this
                            // length range (Order Preservation on the next
                            // unread posting).
                            if scratch.closed[i] || len < next_len(&scratch.pos, &scratch.closed, i)
                            {
                                continue;
                            }
                            complete = false;
                            upper += query.tokens[i].idf_sq / (len * query.len);
                        }
                        if complete {
                            // Emit the order-canonical score, not the
                            // round-order partial sum (see canonical_score).
                            let score = crate::algorithms::canonical_score(query, seen, len);
                            if crate::passes(score, tau) {
                                scratch.results.push(Match {
                                    id: SetId(id),
                                    score,
                                });
                            }
                            scratch.pool.kill_at(li, pi);
                        } else if safely_below(upper, tau) {
                            scratch.pool.kill_at(li, pi);
                        }
                    }
                }
            }

            if all_closed {
                break;
            }
            if scratch.pool.is_empty() && safely_below(f_star, tau) {
                break;
            }
            if !any_read {
                if scratch.pool.is_empty() {
                    break;
                }
                // Defensive: all lists rest yet candidates remain (cannot
                // happen — resting implies frontier > max_len(C), which
                // resolves every candidate). Force progress.
                scratch.resting.fill(false);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{FullScan, INraAlgorithm, SfAlgorithm};
    use crate::{CollectionBuilder, IndexOptions, InvertedIndex};
    use setsim_tokenize::QGramTokenizer;

    fn setup(texts: &[&str]) -> crate::SetCollection {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        b.extend(texts.iter().copied());
        b.build()
    }

    #[test]
    fn agrees_with_scan_all_configs() {
        let c = setup(&[
            "main street",
            "main st",
            "maine street",
            "park avenue",
            "main street east",
            "maine",
            "mainstreet",
            "st main",
        ]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let configs = [
            AlgoConfig::full(),
            AlgoConfig::no_skip_lists(),
            AlgoConfig::no_length_bounding(),
        ];
        for text in ["main street", "maine", "park avenue", "main", "st"] {
            let q = idx.prepare_query_str(text);
            for tau in [0.2, 0.5, 0.8, 1.0] {
                let oracle = FullScan.search(&idx, &q, tau);
                for cfg in configs {
                    let got = HybridAlgorithm::with_config(cfg).search(&idx, &q, tau);
                    assert_eq!(
                        got.ids_sorted(),
                        oracle.ids_sorted(),
                        "q={text} tau={tau} cfg={cfg:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn reads_no_more_than_inra_and_sf() {
        let texts: Vec<String> = (0..400)
            .map(|i| {
                format!(
                    "entry {} number {:04}",
                    if i % 7 == 0 { "rare" } else { "common" },
                    i
                )
            })
            .collect();
        let refs: Vec<&str> = texts.iter().map(std::string::String::as_str).collect();
        let c = setup(&refs);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        for qtext in ["rare", "common", "entry number"] {
            let q = idx.prepare_query_str(qtext);
            for tau in [0.6, 0.8, 0.95] {
                let hy = HybridAlgorithm::default().search(&idx, &q, tau);
                let inra = INraAlgorithm::default().search(&idx, &q, tau);
                let sf = SfAlgorithm::default().search(&idx, &q, tau);
                assert_eq!(hy.ids_sorted(), inra.ids_sorted());
                assert_eq!(hy.ids_sorted(), sf.ids_sorted());
                // Lemma 4's spirit: Hybrid tracks the better of iNRA/SF
                // up to boundary-posting accounting (SF peeks the posting
                // that stops a scan without consuming it; round-robin
                // algorithms consume it — one posting per list per round).
                let slack = 2 * q.num_lists() as u64 + 8;
                assert!(
                    hy.stats.elements_read <= inra.stats.elements_read + slack,
                    "q={qtext} tau={tau}: hybrid {} vs iNRA {}",
                    hy.stats.elements_read,
                    inra.stats.elements_read
                );
                assert!(
                    hy.stats.elements_read <= sf.stats.elements_read + slack,
                    "q={qtext} tau={tau}: hybrid {} vs SF {}",
                    hy.stats.elements_read,
                    sf.stats.elements_read
                );
            }
        }
    }

    #[test]
    fn empty_query() {
        let c = setup(&["abcd"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("");
        assert!(HybridAlgorithm::default()
            .search(&idx, &q, 0.5)
            .results
            .is_empty());
    }
}
