use crate::algorithms::{assert_query_width, AlgoConfig, SelectionAlgorithm};
use crate::{
    properties, safely_below, validate_tau, InvertedIndex, Match, PreparedQuery, SearchOutcome,
    SearchStats, SetId,
};
use std::collections::HashMap;

/// The Hybrid algorithm (Section VII, Algorithm 4).
///
/// Round-robin breadth-first like iNRA, but each list additionally stops
/// at the SF reading bound: once list `i`'s frontier exceeds both `λᵢ` (no
/// new viable candidate can be *first discovered* here) and `max_len(C)`
/// (no tracked candidate can still appear here), the list **rests**. A
/// resting list resumes if a later-discovered candidate raises
/// `max_len(C)` past its head — that re-read rule is what makes the stop
/// sound under round-robin, where (unlike SF's fixed order) a set's first
/// sighting can come from any of its lists.
///
/// Hybrid therefore never descends deeper into a list than SF, and being
/// round-robin it also never reads more than iNRA (Lemma 4): the best of
/// both in element accesses. The price is bookkeeping: `max_len(C)` is
/// consulted on every access, which the paper's special candidate
/// organization makes `O(n)` — candidates are partitioned into per-list
/// append-only vectors (each sorted by length by construction, since
/// lists are scanned in increasing length order) plus a hash table on set
/// ids, so `max_len(C)` is read off the tails and pruning pops dead
/// entries from the backs.
#[derive(Debug, Clone, Copy, Default)]
pub struct HybridAlgorithm {
    /// Property toggles (Figures 8 and 9 ablations).
    pub config: AlgoConfig,
}

impl HybridAlgorithm {
    /// Hybrid with explicit property toggles.
    pub fn with_config(config: AlgoConfig) -> Self {
        Self { config }
    }
}

struct PoolCand {
    id: u32,
    len: f64,
    lower: f64,
    seen: u128,
    dead: bool,
}

/// The paper's candidate organization: one length-sorted append-only list
/// per inverted list, plus a hash table for id access.
struct Pool {
    per_list: Vec<Vec<PoolCand>>,
    index: HashMap<u32, (u32, u32)>,
    alive: usize,
}

impl Pool {
    fn new(n: usize) -> Self {
        Self {
            per_list: (0..n).map(|_| Vec::new()).collect(),
            index: HashMap::new(),
            alive: 0,
        }
    }

    fn get_mut(&mut self, id: u32) -> Option<&mut PoolCand> {
        let &(l, p) = self.index.get(&id)?;
        let c = &mut self.per_list[l as usize][p as usize];
        debug_assert!(!c.dead);
        Some(c)
    }

    fn insert(&mut self, list: usize, cand: PoolCand) {
        let v = &mut self.per_list[list];
        debug_assert!(v
            .last()
            .map_or(true, |last| last.dead || last.len <= cand.len));
        self.index.insert(cand.id, (list as u32, v.len() as u32));
        v.push(cand);
        self.alive += 1;
    }

    /// Largest length among live candidates, reading only list tails
    /// (dead tail entries are popped on the way — the paper's
    /// back-pruning).
    fn max_len(&mut self) -> f64 {
        let mut max = f64::NEG_INFINITY;
        for v in &mut self.per_list {
            while v.last().is_some_and(|c| c.dead) {
                v.pop();
            }
            if let Some(c) = v.last() {
                max = max.max(c.len);
            }
        }
        max
    }

    fn kill_at(&mut self, list: usize, pos: usize) {
        let c = &mut self.per_list[list][pos];
        if !c.dead {
            c.dead = true;
            self.index.remove(&c.id);
            self.alive -= 1;
        }
    }

    fn is_empty(&self) -> bool {
        self.alive == 0
    }
}

impl SelectionAlgorithm for HybridAlgorithm {
    fn name(&self) -> &'static str {
        "Hybrid"
    }

    fn search(&self, index: &InvertedIndex<'_>, query: &PreparedQuery, tau: f64) -> SearchOutcome {
        validate_tau(tau);
        assert_query_width(query);
        let mut stats = SearchStats {
            total_list_elements: index.query_list_elements(query),
            ..Default::default()
        };
        let mut results = Vec::new();
        if query.is_empty() {
            return SearchOutcome { results, stats };
        }

        let lists: Vec<&[crate::Posting]> = query
            .tokens
            .iter()
            .map(|qt| index.query_list(qt.token).postings())
            .collect();
        let n = lists.len();
        let (len_lo, len_hi) = properties::length_bounds(tau, query.len);
        let hi_cut = len_hi * (1.0 + crate::EPS_REL);
        let lambdas: Vec<f64> = properties::lambda_cutoffs(query, tau)
            .into_iter()
            .map(|l| l * (1.0 + crate::EPS_REL))
            .collect();
        let suffix = query.idf_sq_suffix_sums();

        let mut pos: Vec<usize> = (0..n)
            .map(|i| {
                if self.config.length_bounding {
                    index.query_list(query.tokens[i].token).seek_len(
                        len_lo * (1.0 - crate::EPS_REL),
                        self.config.use_skip_lists,
                        &mut stats,
                    )
                } else {
                    0
                }
            })
            .collect();
        let mut closed: Vec<bool> = (0..n).map(|i| pos[i] >= lists[i].len()).collect();
        let mut resting = vec![false; n];
        let mut pool = Pool::new(n);
        let mut f_star = f64::INFINITY;

        // Next unread length per list (∞ when closed/exhausted).
        let next_len = |pos: &[usize], closed: &[bool], i: usize| -> f64 {
            if closed[i] || pos[i] >= lists[i].len() {
                f64::INFINITY
            } else {
                lists[i][pos[i]].len
            }
        };

        loop {
            stats.rounds += 1;
            let mut any_read = false;
            for i in 0..n {
                if closed[i] {
                    continue;
                }
                if resting[i] {
                    // Resume if a tracked candidate may still appear here.
                    let head = next_len(&pos, &closed, i);
                    let bound = pool.max_len().max(lambdas[i]);
                    if head <= bound {
                        resting[i] = false;
                    } else {
                        continue;
                    }
                }
                let p = lists[i][pos[i]];
                pos[i] += 1;
                stats.elements_read += 1;
                any_read = true;
                if pos[i] >= lists[i].len() {
                    closed[i] = true;
                }
                if self.config.length_bounding && p.len > hi_cut {
                    closed[i] = true;
                    continue;
                }
                let w = query.tokens[i].idf_sq / (p.len * query.len);
                if let Some(c) = pool.get_mut(p.id.0) {
                    c.lower += w;
                    c.seen |= 1u128 << i;
                } else {
                    let admissible = !safely_below(f_star, tau)
                        && !safely_below(
                            properties::max_score(query.idf_sq_total, p.len, query.len),
                            tau,
                        );
                    if admissible {
                        stats.candidates_inserted += 1;
                        pool.insert(
                            i,
                            PoolCand {
                                id: p.id.0,
                                len: p.len,
                                lower: w,
                                seen: 1u128 << i,
                                dead: false,
                            },
                        );
                    }
                }
                // SF-style stop: beyond λᵢ nothing new viable can be first
                // discovered here, and beyond max_len(C) no tracked
                // candidate can still appear here.
                if !closed[i] && p.len > lambdas[i] && p.len > pool.max_len() {
                    resting[i] = true;
                }
            }

            let all_closed = closed.iter().all(|&c| c);
            // Unseen-set bound via Magnitude Boundedness: a set first
            // discovered in list j has len ≥ that list's head, so its best
            // score is suffix(j) / (head·len(q)); the max over lists bounds
            // every unseen set (tighter than NRA's frontier sum).
            f_star = (0..n)
                .filter(|&j| !closed[j])
                .map(|j| {
                    let head = next_len(&pos, &closed, j).max(len_lo.max(f64::MIN_POSITIVE));
                    suffix[j] / (head * query.len)
                })
                .fold(0.0f64, f64::max);

            if safely_below(f_star, tau) || all_closed || !any_read {
                for li in 0..n {
                    for pi in 0..pool.per_list[li].len() {
                        let (id, len, lower, seen, dead) = {
                            let c = &pool.per_list[li][pi];
                            (c.id, c.len, c.lower, c.seen, c.dead)
                        };
                        if dead {
                            continue;
                        }
                        stats.candidate_scan_steps += 1;
                        let mut upper = lower;
                        let mut complete = true;
                        for i in 0..n {
                            if seen & (1u128 << i) != 0 {
                                continue;
                            }
                            // Resolved absent: list fully consumed for this
                            // length range (Order Preservation on the next
                            // unread posting).
                            if closed[i] || len < next_len(&pos, &closed, i) {
                                continue;
                            }
                            complete = false;
                            upper += query.tokens[i].idf_sq / (len * query.len);
                        }
                        if complete {
                            if crate::passes(lower, tau) {
                                results.push(Match {
                                    id: SetId(id),
                                    score: lower,
                                });
                            }
                            pool.kill_at(li, pi);
                        } else if safely_below(upper, tau) {
                            pool.kill_at(li, pi);
                        }
                    }
                }
            }

            if all_closed {
                break;
            }
            if pool.is_empty() && safely_below(f_star, tau) {
                break;
            }
            if !any_read {
                if pool.is_empty() {
                    break;
                }
                // Defensive: all lists rest yet candidates remain (cannot
                // happen — resting implies frontier > max_len(C), which
                // resolves every candidate). Force progress.
                resting.fill(false);
            }
        }

        SearchOutcome { results, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{FullScan, INraAlgorithm, SfAlgorithm};
    use crate::{CollectionBuilder, IndexOptions};
    use setsim_tokenize::QGramTokenizer;

    fn setup(texts: &[&str]) -> crate::SetCollection {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        b.extend(texts.iter().copied());
        b.build()
    }

    #[test]
    fn agrees_with_scan_all_configs() {
        let c = setup(&[
            "main street",
            "main st",
            "maine street",
            "park avenue",
            "main street east",
            "maine",
            "mainstreet",
            "st main",
        ]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let configs = [
            AlgoConfig::full(),
            AlgoConfig::no_skip_lists(),
            AlgoConfig::no_length_bounding(),
        ];
        for text in ["main street", "maine", "park avenue", "main", "st"] {
            let q = idx.prepare_query_str(text);
            for tau in [0.2, 0.5, 0.8, 1.0] {
                let oracle = FullScan.search(&idx, &q, tau);
                for cfg in configs {
                    let got = HybridAlgorithm::with_config(cfg).search(&idx, &q, tau);
                    assert_eq!(
                        got.ids_sorted(),
                        oracle.ids_sorted(),
                        "q={text} tau={tau} cfg={cfg:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn reads_no_more_than_inra_and_sf() {
        let texts: Vec<String> = (0..400)
            .map(|i| {
                format!(
                    "entry {} number {:04}",
                    if i % 7 == 0 { "rare" } else { "common" },
                    i
                )
            })
            .collect();
        let refs: Vec<&str> = texts.iter().map(std::string::String::as_str).collect();
        let c = setup(&refs);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        for qtext in ["rare", "common", "entry number"] {
            let q = idx.prepare_query_str(qtext);
            for tau in [0.6, 0.8, 0.95] {
                let hy = HybridAlgorithm::default().search(&idx, &q, tau);
                let inra = INraAlgorithm::default().search(&idx, &q, tau);
                let sf = SfAlgorithm::default().search(&idx, &q, tau);
                assert_eq!(hy.ids_sorted(), inra.ids_sorted());
                assert_eq!(hy.ids_sorted(), sf.ids_sorted());
                // Lemma 4's spirit: Hybrid tracks the better of iNRA/SF
                // up to boundary-posting accounting (SF peeks the posting
                // that stops a scan without consuming it; round-robin
                // algorithms consume it — one posting per list per round).
                let slack = 2 * q.num_lists() as u64 + 8;
                assert!(
                    hy.stats.elements_read <= inra.stats.elements_read + slack,
                    "q={qtext} tau={tau}: hybrid {} vs iNRA {}",
                    hy.stats.elements_read,
                    inra.stats.elements_read
                );
                assert!(
                    hy.stats.elements_read <= sf.stats.elements_read + slack,
                    "q={qtext} tau={tau}: hybrid {} vs SF {}",
                    hy.stats.elements_read,
                    sf.stats.elements_read
                );
            }
        }
    }

    #[test]
    fn empty_query() {
        let c = setup(&["abcd"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("");
        assert!(HybridAlgorithm::default()
            .search(&idx, &q, 0.5)
            .results
            .is_empty());
    }
}
