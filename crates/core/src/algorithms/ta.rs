use crate::algorithms::SelectionAlgorithm;
use crate::engine::SearchCtx;
use crate::{safely_below, Match, SearchStatus};

/// The classic Threshold Algorithm (Fagin et al.) adapted to selection
/// queries.
///
/// Round-robin sorted access over the weight-sorted lists; every newly
/// seen set's score is completed immediately by random-access probes
/// (extendible-hash membership tests) into every other list. The search
/// stops when the frontier bound `F = Σᵢ wᵢ(fᵢ)` — the best score any
/// unseen set could attain — drops below τ.
///
/// TA needs no candidate set, but pays `n − 1` random probes per new set,
/// which is what makes it uncompetitive in Figure 6 (and why extendible
/// hashing dominates the index budget in Figure 5).
#[derive(Debug, Clone, Copy, Default)]
pub struct TaAlgorithm;

impl SelectionAlgorithm for TaAlgorithm {
    fn name(&self) -> &'static str {
        "TA"
    }

    fn search_with(&self, ctx: &mut SearchCtx<'_, '_>) {
        let index = ctx.index;
        let query = ctx.query;
        let tau = ctx.tau;
        let budget = ctx.budget;
        let scratch = &mut *ctx.scratch;
        scratch.stats.total_list_elements = index.query_list_elements(query);
        if query.is_empty() {
            return;
        }

        let lists: Vec<&crate::index::PostingList> = query
            .tokens
            .iter()
            .map(|qt| index.query_list(qt.token))
            .collect();
        let n = lists.len();
        scratch.pos.resize(n, 0);
        scratch.frontier.resize(n, 0.0);

        loop {
            if budget.exceeded(&scratch.stats) {
                scratch.status = SearchStatus::BudgetExceeded;
                return;
            }
            scratch.stats.rounds += 1;
            let mut any_read = false;
            for i in 0..n {
                let postings = lists[i].postings();
                if scratch.pos[i] >= postings.len() {
                    continue;
                }
                let p = postings[scratch.pos[i]];
                scratch.pos[i] += 1;
                scratch.stats.elements_read += 1;
                any_read = true;
                scratch.frontier[i] = p.len;
                if !scratch.seen.insert(p.id.0) {
                    continue;
                }
                // Complete the score by probing every other list,
                // summing in query-token order (not first-seen-list
                // order) so the emitted bits are traversal-independent —
                // see `canonical_score` in the algorithms module.
                let mut dot = 0.0;
                for (j, l) in lists.iter().enumerate() {
                    if j == i || l.contains_id(p.id, &mut scratch.stats) {
                        dot += query.tokens[j].idf_sq;
                    }
                }
                let score = dot / (p.len * query.len);
                if crate::passes(score, tau) {
                    scratch.results.push(Match { id: p.id, score });
                }
            }
            if !any_read {
                break; // every list exhausted
            }
            // Best possible score of a yet unseen set.
            let f: f64 = (0..n)
                .map(|i| {
                    if scratch.pos[i] >= lists[i].len() {
                        0.0
                    } else {
                        query.tokens[i].idf_sq / (scratch.frontier[i] * query.len)
                    }
                })
                .sum();
            if safely_below(f, tau) {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::FullScan;
    use crate::{CollectionBuilder, IndexOptions, InvertedIndex};
    use setsim_tokenize::QGramTokenizer;

    fn setup(texts: &[&str]) -> crate::SetCollection {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        b.extend(texts.iter().copied());
        b.build()
    }

    #[test]
    fn agrees_with_scan() {
        let c = setup(&[
            "main street",
            "main st",
            "maine street",
            "park avenue",
            "main street east",
            "maine",
        ]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        for text in ["main street", "maine", "park avenue", "main"] {
            let q = idx.prepare_query_str(text);
            for tau in [0.2, 0.5, 0.8, 1.0] {
                let a = TaAlgorithm.search(&idx, &q, tau);
                let b = FullScan.search(&idx, &q, tau);
                assert_eq!(a.ids_sorted(), b.ids_sorted(), "q={text} tau={tau}");
            }
        }
    }

    #[test]
    fn issues_random_probes() {
        let c = setup(&["abcdef", "abcxyz", "qrstuv"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("abcdef");
        let out = TaAlgorithm.search(&idx, &q, 0.5);
        assert!(out.stats.random_probes > 0, "TA must probe");
    }

    #[test]
    fn early_stop_at_high_threshold() {
        // Every record contains the query's grams, but all except the
        // exact match are much longer: their postings sit deep in the
        // weight-sorted lists, so the frontier bound F collapses below a
        // high tau after a few accesses.
        let mut texts: Vec<String> = (0..200)
            .map(|i| format!("exactmatchword with plenty of extra junk {i:04}"))
            .collect();
        texts.push("exactmatchword".to_string());
        let refs: Vec<&str> = texts.iter().map(std::string::String::as_str).collect();
        let c = setup(&refs);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("exactmatchword");
        let out = TaAlgorithm.search(&idx, &q, 0.95);
        assert_eq!(out.results.len(), 1);
        assert!(
            out.stats.elements_read < out.stats.total_list_elements,
            "TA read everything"
        );
    }

    #[test]
    fn empty_query() {
        let c = setup(&["abcd"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("");
        assert!(TaAlgorithm.search(&idx, &q, 0.5).results.is_empty());
    }
}
