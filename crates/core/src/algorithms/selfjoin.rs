//! Set similarity **self-join** built on selection queries.
//!
//! The literature the paper positions itself against is mostly about
//! joins; the selection primitive composes into one directly: run one
//! selection per database set and keep each pair once. Length Boundedness
//! makes this far better than it sounds — each probe touches only the
//! `[τ·len(q), len(q)/τ]` window of its lists — and probes are
//! embarrassingly parallel.

use crate::algorithms::SelectionAlgorithm;
use crate::engine::{ArmedBudget, Scratch, SearchCtx};
use crate::{validate_tau, InvertedIndex, SearchStats, SetId};

/// One joined pair: `a < b` and `I(a, b) ≥ τ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinPair {
    /// Smaller set id.
    pub a: SetId,
    /// Larger set id.
    pub b: SetId,
    /// Their exact similarity.
    pub score: f64,
}

/// Result of a self-join.
#[derive(Debug, Clone, Default)]
pub struct JoinOutcome {
    /// All qualifying pairs, `a < b`, in ascending `(a, b)` order.
    pub pairs: Vec<JoinPair>,
    /// Merged access statistics over all probes.
    pub stats: SearchStats,
}

/// Self-join `index`'s collection at threshold `tau` using `algo` for the
/// per-set probes. Pairs are deduplicated (`a < b`); self-pairs excluded.
pub fn self_join<A: SelectionAlgorithm>(
    index: &InvertedIndex<'_>,
    algo: &A,
    tau: f64,
) -> JoinOutcome {
    validate_tau(tau);
    let mut out = JoinOutcome::default();
    let collection = index.collection();
    // One warm scratch for the whole join: every probe reuses the same
    // candidate structures instead of reallocating per set.
    let mut scratch = Scratch::default();
    for (id, set) in collection.iter_sets() {
        let query = index.prepare_query(set, 0);
        let mut ctx = SearchCtx::new(index, &query, tau, ArmedBudget::unlimited(), &mut scratch);
        algo.search_with(&mut ctx);
        out.stats.merge(scratch.stats());
        for m in scratch.results() {
            // Keep each unordered pair once, from its smaller endpoint.
            if m.id > id {
                out.pairs.push(JoinPair {
                    a: id,
                    b: m.id,
                    score: m.score,
                });
            }
        }
    }
    out.pairs.sort_by_key(|p| (p.a, p.b));
    out
}

/// Parallel self-join: probes split across `num_threads` workers.
pub fn par_self_join<A: SelectionAlgorithm + Sync>(
    index: &InvertedIndex<'_>,
    algo: &A,
    tau: f64,
    num_threads: usize,
) -> JoinOutcome {
    validate_tau(tau);
    let n = index.collection().len();
    if num_threads <= 1 || n <= 1 {
        return self_join(index, algo, tau);
    }
    let workers = num_threads.min(n);
    let chunk = n.div_ceil(workers);
    let ids: Vec<u32> = (0..n as u32).collect();
    let mut partials: Vec<JoinOutcome> = (0..workers).map(|_| JoinOutcome::default()).collect();

    // std::thread::scope joins all workers before returning and re-raises
    // any worker panic, so every chunk's pairs are complete here.
    std::thread::scope(|scope| {
        for (ids_chunk, slot) in ids.chunks(chunk).zip(partials.iter_mut()) {
            scope.spawn(move || {
                // One warm scratch per worker (never shared, never locked).
                let mut scratch = Scratch::default();
                for &raw in ids_chunk {
                    let id = SetId(raw);
                    let query = index.prepare_query(index.collection().set(id), 0);
                    let mut ctx =
                        SearchCtx::new(index, &query, tau, ArmedBudget::unlimited(), &mut scratch);
                    algo.search_with(&mut ctx);
                    slot.stats.merge(scratch.stats());
                    for m in scratch.results() {
                        if m.id > id {
                            slot.pairs.push(JoinPair {
                                a: id,
                                b: m.id,
                                score: m.score,
                            });
                        }
                    }
                }
            });
        }
    });

    let mut out = JoinOutcome::default();
    for p in partials {
        out.stats.merge(&p.stats);
        out.pairs.extend(p.pairs);
    }
    out.pairs.sort_by_key(|p| (p.a, p.b));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::scan::exact_score;
    use crate::{CollectionBuilder, IndexOptions, SfAlgorithm};
    use setsim_tokenize::QGramTokenizer;

    fn setup(texts: &[&str]) -> crate::SetCollection {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        b.extend(texts.iter().copied());
        b.build()
    }

    /// O(n²) oracle.
    fn join_oracle(index: &InvertedIndex<'_>, tau: f64) -> Vec<(u32, u32)> {
        let n = index.collection().len();
        let mut out = Vec::new();
        for i in 0..n {
            let q = index.prepare_query(index.collection().set(SetId(i as u32)), 0);
            for j in (i + 1)..n {
                let s = exact_score(index, &q, SetId(j as u32));
                if s >= tau - 1e-9 * tau {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out
    }

    #[test]
    fn matches_nested_loop_oracle() {
        let c = setup(&[
            "main street",
            "main st",
            "maine street",
            "main street",
            "park avenue",
            "park avenu",
            "completely different",
        ]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        for tau in [0.4, 0.6, 0.9] {
            let got: Vec<(u32, u32)> = self_join(&idx, &SfAlgorithm::default(), tau)
                .pairs
                .iter()
                .map(|p| (p.a.0, p.b.0))
                .collect();
            let want = join_oracle(&idx, tau);
            assert_eq!(got, want, "tau={tau}");
        }
    }

    #[test]
    fn duplicate_records_always_join() {
        let c = setup(&["same string", "same string", "other thing"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let out = self_join(&idx, &SfAlgorithm::default(), 1.0);
        assert_eq!(out.pairs.len(), 1);
        assert_eq!((out.pairs[0].a.0, out.pairs[0].b.0), (0, 1));
        assert!((out.pairs[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pairs_are_deduplicated_and_ordered() {
        let c = setup(&["abcdef", "abcdeg", "abcdfg", "abcefg"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let out = self_join(&idx, &SfAlgorithm::default(), 0.3);
        for p in &out.pairs {
            assert!(p.a < p.b);
        }
        for w in out.pairs.windows(2) {
            assert!((w[0].a, w[0].b) < (w[1].a, w[1].b));
        }
        let mut seen = std::collections::HashSet::new();
        for p in &out.pairs {
            assert!(seen.insert((p.a, p.b)), "duplicate pair {p:?}");
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let texts: Vec<String> = (0..120)
            .map(|i| format!("record {} {}", i % 30, i))
            .collect();
        let refs: Vec<&str> = texts.iter().map(std::string::String::as_str).collect();
        let c = setup(&refs);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let serial = self_join(&idx, &SfAlgorithm::default(), 0.7);
        let parallel = par_self_join(&idx, &SfAlgorithm::default(), 0.7, 4);
        let a: Vec<_> = serial.pairs.iter().map(|p| (p.a, p.b)).collect();
        let b: Vec<_> = parallel.pairs.iter().map(|p| (p.a, p.b)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_collection_joins_empty() {
        let c = setup(&[]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        assert!(self_join(&idx, &SfAlgorithm::default(), 0.5)
            .pairs
            .is_empty());
    }
}
