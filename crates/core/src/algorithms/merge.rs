use crate::algorithms::SelectionAlgorithm;
use crate::engine::SearchCtx;
use crate::{IdPostings, Match, SearchStatus};
use setsim_collections::SetBits;
use std::cmp::Reverse;

/// Multiway merge over **id-sorted** inverted lists (Section III-B's
/// "sort-by-id" baseline).
///
/// A heap holds the head of every list; the smallest id's score is always
/// complete when it surfaces, so it can be emitted or discarded
/// immediately. Bookkeeping is trivial but every element of every query
/// list is read — no pruning whatsoever, which is why its cost is constant
/// across thresholds in Figure 6(a).
///
/// Lists supply ascending ids through whichever representation they hold:
/// the id-sorted posting copy (inline and run lists) or set-bit
/// enumeration of the dense bitmap, whose postings' lengths are recovered
/// from the index's length table — the same table every stored posting's
/// `len` was computed from, so scores are bit-identical across
/// representations.
#[derive(Debug, Clone, Copy, Default)]
pub struct SortByIdMerge;

/// Ascending-id cursor over one query list.
enum IdCursor<'a> {
    Slice {
        postings: &'a [crate::Posting],
        pos: usize,
    },
    Bits(SetBits<'a>),
}

impl IdCursor<'_> {
    /// Next `(id, len)` pair in ascending id order, or `None` when the
    /// list is exhausted.
    fn next(&mut self, index: &crate::InvertedIndex<'_>) -> Option<(u32, f64)> {
        match self {
            IdCursor::Slice { postings, pos } => {
                let p = postings.get(*pos)?;
                *pos += 1;
                Some((p.id.0, p.len))
            }
            IdCursor::Bits(bits) => {
                let id = bits.next()?;
                Some((id, index.set_len(crate::SetId(id))))
            }
        }
    }
}

impl SelectionAlgorithm for SortByIdMerge {
    fn name(&self) -> &'static str {
        "sort-by-id"
    }

    /// # Panics
    ///
    /// Panics if a non-empty query list supports no ascending-id access
    /// at all — a run-represented list built with
    /// `build_id_sorted_lists` disabled. Misconfiguration, not data: the
    /// engine builds indexes with the id order this baseline requires.
    fn search_with(&self, ctx: &mut SearchCtx<'_, '_>) {
        let index = ctx.index;
        let query = ctx.query;
        let tau = ctx.tau;
        let budget = ctx.budget;
        let scratch = &mut *ctx.scratch;
        scratch.stats.total_list_elements = index.query_list_elements(query);
        if query.is_empty() {
            return;
        }

        let mut cursors: Vec<IdCursor<'_>> = query
            .tokens
            .iter()
            .map(|qt| {
                let l = index.query_list(qt.token);
                match l.id_postings() {
                    Some(IdPostings::Slice(postings)) => IdCursor::Slice { postings, pos: 0 },
                    Some(IdPostings::Bitmap(bm)) => IdCursor::Bits(bm.iter()),
                    None => panic!("sort-by-id requires build_id_sorted_lists"),
                }
            })
            .collect();

        // Heap of (Reverse(id), list index); `heads` holds the length of
        // each list's current head so a popped entry scores without
        // re-touching its source. Elements are counted when consumed
        // (popped), exactly as the slice-only implementation did.
        let heap = &mut scratch.heap;
        scratch.frontier.resize(cursors.len(), 0.0);
        let heads = &mut scratch.frontier;
        for (i, cur) in cursors.iter_mut().enumerate() {
            if let Some((id, len)) = cur.next(index) {
                heads[i] = len;
                heap.push((Reverse(id), i));
            }
        }

        while let Some(&(Reverse(id), _)) = heap.peek() {
            if budget.exceeded(&scratch.stats) {
                scratch.status = SearchStatus::BudgetExceeded;
                return;
            }
            // Drain every list whose head is `id`, accumulating its score.
            let mut dot = 0.0;
            let mut len_s = 0.0;
            while let Some(&(Reverse(head), i)) = heap.peek() {
                if head != id {
                    break;
                }
                heap.pop();
                scratch.stats.elements_read += 1;
                dot += query.tokens[i].idf_sq;
                len_s = heads[i];
                if let Some((next_id, next_len)) = cursors[i].next(index) {
                    heads[i] = next_len;
                    heap.push((Reverse(next_id), i));
                }
            }
            let score = dot / (len_s * query.len);
            if crate::passes(score, tau) {
                scratch.results.push(Match {
                    id: crate::SetId(id),
                    score,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::FullScan;
    use crate::{CollectionBuilder, IndexOptions, InvertedIndex};
    use setsim_tokenize::QGramTokenizer;

    fn setup(texts: &[&str]) -> crate::SetCollection {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        b.extend(texts.iter().copied());
        b.build()
    }

    #[test]
    fn agrees_with_scan() {
        let c = setup(&[
            "main street",
            "main st",
            "maine street",
            "park avenue",
            "main street east",
        ]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        for text in ["main street", "maine", "park"] {
            let q = idx.prepare_query_str(text);
            for tau in [0.2, 0.5, 0.8, 1.0] {
                let a = SortByIdMerge.search(&idx, &q, tau);
                let b = FullScan.search(&idx, &q, tau);
                assert_eq!(a.ids_sorted(), b.ids_sorted(), "q={text} tau={tau}");
            }
        }
    }

    #[test]
    fn reads_every_list_element() {
        let c = setup(&["abcd", "bcde", "abcf"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("abcd");
        let out = SortByIdMerge.search(&idx, &q, 0.9);
        assert_eq!(out.stats.elements_read, out.stats.total_list_elements);
        assert_eq!(out.stats.pruning_pct(), 0.0);
    }

    #[test]
    fn empty_query() {
        let c = setup(&["abcd"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("");
        let out = SortByIdMerge.search(&idx, &q, 0.5);
        assert!(out.results.is_empty());
    }

    #[test]
    fn bitmap_lists_keep_exact_element_counters() {
        // The bitmap cursor enumerates set bits rather than stored
        // postings; each enumerated id must still count as exactly one
        // sorted read, so the no-pruning contract of this baseline — and
        // the `read ≤ total` invariant behind pruning_pct — survive the
        // representation change.
        let c = setup(&["abcd", "bcde", "abcf", "abcde"]);
        let opts = IndexOptions::default()
            .with_repr_policy(crate::ReprPolicy::Force(crate::ReprKind::Bitmap));
        let idx = InvertedIndex::build(&c, opts);
        let q = idx.prepare_query_str("abcd");
        let out = SortByIdMerge.search(&idx, &q, 0.5);
        assert_eq!(out.stats.elements_read, out.stats.total_list_elements);
        assert_eq!(out.stats.pruning_pct(), 0.0);
        let oracle = FullScan.search(&idx, &q, 0.5);
        assert_eq!(out.ids_sorted(), oracle.ids_sorted());
        for m in &out.results {
            let expect = super::super::scan::exact_score(&idx, &q, m.id);
            assert!((m.score - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn scores_are_exact() {
        let c = setup(&["abcdef", "abcxyz"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("abcdef");
        let out = SortByIdMerge.search(&idx, &q, 0.1);
        for m in &out.results {
            let expect = super::super::scan::exact_score(&idx, &q, m.id);
            assert!((m.score - expect).abs() < 1e-12);
        }
    }
}
