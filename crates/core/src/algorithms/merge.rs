use crate::algorithms::SelectionAlgorithm;
use crate::engine::SearchCtx;
use crate::{Match, SearchStatus};
use std::cmp::Reverse;

/// Multiway merge over **id-sorted** inverted lists (Section III-B's
/// "sort-by-id" baseline).
///
/// A heap holds the head of every list; the smallest id's score is always
/// complete when it surfaces, so it can be emitted or discarded
/// immediately. Bookkeeping is trivial but every element of every query
/// list is read — no pruning whatsoever, which is why its cost is constant
/// across thresholds in Figure 6(a).
#[derive(Debug, Clone, Copy, Default)]
pub struct SortByIdMerge;

impl SelectionAlgorithm for SortByIdMerge {
    fn name(&self) -> &'static str {
        "sort-by-id"
    }

    fn search_with(&self, ctx: &mut SearchCtx<'_, '_>) {
        let index = ctx.index;
        let query = ctx.query;
        let tau = ctx.tau;
        let budget = ctx.budget;
        let scratch = &mut *ctx.scratch;
        scratch.stats.total_list_elements = index.query_list_elements(query);
        if query.is_empty() {
            return;
        }

        let lists: Vec<&[crate::Posting]> = query
            .tokens
            .iter()
            .map(|qt| {
                let l = index.query_list(qt.token);
                assert!(
                    !l.postings_by_id().is_empty() || l.is_empty(),
                    "sort-by-id requires build_id_sorted_lists"
                );
                l.postings_by_id()
            })
            .collect();

        // Heap of (Reverse(id), list index); positions track each cursor.
        let heap = &mut scratch.heap;
        scratch.pos.resize(lists.len(), 0);
        let pos = &mut scratch.pos;
        for (i, l) in lists.iter().enumerate() {
            if !l.is_empty() {
                heap.push((Reverse(l[0].id.0), i));
            }
        }

        while let Some(&(Reverse(id), _)) = heap.peek() {
            if budget.exceeded(&scratch.stats) {
                scratch.status = SearchStatus::BudgetExceeded;
                return;
            }
            // Drain every list whose head is `id`, accumulating its score.
            let mut dot = 0.0;
            let mut len_s = 0.0;
            while let Some(&(Reverse(head), i)) = heap.peek() {
                if head != id {
                    break;
                }
                heap.pop();
                let p = lists[i][pos[i]];
                scratch.stats.elements_read += 1;
                dot += query.tokens[i].idf_sq;
                len_s = p.len;
                pos[i] += 1;
                if pos[i] < lists[i].len() {
                    heap.push((Reverse(lists[i][pos[i]].id.0), i));
                }
            }
            let score = dot / (len_s * query.len);
            if crate::passes(score, tau) {
                scratch.results.push(Match {
                    id: crate::SetId(id),
                    score,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::FullScan;
    use crate::{CollectionBuilder, IndexOptions, InvertedIndex};
    use setsim_tokenize::QGramTokenizer;

    fn setup(texts: &[&str]) -> crate::SetCollection {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        b.extend(texts.iter().copied());
        b.build()
    }

    #[test]
    fn agrees_with_scan() {
        let c = setup(&[
            "main street",
            "main st",
            "maine street",
            "park avenue",
            "main street east",
        ]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        for text in ["main street", "maine", "park"] {
            let q = idx.prepare_query_str(text);
            for tau in [0.2, 0.5, 0.8, 1.0] {
                let a = SortByIdMerge.search(&idx, &q, tau);
                let b = FullScan.search(&idx, &q, tau);
                assert_eq!(a.ids_sorted(), b.ids_sorted(), "q={text} tau={tau}");
            }
        }
    }

    #[test]
    fn reads_every_list_element() {
        let c = setup(&["abcd", "bcde", "abcf"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("abcd");
        let out = SortByIdMerge.search(&idx, &q, 0.9);
        assert_eq!(out.stats.elements_read, out.stats.total_list_elements);
        assert_eq!(out.stats.pruning_pct(), 0.0);
    }

    #[test]
    fn empty_query() {
        let c = setup(&["abcd"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("");
        let out = SortByIdMerge.search(&idx, &q, 0.5);
        assert!(out.results.is_empty());
    }

    #[test]
    fn scores_are_exact() {
        let c = setup(&["abcdef", "abcxyz"]);
        let idx = InvertedIndex::build(&c, IndexOptions::default());
        let q = idx.prepare_query_str("abcdef");
        let out = SortByIdMerge.search(&idx, &q, 0.1);
        for m in &out.results {
            let expect = super::super::scan::exact_score(&idx, &q, m.id);
            assert!((m.score - expect).abs() < 1e-12);
        }
    }
}
