use crate::SetCollection;
use setsim_tokenize::{Token, TokenSet};

/// Exact conversion of a corpus-scale count to `f64`.
///
/// Set counts are bounded by the `u32` id space and posting totals by
/// addressable memory, both far below 2⁵³ — the range in which every
/// integer has an exact `f64` representation — so the cast cannot round.
#[inline]
pub(crate) fn count_to_f64(n: usize) -> f64 {
    debug_assert!(
        n < (1usize << 53),
        "count exceeds the f64 exact-integer range"
    );
    n as f64 // lint: allow — exact below 2^53, guarded by the debug_assert above
}

/// Per-token idf weights and document statistics for a collection.
///
/// `idf(t) = log2(1 + N / N(t))` where `N` is the number of sets in the
/// database and `N(t)` the number of sets containing `t` (set semantics:
/// a token counted once per set, matching the IDF measure's reduction of
/// multisets to sets).
#[derive(Debug, Clone)]
pub struct TokenWeights {
    idf: Vec<f64>,
    df: Vec<u32>,
    n_sets: usize,
    avg_set_size: f64,
}

impl TokenWeights {
    /// Compute weights for every token of `collection`.
    pub fn compute(collection: &SetCollection) -> Self {
        let n_tokens = collection.dict().len();
        let mut df = vec![0u32; n_tokens];
        let mut total_size = 0usize;
        for (_, set) in collection.iter_sets() {
            total_size += set.len();
            for t in set.iter() {
                df[t.index()] += 1;
            }
        }
        let n_sets = collection.len();
        let idf = df.iter().map(|&d| Self::idf_formula(n_sets, d)).collect();
        Self {
            idf,
            df,
            n_sets,
            avg_set_size: if n_sets == 0 {
                0.0
            } else {
                count_to_f64(total_size) / count_to_f64(n_sets)
            },
        }
    }

    /// Reconstruct weights from a document-frequency table computed over
    /// a corpus of `n_sets` sets (the shard path: every shard scores with
    /// the *global* df table, not its own sub-collection's, so scores are
    /// bit-identical to the unsharded index). `df[t]` counts each token
    /// once per set, exactly as [`compute`](Self::compute) does, so the
    /// average distinct-token set size is `Σ df / N`.
    pub fn from_doc_freqs(n_sets: usize, df: Vec<u32>) -> Self {
        let idf = df.iter().map(|&d| Self::idf_formula(n_sets, d)).collect();
        // Summing exact u32 integers in f64 stays exact below 2^53, so
        // this equals `count_to_f64` of the integer total bit-for-bit
        // (pinned by `from_doc_freqs_matches_compute`).
        let total_size: f64 = df.iter().map(|&d| f64::from(d)).sum();
        let avg_set_size = if n_sets == 0 {
            0.0
        } else {
            total_size / count_to_f64(n_sets)
        };
        Self {
            idf,
            df,
            n_sets,
            avg_set_size,
        }
    }

    /// The document-frequency table, one entry per dictionary token.
    pub(crate) fn doc_freqs(&self) -> &[u32] {
        &self.df
    }

    /// `log2(1 + N / max(1, N(t)))`. Document frequency is clamped to 1 so
    /// that query tokens absent from the database (which can arise from
    /// query modifications) still get a finite weight: they behave as if
    /// the query itself were the one document containing them. Such tokens
    /// inflate `len(q)` — an exact-looking match against a query with junk
    /// grams scores below 1, which is the desired semantics.
    #[inline]
    pub fn idf_formula(n_sets: usize, df: u32) -> f64 {
        (1.0 + count_to_f64(n_sets) / f64::from(df.max(1))).log2()
    }

    /// idf of token `t` (`t` must belong to the collection's dictionary).
    #[inline]
    pub fn idf(&self, t: Token) -> f64 {
        self.idf[t.index()]
    }

    /// The idf a token unseen in the database receives.
    #[inline]
    pub fn unseen_idf(&self) -> f64 {
        Self::idf_formula(self.n_sets, 0)
    }

    /// Document frequency of token `t`.
    #[inline]
    pub fn df(&self, t: Token) -> u32 {
        self.df[t.index()]
    }

    /// Number of sets in the collection.
    pub fn n_sets(&self) -> usize {
        self.n_sets
    }

    /// Average distinct-token set size (BM25's `avgdl`).
    pub fn avg_set_size(&self) -> f64 {
        self.avg_set_size
    }

    /// Number of tokens the idf table covers.
    pub(crate) fn idf_len(&self) -> usize {
        self.idf.len()
    }

    /// Append one unseen-token entry (df 0, the given idf).
    pub(crate) fn push_unseen(&mut self, idf: f64) {
        self.idf.push(idf);
        self.df.push(0);
    }

    /// Normalized length of a set: `sqrt(Σ idf(t)²)`.
    pub fn set_length(&self, set: &TokenSet) -> f64 {
        set.iter()
            .map(|t| {
                let w = self.idf(t);
                w * w
            })
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CollectionBuilder;
    use setsim_tokenize::WordTokenizer;

    fn collection(texts: &[&str]) -> SetCollection {
        let mut b = CollectionBuilder::new(WordTokenizer::new().with_lowercase());
        b.extend(texts.iter().copied());
        b.build()
    }

    #[test]
    fn rare_tokens_weigh_more() {
        // 'main' appears in 3 sets, 'maine' in 1.
        let c = collection(&["main st", "main rd", "main maine", "park"]);
        let w = TokenWeights::compute(&c);
        let main = c.dict().get("main").unwrap();
        let maine = c.dict().get("maine").unwrap();
        assert!(w.idf(maine) > w.idf(main));
        assert_eq!(w.df(main), 3);
        assert_eq!(w.df(maine), 1);
    }

    #[test]
    fn idf_formula_values() {
        // N = 4, df = 1 -> log2(5); df = 4 -> log2(2) = 1.
        assert!((TokenWeights::idf_formula(4, 1) - 5f64.log2()).abs() < 1e-12);
        assert!((TokenWeights::idf_formula(4, 4) - 1.0).abs() < 1e-12);
        // df = 0 clamps to 1.
        assert_eq!(
            TokenWeights::idf_formula(4, 0),
            TokenWeights::idf_formula(4, 1)
        );
    }

    #[test]
    fn multiset_duplicates_count_once_for_df() {
        let c = collection(&["main main main", "other"]);
        let w = TokenWeights::compute(&c);
        let main = c.dict().get("main").unwrap();
        assert_eq!(w.df(main), 1);
    }

    #[test]
    fn set_length_is_l2_norm() {
        let c = collection(&["alpha beta", "alpha"]);
        let w = TokenWeights::compute(&c);
        let alpha = c.dict().get("alpha").unwrap();
        let beta = c.dict().get("beta").unwrap();
        let s = c.set(crate::SetId(0));
        let expect = (w.idf(alpha).powi(2) + w.idf(beta).powi(2)).sqrt();
        assert!((w.set_length(s) - expect).abs() < 1e-12);
    }

    #[test]
    fn empty_collection_weights() {
        let c = collection(&[]);
        let w = TokenWeights::compute(&c);
        assert_eq!(w.n_sets(), 0);
        assert_eq!(w.avg_set_size(), 0.0);
    }

    #[test]
    fn avg_set_size() {
        let c = collection(&["a b c", "d"]);
        let w = TokenWeights::compute(&c);
        assert!((w.avg_set_size() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn from_doc_freqs_matches_compute() {
        let c = collection(&["main st", "main rd", "main maine", "park"]);
        let w = TokenWeights::compute(&c);
        let rebuilt = TokenWeights::from_doc_freqs(w.n_sets(), w.doc_freqs().to_vec());
        assert_eq!(rebuilt.n_sets(), w.n_sets());
        assert_eq!(rebuilt.avg_set_size().to_bits(), w.avg_set_size().to_bits());
        for i in 0..c.dict().len() {
            let t = Token(u32::try_from(i).unwrap());
            assert_eq!(rebuilt.idf(t).to_bits(), w.idf(t).to_bits());
            assert_eq!(rebuilt.df(t), w.df(t));
        }
    }
}
