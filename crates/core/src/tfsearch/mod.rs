//! Selection queries under the **tf-aware** TF/IDF cosine measure.
//!
//! Section IV of the paper closes with: *"TF/IDF and BM25 follow looser
//! versions of the aforementioned properties (by associating with every
//! token a maximum tf component and boosting all bounds accordingly).
//! Existing and novel algorithms for these metrics can also be optimized
//! accordingly."* This module carries that remark out for normalized
//! TF/IDF cosine:
//!
//! ```text
//! T(q, s) = Σ_{t ∈ q∩s} tf_q(t)·tf_s(t)·idf(t)² / (‖q‖·‖s‖)
//! ‖s‖     = sqrt( Σ_{t ∈ s} (tf_s(t)·idf(t))² )
//! ```
//!
//! The boosted properties (proofs in the item docs; both use `idf ≥ 1`,
//! which `idf = log2(1 + N/N(t)) ≥ 1` guarantees):
//!
//! * **Boosted Length Boundedness.** With `M_t` the maximum tf of token
//!   `t` in any database set and `m_q = max_t tf_q(t)`:
//!   `T(q,s) ≥ τ  ⟹  τ·‖q‖/m_q ≤ ‖s‖ ≤ B_q/(τ·‖q‖)` where
//!   `B_q = Σ_{t∈q} tf_q(t)·M_t·idf(t)²`.
//! * **Boosted Magnitude Boundedness.** After one sighting of `s`, its
//!   best case is `B_q/(‖s‖·‖q‖)` — exact in `‖s‖`, loose only in the
//!   `M_t` factors.
//! * **Order Preservation** survives untouched: lists sort by the global
//!   `‖s‖`, so relative order is identical in every list.
//!
//! [`TfIndex`] stores `(id, ‖s‖, tf)` postings sorted by `(‖s‖, id)` plus
//! each list's max tf; [`TfSfAlgorithm`] is the Shortest-First algorithm
//! with all bounds boosted. [`tf_scan`] is the exhaustive oracle.

mod index;
mod select;

pub use index::{TfIndex, TfPosting, TfQuery, TfQueryToken};
pub use select::{tf_scan, TfSfAlgorithm};
