use crate::{SetCollection, SetId, TokenWeights};
use setsim_tokenize::{Token, TokenMultiSet};
use std::collections::HashMap;

/// One tf-aware posting: the set, its tf-weighted norm, and the token's
/// frequency in the set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TfPosting {
    /// The set containing this list's token.
    pub id: SetId,
    /// `‖s‖ = sqrt(Σ (tf·idf)²)`, constant across lists (the global sort
    /// key that keeps Order Preservation intact).
    pub norm: f64,
    /// `tf_s(token)` — needed for the exact contribution.
    pub tf: u32,
}

/// A tf-aware inverted list: postings sorted by `(norm, id)` plus the
/// list's maximum term frequency (the boosting constant `M_t`).
pub struct TfList {
    postings: Vec<TfPosting>,
    max_tf: u32,
}

impl TfList {
    /// Postings in ascending `(norm, id)` order.
    pub fn postings(&self) -> &[TfPosting] {
        &self.postings
    }

    /// The maximum tf of this token in any database set (`M_t`).
    pub fn max_tf(&self) -> u32 {
        self.max_tf
    }

    /// Offset of the first posting with `norm ≥ min_norm` (binary search —
    /// this extension module is in-memory and needs no skip-list model).
    pub fn seek_norm(&self, min_norm: f64) -> usize {
        self.postings.partition_point(|p| p.norm < min_norm)
    }
}

/// One query token with its weight and query-side frequency.
#[derive(Debug, Clone, Copy)]
pub struct TfQueryToken {
    /// The token.
    pub token: Token,
    /// `idf(token)²`.
    pub idf_sq: f64,
    /// `tf_q(token)`.
    pub tf_q: u32,
    /// The boosting mass `tf_q · M_t · idf²` this token can contribute in
    /// the best case.
    pub boost: f64,
}

/// A prepared tf-aware query: tokens in descending boost order, plus the
/// tf-weighted query norm.
#[derive(Debug, Clone)]
pub struct TfQuery {
    /// Known tokens, sorted by descending `boost`.
    pub tokens: Vec<TfQueryToken>,
    /// `‖q‖` (includes unknown-token mass).
    pub norm: f64,
    /// `max_t tf_q(t)` over known tokens (≥ 1 unless empty) — the lower
    /// length bound's boost divisor.
    pub max_tf_q: u32,
    /// `B_q = Σ boost` — the upper length bound's numerator.
    pub boost_total: f64,
}

impl TfQuery {
    /// Number of inverted lists the query touches.
    pub fn num_lists(&self) -> usize {
        self.tokens.len()
    }

    /// True if no known token remains.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Boosted Theorem 1: the inclusive `‖s‖` window
    /// `[τ·‖q‖/m_q, B_q/(τ·‖q‖)]` any qualifying set must fall in.
    ///
    /// Upper: `τ·‖q‖·‖s‖ ≤ dot ≤ Σ tf_q·M_t·idf² = B_q`.
    /// Lower: on common tokens `tf_s·idf ≥ idf ≥ 1`, so
    /// `dot ≤ m_q·Σ tf_s·idf² ≤ m_q·Σ (tf_s·idf)² ≤ m_q·‖s‖²`, hence
    /// `τ·‖q‖·‖s‖ ≤ m_q·‖s‖²`.
    pub fn norm_bounds(&self, tau: f64) -> (f64, f64) {
        let m_q = f64::from(self.max_tf_q.max(1));
        (tau * self.norm / m_q, self.boost_total / (tau * self.norm))
    }

    /// Suffix sums of `boost` in token order: `suffix(i) = Σ_{j≥i} boost`.
    pub fn boost_suffix_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.tokens.len() + 1];
        for i in (0..self.tokens.len()).rev() {
            out[i] = out[i + 1] + self.tokens[i].boost;
        }
        out
    }
}

/// The tf-aware inverted index.
pub struct TfIndex<'c> {
    collection: &'c SetCollection,
    weights: TokenWeights,
    norms: Vec<f64>,
    lists: HashMap<Token, TfList>,
    total_postings: u64,
}

fn multiset_norm(m: &TokenMultiSet, weights: &TokenWeights) -> f64 {
    m.iter()
        .map(|(t, tf)| {
            let w = f64::from(tf) * weights.idf(t);
            w * w
        })
        .sum::<f64>()
        .sqrt()
}

impl<'c> TfIndex<'c> {
    /// Build the tf-aware index over `collection`'s multisets.
    pub fn build(collection: &'c SetCollection) -> Self {
        let weights = TokenWeights::compute(collection);
        let mut norms = Vec::with_capacity(collection.len());
        let mut raw: HashMap<Token, Vec<TfPosting>> = HashMap::new();
        for i in 0..collection.len() {
            let id = SetId(i as u32);
            let m = collection.multiset(id);
            let norm = multiset_norm(m, &weights);
            norms.push(norm);
            for (t, tf) in m.iter() {
                raw.entry(t).or_default().push(TfPosting { id, norm, tf });
            }
        }
        let mut total_postings = 0u64;
        let lists = raw
            .into_iter()
            .map(|(t, mut postings)| {
                total_postings += postings.len() as u64;
                postings.sort_by(|a, b| a.norm.total_cmp(&b.norm).then(a.id.cmp(&b.id)));
                let max_tf = postings.iter().map(|p| p.tf).max().unwrap_or(1);
                (t, TfList { postings, max_tf })
            })
            .collect();
        Self {
            collection,
            weights,
            norms,
            lists,
            total_postings,
        }
    }

    /// The indexed collection.
    pub fn collection(&self) -> &'c SetCollection {
        self.collection
    }

    /// Token weights.
    pub fn weights(&self) -> &TokenWeights {
        &self.weights
    }

    /// `‖s‖` for set `id`.
    #[inline]
    pub fn norm(&self, id: SetId) -> f64 {
        self.norms[id.index()]
    }

    /// The tf list of `token`, if indexed.
    pub fn list(&self, token: Token) -> Option<&TfList> {
        self.lists.get(&token)
    }

    /// Total postings across all lists.
    pub fn total_postings(&self) -> u64 {
        self.total_postings
    }

    /// Prepare a query multiset (duplicates carry tf weight).
    pub fn prepare_query(&self, query: &TokenMultiSet, unknown_tokens: u32) -> TfQuery {
        let mut tokens: Vec<TfQueryToken> = query
            .iter()
            .filter(|(t, _)| self.lists.contains_key(t))
            .map(|(t, tf_q)| {
                let idf = self.weights.idf(t);
                let idf_sq = idf * idf;
                let max_tf = self.lists[&t].max_tf;
                TfQueryToken {
                    token: t,
                    idf_sq,
                    tf_q,
                    boost: f64::from(tf_q) * f64::from(max_tf) * idf_sq,
                }
            })
            .collect();
        tokens.sort_by(|a, b| b.boost.total_cmp(&a.boost).then(a.token.cmp(&b.token)));
        let known_sq: f64 = tokens
            .iter()
            .map(|t| {
                let w = f64::from(t.tf_q) * t.idf_sq.sqrt();
                w * w
            })
            .sum();
        let unseen = self.weights.unseen_idf();
        let norm = (known_sq + f64::from(unknown_tokens) * unseen * unseen).sqrt();
        let max_tf_q = tokens.iter().map(|t| t.tf_q).max().unwrap_or(0);
        let boost_total = tokens.iter().map(|t| t.boost).sum();
        TfQuery {
            tokens,
            norm,
            max_tf_q,
            boost_total,
        }
    }

    /// Tokenize `text` with the collection's tokenizer (multiset
    /// semantics) and prepare it.
    pub fn prepare_query_str(&self, text: &str) -> TfQuery {
        let mut buf = Vec::new();
        self.collection.tokenizer().tokenize_into(text, &mut buf);
        let mut known = Vec::new();
        let mut unknown = 0u32;
        for s in &buf {
            match self.collection.dict().get(s) {
                Some(t) => known.push(t),
                None => unknown += 1,
            }
        }
        self.prepare_query(&TokenMultiSet::from_tokens(known), unknown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CollectionBuilder;
    use setsim_tokenize::WordTokenizer;

    fn setup(texts: &[&str]) -> SetCollection {
        let mut b = CollectionBuilder::new(WordTokenizer::new().with_lowercase());
        b.extend(texts.iter().copied());
        b.build()
    }

    #[test]
    fn postings_sorted_and_norms_global() {
        let c = setup(&["main main st", "main st", "st st st", "park"]);
        let idx = TfIndex::build(&c);
        for list in idx.lists.values() {
            for w in list.postings().windows(2) {
                assert!((w[0].norm, w[0].id) < (w[1].norm, w[1].id));
            }
            for p in list.postings() {
                assert_eq!(p.norm, idx.norm(p.id));
            }
        }
    }

    #[test]
    fn max_tf_is_correct() {
        let c = setup(&["main main main st", "main st"]);
        let idx = TfIndex::build(&c);
        let main = c.dict().get("main").unwrap();
        let st = c.dict().get("st").unwrap();
        assert_eq!(idx.list(main).unwrap().max_tf(), 3);
        assert_eq!(idx.list(st).unwrap().max_tf(), 1);
    }

    #[test]
    fn tf_weighs_norms() {
        let c = setup(&["word word", "word"]);
        let idx = TfIndex::build(&c);
        assert!(idx.norm(SetId(0)) > idx.norm(SetId(1)));
        // tf = 2 doubles the component: exactly 2x here (single token).
        assert!((idx.norm(SetId(0)) - 2.0 * idx.norm(SetId(1))).abs() < 1e-12);
    }

    #[test]
    fn query_prep_counts_duplicates() {
        let c = setup(&["main st", "main rd"]);
        let idx = TfIndex::build(&c);
        let q = idx.prepare_query_str("main main st");
        let main_tok = q
            .tokens
            .iter()
            .find(|t| c.dict().resolve(t.token) == Some("main"))
            .unwrap();
        assert_eq!(main_tok.tf_q, 2);
        assert_eq!(q.max_tf_q, 2);
    }

    #[test]
    fn norm_bounds_bracket_query_norm() {
        let c = setup(&["alpha beta", "beta gamma", "gamma alpha"]);
        let idx = TfIndex::build(&c);
        let q = idx.prepare_query_str("alpha beta");
        for tau in [0.3, 0.7, 1.0] {
            let (lo, hi) = q.norm_bounds(tau);
            assert!(lo <= q.norm * (1.0 + 1e-12) / tau.max(1e-9));
            assert!(hi >= q.norm * tau - 1e-12 || hi >= lo);
            assert!(lo <= hi * (1.0 + 1e-9), "window inverted: [{lo}, {hi}]");
        }
    }

    #[test]
    fn seek_norm_binary_search() {
        let c = setup(&["a b", "a b c", "a b c d", "a"]);
        let idx = TfIndex::build(&c);
        let a = c.dict().get("a").unwrap();
        let list = idx.list(a).unwrap();
        let mid = list.postings()[2].norm;
        let off = list.seek_norm(mid);
        assert!(list.postings()[off].norm >= mid);
        assert!(off == 0 || list.postings()[off - 1].norm < mid);
        assert_eq!(list.seek_norm(f64::MAX), list.postings().len());
        assert_eq!(list.seek_norm(0.0), 0);
    }

    #[test]
    fn boost_suffix_sums_decrease() {
        let c = setup(&["alpha beta gamma", "alpha beta", "alpha"]);
        let idx = TfIndex::build(&c);
        let q = idx.prepare_query_str("alpha beta gamma");
        let s = q.boost_suffix_sums();
        assert!((s[0] - q.boost_total).abs() < 1e-12);
        for w in s.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(*s.last().unwrap(), 0.0);
    }
}
