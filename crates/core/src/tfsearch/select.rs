use super::{TfIndex, TfQuery};
use crate::{passes, safely_below, validate_tau, Match, SearchOutcome, SearchStats, SetId};

/// Exhaustive TF/IDF-cosine selection (the oracle).
pub fn tf_scan(index: &TfIndex<'_>, query: &TfQuery, tau: f64) -> SearchOutcome {
    validate_tau(tau);
    let mut stats = SearchStats::default();
    let mut results = Vec::new();
    if query.is_empty() || query.norm == 0.0 {
        return SearchOutcome::complete(results, stats);
    }
    let collection = index.collection();
    for i in 0..collection.len() {
        let id = SetId(i as u32);
        // Base-table access, not a sorted list read: counted in
        // records_scanned so elements_read ≤ total_list_elements holds.
        stats.records_scanned += 1;
        let norm_s = index.norm(id);
        if norm_s == 0.0 {
            continue;
        }
        let m = collection.multiset(id);
        let dot: f64 = query
            .tokens
            .iter()
            .map(|qt| {
                let tf_s = m.tf(qt.token);
                f64::from(qt.tf_q) * f64::from(tf_s) * qt.idf_sq
            })
            .sum();
        let score = dot / (norm_s * query.norm);
        if passes(score, tau) {
            results.push(Match { id, score });
        }
    }
    SearchOutcome::complete(results, stats)
}

/// Shortest-First selection for TF/IDF cosine, with every bound boosted by
/// the per-token maximum term frequency (Section IV's closing remark,
/// realized).
///
/// Identical control flow to [`SfAlgorithm`](crate::SfAlgorithm): lists in
/// descending boost order, λᵢ cutoffs from boost suffix sums, one merge
/// pass per list against a `(norm, id)`-sorted candidate list. The only
/// loosening is that upper bounds use `tf_q·M_t·idf²` instead of the
/// (tf-free) exact `idf²`, so slightly more candidates survive until their
/// actual tf contributions resolve them.
#[derive(Debug, Clone, Copy, Default)]
pub struct TfSfAlgorithm;

#[derive(Debug, Clone, Copy)]
struct Cand {
    id: SetId,
    norm: f64,
    lower: f64,
}

#[inline]
fn key(norm: f64, id: SetId) -> (u64, u32) {
    (norm.to_bits(), id.0)
}

impl TfSfAlgorithm {
    /// Run the selection; exact results, boosted pruning.
    pub fn search(&self, index: &TfIndex<'_>, query: &TfQuery, tau: f64) -> SearchOutcome {
        validate_tau(tau);
        let mut stats = SearchStats::default();
        let mut results = Vec::new();
        if query.is_empty() || query.norm == 0.0 {
            return SearchOutcome::complete(results, stats);
        }
        let n = query.num_lists();
        let (norm_lo, norm_hi) = query.norm_bounds(tau);
        let lo_seek = norm_lo * (1.0 - crate::EPS_REL);
        let hi_cut = norm_hi * (1.0 + crate::EPS_REL);
        let suffix = query.boost_suffix_sums();
        // λᵢ: the largest norm a NEW candidate first discovered in list i
        // can have — its best case is suffix(i)/(norm·‖q‖).
        let lambdas: Vec<f64> = (0..n)
            .map(|i| (suffix[i] / (tau * query.norm)) * (1.0 + crate::EPS_REL))
            .collect();

        let mut cands: Vec<Cand> = Vec::new();
        for i in 0..n {
            stats.rounds += 1;
            let Some(list) = index.list(query.tokens[i].token) else {
                unreachable!("prepared tf-query tokens always have lists")
            };
            let postings = list.postings();
            stats.total_list_elements += postings.len() as u64;
            let start = list.seek_norm(lo_seek);
            stats.elements_skipped += start as u64;
            let mu = lambdas[i].min(hi_cut);
            let w_factor = f64::from(query.tokens[i].tf_q) * query.tokens[i].idf_sq;

            let mut merged: Vec<Cand> = Vec::with_capacity(cands.len());
            let mut ci = 0usize;
            let mut pos = start;
            loop {
                let tail_max = if ci < cands.len() {
                    cands[cands.len() - 1].norm
                } else {
                    f64::NEG_INFINITY
                };
                let bound = mu.max(tail_max);
                if pos >= postings.len() {
                    break;
                }
                let p = postings[pos];
                if p.norm > bound {
                    break;
                }
                pos += 1;
                stats.elements_read += 1;

                while ci < cands.len() && key(cands[ci].norm, cands[ci].id) < key(p.norm, p.id) {
                    let c = cands[ci];
                    ci += 1;
                    stats.candidate_scan_steps += 1;
                    let upper = c.lower + suffix[i + 1] / (c.norm * query.norm);
                    if !safely_below(upper, tau) {
                        merged.push(c);
                    }
                }
                let w = w_factor * f64::from(p.tf) / (p.norm * query.norm);
                if ci < cands.len() && key(cands[ci].norm, cands[ci].id) == key(p.norm, p.id) {
                    let mut c = cands[ci];
                    ci += 1;
                    c.lower += w;
                    merged.push(c);
                } else if p.norm <= lambdas[i] {
                    stats.candidates_inserted += 1;
                    merged.push(Cand {
                        id: p.id,
                        norm: p.norm,
                        lower: w,
                    });
                }
            }
            while ci < cands.len() {
                let c = cands[ci];
                ci += 1;
                stats.candidate_scan_steps += 1;
                let upper = c.lower + suffix[i + 1] / (c.norm * query.norm);
                if !safely_below(upper, tau) {
                    merged.push(c);
                }
            }
            cands = merged;
        }
        for c in cands {
            if passes(c.lower, tau) {
                results.push(Match {
                    id: c.id,
                    score: c.lower,
                });
            }
        }
        SearchOutcome::complete(results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CollectionBuilder;
    use setsim_tokenize::{QGramTokenizer, WordTokenizer};

    fn words(texts: &[&str]) -> crate::SetCollection {
        let mut b = CollectionBuilder::new(WordTokenizer::new().with_lowercase());
        b.extend(texts.iter().copied());
        b.build()
    }

    fn check_agreement(c: &crate::SetCollection, queries: &[&str], taus: &[f64]) {
        let idx = TfIndex::build(c);
        for qtext in queries {
            let q = idx.prepare_query_str(qtext);
            for &tau in taus {
                let oracle = tf_scan(&idx, &q, tau);
                let got = TfSfAlgorithm.search(&idx, &q, tau);
                assert_eq!(got.ids_sorted(), oracle.ids_sorted(), "q={qtext} tau={tau}");
                // Exact scores.
                let mut want: Vec<_> = oracle.results.clone();
                want.sort_by_key(|m| m.id);
                let mut have = got.results.clone();
                have.sort_by_key(|m| m.id);
                for (a, b) in have.iter().zip(&want) {
                    assert!((a.score - b.score).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn agrees_with_scan_on_words() {
        let c = words(&[
            "main main st",
            "main st",
            "main st st",
            "maine st",
            "park avenue",
            "main",
        ]);
        check_agreement(
            &c,
            &["main st", "main main st", "maine", "park avenue avenue"],
            &[0.2, 0.5, 0.8, 1.0],
        );
    }

    #[test]
    fn agrees_with_scan_on_qgrams() {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(2));
        // 2-grams of strings with repeated substrings produce tf > 1.
        b.extend([
            "abab",
            "ababab",
            "abcabc",
            "aabbaabb",
            "abcdef",
            "aaaa",
            "abab abab",
        ]);
        let c = b.build();
        check_agreement(
            &c,
            &["abab", "abcabc", "aaaa", "abcd"],
            &[0.3, 0.6, 0.9, 1.0],
        );
    }

    #[test]
    fn tf_discrepancy_lowers_score() {
        // The paper's s1/s2 intuition: higher tf discrepancy, lower cosine.
        let c = words(&["main main st", "main st"]);
        let idx = TfIndex::build(&c);
        let q = idx.prepare_query_str("main main st");
        let out = tf_scan(&idx, &q, 0.01).sorted_by_score();
        assert_eq!(out[0].id, SetId(0));
        assert!((out[0].score - 1.0).abs() < 1e-9);
        assert!(out[1].score < 1.0 - 1e-6);
    }

    #[test]
    fn self_similarity_is_one() {
        let c = words(&["alpha alpha beta", "gamma delta", "beta beta beta"]);
        let idx = TfIndex::build(&c);
        for (texts_i, text) in ["alpha alpha beta", "gamma delta", "beta beta beta"]
            .iter()
            .enumerate()
        {
            let q = idx.prepare_query_str(text);
            let out = TfSfAlgorithm.search(&idx, &q, 1.0);
            assert!(
                out.results.iter().any(|m| m.id.index() == texts_i),
                "self match lost for {text:?}"
            );
        }
    }

    #[test]
    fn boosted_bounds_still_prune() {
        // Every filler contains the query token "word" but at a much
        // larger tf-weighted norm, so the boosted length bounds exclude it.
        let mut texts: Vec<String> = (0..300)
            .map(|i| format!("filler{i:03} word {}", "pad ".repeat(3 + i % 20)))
            .collect();
        texts.push("needle word".into());
        let refs: Vec<&str> = texts.iter().map(std::string::String::as_str).collect();
        let c = words(&refs);
        let idx = TfIndex::build(&c);
        let q = idx.prepare_query_str("needle word");
        let out = TfSfAlgorithm.search(&idx, &q, 0.8);
        assert!(!out.results.is_empty());
        assert!(
            out.stats.elements_read < out.stats.total_list_elements,
            "boosted bounds must still prune something"
        );
    }

    #[test]
    fn empty_query() {
        let c = words(&["alpha"]);
        let idx = TfIndex::build(&c);
        let q = idx.prepare_query_str("");
        assert!(TfSfAlgorithm.search(&idx, &q, 0.5).results.is_empty());
        assert!(tf_scan(&idx, &q, 0.5).results.is_empty());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn invalid_tau_panics() {
        let c = words(&["alpha"]);
        let idx = TfIndex::build(&c);
        let q = idx.prepare_query_str("alpha");
        let _ = TfSfAlgorithm.search(&idx, &q, 0.0);
    }
}
