use setsim_tokenize::{Dictionary, TokenMultiSet, TokenSet, Tokenizer};
use std::fmt;

/// Identifier of a set in a [`SetCollection`]: a dense index assigned in
/// insertion order (the paper's 8-byte word-occurrence ids play the same
/// role; density lets us use plain vectors as side tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SetId(pub u32);

impl SetId {
    /// The id as a `usize`, for indexing side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Builds a [`SetCollection`] by tokenizing strings one at a time.
pub struct CollectionBuilder {
    tokenizer: Box<dyn Tokenizer + Send + Sync>,
    dict: Dictionary,
    texts: Vec<String>,
    multisets: Vec<TokenMultiSet>,
}

impl CollectionBuilder {
    /// A builder using `tokenizer` for every added string.
    pub fn new<T: Tokenizer + Send + Sync + 'static>(tokenizer: T) -> Self {
        Self {
            tokenizer: Box::new(tokenizer),
            dict: Dictionary::new(),
            texts: Vec::new(),
            multisets: Vec::new(),
        }
    }

    /// Tokenize and add one string; returns its id.
    ///
    /// # Panics
    /// Panics if the collection outgrows the `u32` id space.
    pub fn add(&mut self, text: &str) -> SetId {
        let Ok(raw) = u32::try_from(self.texts.len()) else {
            panic!("collection overflowed the u32 id space")
        };
        let id = SetId(raw);
        let ms = TokenMultiSet::tokenize(text, self.tokenizer.as_ref(), &mut self.dict);
        self.texts.push(text.to_string());
        self.multisets.push(ms);
        id
    }

    /// Add many strings.
    pub fn extend<'a, I: IntoIterator<Item = &'a str>>(&mut self, texts: I) {
        for t in texts {
            self.add(t);
        }
    }

    /// Finish building.
    pub fn build(self) -> SetCollection {
        let sets = self
            .multisets
            .iter()
            .map(setsim_tokenize::TokenMultiSet::to_set)
            .collect();
        SetCollection {
            tokenizer: self.tokenizer,
            dict: self.dict,
            texts: self.texts,
            multisets: self.multisets,
            sets,
        }
    }
}

/// A tokenized database of sets: the paper's base table.
///
/// Stores, per record, the original text, its token multiset (for TF-aware
/// measures) and its token set (for IDF). The tokenizer and dictionary are
/// retained so queries can be tokenized consistently.
pub struct SetCollection {
    tokenizer: Box<dyn Tokenizer + Send + Sync>,
    dict: Dictionary,
    texts: Vec<String>,
    multisets: Vec<TokenMultiSet>,
    sets: Vec<TokenSet>,
}

impl SetCollection {
    /// Reassemble a collection from its serialized parts (the snapshot
    /// load path). `multisets[i]` must be the tokenization of `texts[i]`
    /// under `tokenizer`/`dict`; the derived token sets are recomputed
    /// exactly as [`CollectionBuilder::build`] does.
    pub(crate) fn from_parts(
        tokenizer: Box<dyn Tokenizer + Send + Sync>,
        dict: Dictionary,
        texts: Vec<String>,
        multisets: Vec<TokenMultiSet>,
    ) -> Self {
        let sets = multisets
            .iter()
            .map(setsim_tokenize::TokenMultiSet::to_set)
            .collect();
        Self {
            tokenizer,
            dict,
            texts,
            multisets,
            sets,
        }
    }

    /// Decompose into the parts [`from_parts`](Self::from_parts) takes
    /// (the sharded build path: records are *moved* into per-shard
    /// sub-collections, never copied).
    pub(crate) fn into_parts(
        self,
    ) -> (
        Box<dyn Tokenizer + Send + Sync>,
        Dictionary,
        Vec<String>,
        Vec<TokenMultiSet>,
    ) {
        (self.tokenizer, self.dict, self.texts, self.multisets)
    }

    /// All record texts in id order (snapshot save path).
    pub(crate) fn texts(&self) -> &[String] {
        &self.texts
    }

    /// All record multisets in id order (snapshot save path).
    pub(crate) fn multisets(&self) -> &[TokenMultiSet] {
        &self.multisets
    }

    /// Number of sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True if the collection has no sets.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The token dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// The tokenizer records and queries are tokenized with.
    pub fn tokenizer(&self) -> &(dyn Tokenizer + Send + Sync) {
        self.tokenizer.as_ref()
    }

    /// Original text of a record.
    pub fn text(&self, id: SetId) -> Option<&str> {
        self.texts.get(id.index()).map(std::string::String::as_str)
    }

    /// Token set of a record.
    pub fn set(&self, id: SetId) -> &TokenSet {
        &self.sets[id.index()]
    }

    /// Token multiset of a record.
    pub fn multiset(&self, id: SetId) -> &TokenMultiSet {
        &self.multisets[id.index()]
    }

    /// Iterate over `(id, set)` pairs.
    pub fn iter_sets(&self) -> impl Iterator<Item = (SetId, &TokenSet)> {
        self.sets
            .iter()
            .enumerate()
            .map(|(i, s)| (SetId(i as u32), s))
    }

    /// Tokenize a query string against this collection's dictionary
    /// without growing it (unknown tokens are preserved as a count so
    /// query length normalization can account for them).
    pub fn tokenize_query(&self, text: &str) -> (TokenSet, usize) {
        let mut buf = Vec::new();
        self.tokenizer.tokenize_into(text, &mut buf);
        buf.sort_unstable();
        buf.dedup();
        let mut known = Vec::new();
        let mut unknown = 0usize;
        for t in &buf {
            match self.dict.get(t) {
                Some(tok) => known.push(tok),
                None => unknown += 1,
            }
        }
        (TokenSet::from_tokens(known), unknown)
    }

    /// Approximate heap size of the base table (texts only), for Figure 5.
    pub fn base_table_bytes(&self) -> usize {
        self.texts.iter().map(|t| t.len() + 16).sum()
    }
}

impl fmt::Debug for SetCollection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SetCollection")
            .field("sets", &self.sets.len())
            .field("distinct_tokens", &self.dict.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setsim_tokenize::QGramTokenizer;

    fn build(texts: &[&str]) -> SetCollection {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
        b.extend(texts.iter().copied());
        b.build()
    }

    #[test]
    fn ids_are_dense() {
        let mut b = CollectionBuilder::new(QGramTokenizer::new(3));
        assert_eq!(b.add("abcd"), SetId(0));
        assert_eq!(b.add("bcde"), SetId(1));
        let c = b.build();
        assert_eq!(c.len(), 2);
        assert_eq!(c.text(SetId(0)), Some("abcd"));
        assert_eq!(c.text(SetId(5)), None);
    }

    #[test]
    fn sets_match_multisets() {
        let c = build(&["mainmain", "street"]);
        for (id, set) in c.iter_sets() {
            assert_eq!(&c.multiset(id).to_set(), set);
        }
    }

    #[test]
    fn query_tokenization_counts_unknowns() {
        let c = build(&["abcdef"]);
        let (known, unknown) = c.tokenize_query("abcxyz");
        assert!(unknown > 0, "xyz-grams are unknown");
        assert!(!known.is_empty(), "abc-grams are known");
        // Dictionary must not have grown.
        let before = c.dict().len();
        let _ = c.tokenize_query("zzzzzz");
        assert_eq!(c.dict().len(), before);
    }

    #[test]
    fn empty_collection() {
        let c = build(&[]);
        assert!(c.is_empty());
        assert_eq!(c.iter_sets().count(), 0);
    }

    #[test]
    fn duplicate_texts_get_distinct_ids() {
        let c = build(&["same", "same"]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.set(SetId(0)), c.set(SetId(1)));
    }
}
