//! Property-based equivalence suite for the mutable (delta/base) index.
//!
//! The invariant under test is the contract stated in DESIGN.md §12: for
//! **any** interleaving of inserts, deletes, and upserts, a
//! [`MutableIndex`] must answer every selection query exactly like a
//! static [`InvertedIndex`] rebuilt from scratch over the same live
//! records — same result-id sets for all eight algorithms across a τ
//! grid, with scores matching to within accumulated float tolerance.
//! The check runs twice per generated op sequence: once against the
//! layered delta/base state, and once more after [`MutableIndex::compact`]
//! folds the delta into a fresh base segment.

use setsim_core::engine::{execute, AlgorithmKind, Scratch, SearchRequest};
use setsim_core::{
    CollectionBuilder, DriftBudget, IndexOptions, InvertedIndex, MutableIndex,
    MutableSearchRequest, RecordId, SetCollection,
};
use setsim_tokenize::QGramTokenizer;

use proptest::prelude::*;

/// Pool of record texts the generators draw from. Deliberately full of
/// shared q-grams so queries land near thresholds and token document
/// frequencies actually shift (IDF drift) as records churn.
const POOL: [&str; 12] = [
    "main street",
    "main street north",
    "main st",
    "park avenue",
    "park ave",
    "wall street",
    "wall street west",
    "ocean drive",
    "ocean drive south",
    "harbor view road",
    "harbor view",
    "river walk lane",
];

/// Queries probed after each op sequence: pool members, near-misses,
/// and one string whose q-grams are entirely absent from the pool.
const QUERIES: [&str; 5] = [
    "main street",
    "park avenue",
    "ocean drive",
    "harbour view rd",
    "zzqqxxjj",
];

const TAUS: [f64; 4] = [0.3, 0.5, 0.7, 0.9];

/// Score agreement tolerance for the layered state. Delta and base score
/// the same dot product over the same live IDFs; only summation order
/// differs, so disagreement is bounded by a few ulps per term.
const SCORE_EPS: f64 = 1e-12;

fn collection(texts: &[&str]) -> SetCollection {
    let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    for t in texts {
        b.add(t);
    }
    b.build()
}

/// Mirror model: the live records the index should be equivalent to,
/// in `MutableIndex::live_records()` order semantics (we just compare
/// as id-sorted sets, so plain Vec upkeep suffices).
struct Mirror {
    live: Vec<(RecordId, String)>,
}

impl Mirror {
    fn insert(&mut self, id: RecordId, text: &str) {
        self.live.push((id, text.to_string()));
    }

    fn delete(&mut self, id: RecordId) -> bool {
        let before = self.live.len();
        self.live.retain(|(rid, _)| *rid != id);
        before != self.live.len()
    }
}

/// Ground truth for one query/τ: rebuild a static index over the mirror
/// and run the full-scan oracle, mapping set ids back to record ids.
fn oracle(mirror: &Mirror, query: &str, tau: f64) -> Vec<(RecordId, f64)> {
    let texts: Vec<&str> = mirror.live.iter().map(|(_, t)| t.as_str()).collect();
    let fresh = InvertedIndex::build_owned(Box::new(collection(&texts)), IndexOptions::default());
    let q = fresh.prepare_query_str(query);
    let req = SearchRequest::new(&q)
        .tau(tau)
        .algorithm(AlgorithmKind::Scan);
    let out = execute(&fresh, &mut Scratch::default(), &req).expect("oracle scan");
    let mut rows: Vec<(RecordId, f64)> = out
        .results
        .iter()
        .map(|m| (mirror.live[m.id.index()].0, m.score))
        .collect();
    rows.sort_by_key(|(id, _)| *id);
    rows
}

fn mutable_rows(
    mi: &MutableIndex,
    query: &str,
    tau: f64,
    kind: AlgorithmKind,
) -> Vec<(RecordId, f64)> {
    let q = mi.prepare_query_str(query);
    let req = MutableSearchRequest::new(&q).tau(tau).algorithm(kind);
    let out = mi
        .search(&mut Scratch::default(), &req)
        .expect("mutable search");
    let mut rows: Vec<(RecordId, f64)> = out.results.iter().map(|m| (m.record, m.score)).collect();
    rows.sort_by_key(|(id, _)| *id);
    rows
}

/// Assert the mutable index agrees with the from-scratch oracle on every
/// algorithm × τ × query cell. Returns an error string for prop_assert.
fn check_equivalence(mi: &MutableIndex, mirror: &Mirror, label: &str) -> Result<(), String> {
    for &tau in &TAUS {
        for query in QUERIES {
            let want = oracle(mirror, query, tau);
            let want_ids: Vec<RecordId> = want.iter().map(|(id, _)| *id).collect();
            for kind in AlgorithmKind::ALL {
                let got = mutable_rows(mi, query, tau, kind);
                let got_ids: Vec<RecordId> = got.iter().map(|(id, _)| *id).collect();
                if got_ids != want_ids {
                    return Err(format!(
                        "{label}: {kind:?} τ={tau} q={query:?}: ids {got_ids:?} != oracle {want_ids:?}"
                    ));
                }
                for ((id, got_s), (_, want_s)) in got.iter().zip(&want) {
                    if (got_s - want_s).abs() > SCORE_EPS {
                        return Err(format!(
                            "{label}: {kind:?} τ={tau} q={query:?} {id}: score {got_s} != {want_s}"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Apply one generated op to both the index and the mirror. `sel` picks
/// a victim for delete/upsert out of every id ever issued (so roughly
/// half the deletes hit already-dead records — the no-op path must stay
/// equivalent too).
fn apply_op(
    mi: &mut MutableIndex,
    mirror: &mut Mirror,
    issued: &mut Vec<RecordId>,
    op: u8,
    text_idx: usize,
    sel: usize,
) -> Result<(), String> {
    let text = POOL[text_idx % POOL.len()];
    match op {
        0 => {
            let id = mi.insert(text);
            mirror.insert(id, text);
            issued.push(id);
        }
        1 => {
            if issued.is_empty() {
                return Ok(());
            }
            let id = issued[sel % issued.len()];
            let got = mi.delete(id);
            let want = mirror.delete(id);
            if got != want {
                return Err(format!("delete({id}) returned {got}, mirror says {want}"));
            }
        }
        _ => {
            if issued.is_empty() {
                return Ok(());
            }
            let id = issued[sel % issued.len()];
            let got = mi.upsert(id, text);
            let was_live = mirror.delete(id);
            if was_live {
                mirror.insert(id, text);
            }
            if got != was_live {
                return Err(format!(
                    "upsert({id}) returned {got}, mirror says {was_live}"
                ));
            }
        }
    }
    Ok(())
}

fn seed_index(seed_count: usize) -> (MutableIndex, Mirror, Vec<RecordId>) {
    let texts: Vec<&str> = POOL[..seed_count].to_vec();
    let mi = MutableIndex::from_collection(Box::new(collection(&texts)), IndexOptions::default())
        .expect("qgram tokenizer has a spec")
        // Disable auto-compaction triggers: these tests exercise the
        // layered state explicitly and call compact() themselves.
        .with_budget(DriftBudget {
            max_rel_err: f64::INFINITY,
            max_delta_records: usize::MAX,
        });
    let mirror = Mirror {
        live: mi.live_records(),
    };
    let issued: Vec<RecordId> = mirror.live.iter().map(|(id, _)| *id).collect();
    (mi, mirror, issued)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random interleavings over a seeded base: layered state and
    /// post-compaction state both match a from-scratch rebuild on all
    /// eight algorithms across the τ grid.
    #[test]
    fn random_mutations_match_from_scratch_rebuild(
        seed_count in 1usize..=6,
        ops in prop::collection::vec((0u8..3, 0usize..12, 0usize..32), 1..24),
    ) {
        let (mut mi, mut mirror, mut issued) = seed_index(seed_count);
        for (op, text_idx, sel) in ops {
            let r = apply_op(&mut mi, &mut mirror, &mut issued, op, text_idx, sel);
            prop_assert!(r.is_ok(), "{}", r.unwrap_err());
        }
        let r = check_equivalence(&mi, &mirror, "layered");
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());

        mi.compact();
        prop_assert!(mi.pristine(), "compaction must leave a pristine index");
        let r = check_equivalence(&mi, &mirror, "compacted");
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    /// Same contract starting from an empty base: every record lives in
    /// the delta segment, so base-phase short-circuits are exercised.
    #[test]
    fn mutations_over_empty_base_match_rebuild(
        ops in prop::collection::vec((0u8..3, 0usize..12, 0usize..32), 1..16),
    ) {
        let (mut mi, mut mirror, mut issued) = seed_index(0);
        prop_assert_eq!(mi.live_len(), 0);
        for (op, text_idx, sel) in ops {
            let r = apply_op(&mut mi, &mut mirror, &mut issued, op, text_idx, sel);
            prop_assert!(r.is_ok(), "{}", r.unwrap_err());
        }
        let r = check_equivalence(&mi, &mirror, "empty-base layered");
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());

        mi.compact();
        let r = check_equivalence(&mi, &mirror, "empty-base compacted");
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    /// Mid-sequence compactions interleaved with further mutations:
    /// record ids stay stable across segment swaps and equivalence holds
    /// at every compaction boundary.
    #[test]
    fn interleaved_compactions_preserve_equivalence(
        rounds in prop::collection::vec(
            prop::collection::vec((0u8..3, 0usize..12, 0usize..32), 1..8),
            1..4,
        ),
    ) {
        let (mut mi, mut mirror, mut issued) = seed_index(3);
        for batch in rounds {
            for (op, text_idx, sel) in batch {
                let r = apply_op(&mut mi, &mut mirror, &mut issued, op, text_idx, sel);
                prop_assert!(r.is_ok(), "{}", r.unwrap_err());
            }
            mi.compact();
            let r = check_equivalence(&mi, &mirror, "round compacted");
            prop_assert!(r.is_ok(), "{}", r.unwrap_err());
        }
        // Ids issued across swaps never collide.
        let mut ids: Vec<RecordId> = issued.clone();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), issued.len());
    }
}

/// The audit layer's state cross-check stays clean across a generated
/// mutation batch (deterministic sequence; the proptest cases above
/// already cover the randomized space without the audit feature).
#[cfg(feature = "audit")]
#[test]
fn audit_state_stays_clean_across_mutations_and_compaction() {
    use setsim_core::audit::AuditedMutableIndex;

    let (mut mi, mut mirror, mut issued) = seed_index(4);
    let script: [(u8, usize, usize); 10] = [
        (0, 6, 0),
        (0, 7, 0),
        (1, 0, 1),
        (2, 8, 2),
        (0, 9, 0),
        (1, 0, 7),
        (2, 10, 3),
        (0, 11, 0),
        (1, 0, 4),
        (2, 1, 5),
    ];
    for (op, text_idx, sel) in script {
        apply_op(&mut mi, &mut mirror, &mut issued, op, text_idx, sel).expect("mirror agreement");
        AuditedMutableIndex::new(&mi).audit_state().assert_clean();
    }
    check_equivalence(&mi, &mirror, "audited layered").expect("equivalence");
    mi.compact();
    AuditedMutableIndex::new(&mi).audit_state().assert_clean();
    check_equivalence(&mi, &mirror, "audited compacted").expect("equivalence");
}
