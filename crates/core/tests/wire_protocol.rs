//! Protocol fuzz/property suite for `setsim_core::api`.
//!
//! Three families, mirroring the snapshot-corruption methodology the
//! storage layer uses for its on-disk container:
//!
//! 1. **Round-trip properties** — randomly generated values of *every*
//!    [`WireRequest`]/[`WireResponse`] variant encode → decode to an
//!    equal value (floats compared as bit patterns, so NaN payloads and
//!    signed zeros survive).
//! 2. **Truncation at every boundary** — every strict prefix of a valid
//!    payload fails with a typed [`WireDecodeError`], never a panic and
//!    never a bogus success.
//! 3. **Byte flips** — every single-bit corruption either still decodes
//!    (the flip landed in a value, e.g. a score bit — wire formats
//!    cannot checksum every field) or fails with a typed error; it never
//!    panics and never reads out of bounds.

use proptest::prelude::*;
use setsim_core::api::{
    status_from_wire_code, status_wire_code, SearchCall, SearchReply, WireDecodeError, WireError,
    WireMatch, WireRequest, WireResponse, WireStats,
};
use setsim_core::{AlgorithmKind, ErrorCode, SearchStatus};

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

fn arb_algorithm(pick: u8) -> AlgorithmKind {
    AlgorithmKind::ALL[(pick as usize) % AlgorithmKind::ALL.len()]
}

/// Interesting f64 bit patterns: ordinary values, infinities, NaNs with
/// payloads, signed zero — all must survive the wire bit-exactly.
fn arb_f64(bits: u64, selector: u8) -> f64 {
    match selector % 6 {
        0 => f64::from_bits(bits),
        1 => f64::NAN,
        2 => f64::INFINITY,
        3 => f64::NEG_INFINITY,
        4 => -0.0,
        _ => (bits as f64) / 1e6,
    }
}

fn arb_call(
    text: String,
    tau_bits: u64,
    sel: u8,
    algo: u8,
    flags: u8,
    max_elements: Option<u64>,
    deadline_us: Option<u64>,
) -> SearchCall {
    let mut call = SearchCall::new(text)
        .tau(arb_f64(tau_bits, sel))
        .algorithm(arb_algorithm(algo));
    call.length_bounding = flags & 1 != 0;
    call.use_skip_lists = flags & 2 != 0;
    call.want_texts = flags & 4 != 0;
    call.max_elements = max_elements;
    call.deadline_us = deadline_us;
    call
}

fn arb_request(tag: u8, text: String, id: u64, call: SearchCall) -> WireRequest {
    match tag % 8 {
        0 => WireRequest::Hello {
            version: (id % 1000) as u32,
        },
        1 => WireRequest::Search(call),
        2 => WireRequest::Insert { text },
        3 => WireRequest::Delete { id },
        4 => WireRequest::Upsert { id, text },
        5 => WireRequest::Stats,
        6 => WireRequest::Compact,
        _ => WireRequest::Ping,
    }
}

fn arb_matches(rows: &[(u64, u64, u8, String)]) -> Vec<WireMatch> {
    rows.iter()
        .map(|(record, bits, sel, text)| WireMatch {
            record: *record,
            score: arb_f64(*bits, *sel),
            text: if sel % 3 == 0 {
                Some(text.clone())
            } else {
                None
            },
        })
        .collect()
}

fn arb_response(
    tag: u8,
    id: u64,
    rows: &[(u64, u64, u8, String)],
    text: String,
    code: u16,
) -> WireResponse {
    match tag % 9 {
        0 => WireResponse::Hello {
            version: (id % 1000) as u32,
        },
        1 => WireResponse::Search(SearchReply {
            status: if id % 2 == 0 {
                SearchStatus::Complete
            } else {
                SearchStatus::BudgetExceeded
            },
            matches: arb_matches(rows),
            work: id,
        }),
        2 => WireResponse::Insert { id },
        3 => WireResponse::Delete {
            existed: id % 2 == 0,
        },
        4 => WireResponse::Upsert {
            existed: id % 2 == 1,
        },
        5 => WireResponse::Stats(WireStats {
            queries: id,
            budget_exceeded: id / 3,
            elements_read: id.rotate_left(17),
            mean_pruning_pct: arb_f64(id, (code % 251) as u8),
            p99_us: id % 100_000,
            shed: id % 7,
            draining: id % 2 == 0,
            ..WireStats::default()
        }),
        6 => WireResponse::Compact,
        7 => WireResponse::Pong,
        _ => WireResponse::Error(WireError {
            code: ErrorCode::from_u16(code),
            message: text,
            retry_after_ms: if code % 2 == 0 { Some(id) } else { None },
        }),
    }
}

/// Structural equality with floats compared bit-exactly. `PartialEq` on
/// the wire types already uses f64 `==`, which treats NaN ≠ NaN — so
/// compare through the encoded bytes instead: equal encodings are the
/// wire-level definition of "the same value".
fn wire_eq_req(a: &WireRequest, b: &WireRequest) -> bool {
    a.encode() == b.encode()
}

fn wire_eq_resp(a: &WireResponse, b: &WireResponse) -> bool {
    a.encode() == b.encode()
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn request_roundtrip(
        tag in 0u8..8,
        text in ".{0,40}",
        id in 0u64..u64::MAX,
        tau_bits in 0u64..u64::MAX,
        sel in 0u8..6,
        algo in 0u8..8,
        flags in 0u8..8,
        max_elements in 0u64..u64::MAX,
        deadline_us in 0u64..u64::MAX,
        opt in 0u8..4,
    ) {
        let call = arb_call(
            text.clone(),
            tau_bits,
            sel,
            algo,
            flags,
            (opt & 1 != 0).then_some(max_elements),
            (opt & 2 != 0).then_some(deadline_us),
        );
        let req = arb_request(tag, text, id, call);
        let bytes = req.encode();
        let back = WireRequest::decode(&bytes);
        match back {
            Ok(b) => prop_assert!(wire_eq_req(&req, &b), "decode changed the value"),
            Err(e) => prop_assert!(false, "valid encoding failed to decode: {e}"),
        }
    }

    #[test]
    fn response_roundtrip(
        tag in 0u8..9,
        id in 0u64..u64::MAX,
        rows in prop::collection::vec(
            (0u64..u64::MAX, 0u64..u64::MAX, 0u8..=255, "[a-z]{0,12}"), 0..6),
        text in ".{0,40}",
        code in 0u16..40,
    ) {
        let resp = arb_response(tag, id, &rows, text, code);
        let bytes = resp.encode();
        let back = WireResponse::decode(&bytes);
        match back {
            Ok(b) => prop_assert!(wire_eq_resp(&resp, &b), "decode changed the value"),
            Err(e) => prop_assert!(false, "valid encoding failed to decode: {e}"),
        }
    }

    #[test]
    fn request_truncation_always_typed(
        tag in 0u8..8,
        text in ".{0,24}",
        id in 0u64..u64::MAX,
    ) {
        let call = SearchCall::new(text.clone()).tau(0.4);
        let req = arb_request(tag, text, id, call);
        let bytes = req.encode();
        for cut in 0..bytes.len() {
            // A strict prefix can never decode: every variant's layout
            // spends its final bytes on mandatory fields.
            prop_assert!(
                WireRequest::decode(&bytes[..cut]).is_err(),
                "prefix {cut}/{} decoded", bytes.len()
            );
        }
    }

    #[test]
    fn response_truncation_always_typed(
        tag in 0u8..9,
        id in 0u64..u64::MAX,
        rows in prop::collection::vec(
            (0u64..u64::MAX, 0u64..1u64 << 52, 0u8..=255, "[a-z]{0,8}"), 0..4),
        text in "[a-z]{0,16}",
        code in 0u16..40,
    ) {
        let resp = arb_response(tag, id, &rows, text, code);
        let bytes = resp.encode();
        for cut in 0..bytes.len() {
            prop_assert!(
                WireResponse::decode(&bytes[..cut]).is_err(),
                "prefix {cut}/{} decoded", bytes.len()
            );
        }
    }

    #[test]
    fn byte_flips_never_panic(
        tag in 0u8..8,
        text in "[a-z]{0,20}",
        id in 0u64..u64::MAX,
        bit in 0usize..8,
    ) {
        let call = SearchCall::new(text.clone()).tau(0.4).with_texts();
        let req = arb_request(tag, text, id, call);
        let bytes = req.encode();
        for pos in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[pos] ^= 1 << bit;
            // Either outcome is legal; what is being tested is that the
            // decoder stays total: typed result, no panic, no OOB.
            let _ = WireRequest::decode(&mutated);
            let _ = WireResponse::decode(&mutated);
        }
    }

    #[test]
    fn random_garbage_never_panics(
        bytes in prop::collection::vec(0u8..=255, 0..200),
    ) {
        let _ = WireRequest::decode(&bytes);
        let _ = WireResponse::decode(&bytes);
    }
}

// ---------------------------------------------------------------------
// Deterministic edge cases
// ---------------------------------------------------------------------

#[test]
fn status_codes_are_total_and_stable() {
    assert_eq!(status_wire_code(SearchStatus::Complete), 0);
    assert_eq!(status_wire_code(SearchStatus::BudgetExceeded), 1);
    assert_eq!(status_from_wire_code(0), Some(SearchStatus::Complete));
    assert_eq!(status_from_wire_code(1), Some(SearchStatus::BudgetExceeded));
    assert_eq!(status_from_wire_code(2), None);
}

#[test]
fn empty_payload_is_truncated_not_panic() {
    assert_eq!(WireRequest::decode(&[]), Err(WireDecodeError::Truncated));
    assert_eq!(WireResponse::decode(&[]), Err(WireDecodeError::Truncated));
}

#[test]
fn error_roundtrip_preserves_code_message_and_hint() {
    let err = WireError::overloaded(42);
    let resp = WireResponse::Error(err.clone());
    match WireResponse::decode(&resp.encode()) {
        Ok(WireResponse::Error(back)) => {
            assert_eq!(back.code, ErrorCode::Overloaded);
            assert_eq!(back.message, err.message);
            assert_eq!(back.retry_after_ms, Some(42));
        }
        other => panic!("expected error response, got {other:?}"),
    }
}
