//! Property-based equivalence suite for the length-banded sharded index.
//!
//! The invariant under test is the contract stated in DESIGN.md §16: for
//! **any** corpus and **any** shard count, a [`ShardedIndex`] must answer
//! every selection query with the *exact bits* the unsharded
//! [`InvertedIndex`] produces — same result ids, same `f64` score bits —
//! for all eight algorithms across a τ grid. The suite also drives the
//! degenerate band shapes (all records one length, fewer records than
//! shards, a single record) and the save → open round trip, and runs the
//! multi-threaded [`ShardedEngine`] scatter path against the sequential
//! one.

use setsim_core::engine::{execute, AlgorithmKind, Scratch, SearchRequest};
use setsim_core::{
    CollectionBuilder, IndexOptions, InvertedIndex, SetCollection, ShardedEngine, ShardedIndex,
};
use setsim_tokenize::QGramTokenizer;

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Pool of record texts the corpus generator draws from. Mixed lengths
/// (short/medium/long) so the length histogram has real spread and band
/// boundaries land in interesting places; heavy q-gram sharing so
/// queries score near thresholds.
const POOL: [&str; 14] = [
    "main street",
    "main street north",
    "main st",
    "m",
    "park avenue",
    "park ave",
    "wall street",
    "wall street west annex building fourteen",
    "ocean drive",
    "ocean drive south extension",
    "harbor view road",
    "harbor view",
    "river walk lane by the old harbor view road",
    "river",
];

const QUERIES: [&str; 5] = [
    "main street",
    "park avenue",
    "harbor view road",
    "river walk",
    "zzqqxxjj",
];

const TAUS: [f64; 4] = [0.3, 0.5, 0.8, 0.95];

/// Shard counts covering the degenerate and awkward cases: trivial (1),
/// binary split, more shards than distinct lengths, and a prime count
/// larger than the record count for small corpora.
const SHARD_COUNTS: [usize; 4] = [1, 2, 8, 17];

fn collection(texts: &[&str]) -> SetCollection {
    let mut b = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    for t in texts {
        b.add(t);
    }
    b.build()
}

/// `(global id, score bits)` rows, id-sorted — the bit-exact comparison
/// key. Sharded results come back grouped by shard, so both sides are
/// sorted before comparing.
fn key(results: &[setsim_core::Match]) -> Vec<(u32, u64)> {
    let mut rows: Vec<(u32, u64)> = results
        .iter()
        .map(|m| (m.id.0, m.score.to_bits()))
        .collect();
    rows.sort_unstable();
    rows
}

fn baseline_rows(
    index: &InvertedIndex<'_>,
    query: &str,
    tau: f64,
    kind: AlgorithmKind,
) -> Vec<(u32, u64)> {
    let q = index.prepare_query_str(query);
    let req = SearchRequest::new(&q).tau(tau).algorithm(kind);
    let out = execute(index, &mut Scratch::default(), &req).expect("baseline search");
    key(&out.results)
}

/// Assert the sharded index matches the unsharded baseline bit-for-bit
/// on every algorithm × τ × query cell, and that the merged stats keep
/// the three-way access partition. Returns an error string for
/// prop_assert.
fn check_equivalence(
    sharded: &ShardedIndex,
    baseline: &InvertedIndex<'_>,
    label: &str,
) -> Result<(), String> {
    for &tau in &TAUS {
        for query in QUERIES {
            let bq = baseline.prepare_query_str(query);
            let sq = sharded.prepare_query_str(query);
            if bq.len.to_bits() != sq.len.to_bits() {
                return Err(format!(
                    "{label}: query prep drifted for {query:?}: len {} != {}",
                    bq.len, sq.len
                ));
            }
            for kind in AlgorithmKind::ALL {
                let want = baseline_rows(baseline, query, tau, kind);
                let req = SearchRequest::new(&sq).tau(tau).algorithm(kind);
                let out = sharded
                    .search(&req)
                    .map_err(|e| format!("{label}: {kind:?} τ={tau} q={query:?}: {e:?}"))?;
                let got = key(&out.results);
                if got != want {
                    return Err(format!(
                        "{label}: {kind:?} τ={tau} q={query:?}: {got:?} != baseline {want:?}"
                    ));
                }
                // The merged access partition must hold (debug-asserted
                // inside pruning_pct).
                let _ = out.stats.pruning_pct();
            }
        }
    }
    Ok(())
}

/// A process-unique scratch directory (same idiom as the storage crate's
/// manifest tests).
fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("setsim-shard-eq-{tag}-{}-{n}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random corpora × shard counts {1, 2, 8, 17}: bit-identical to the
    /// unsharded index on all eight algorithms across the τ grid.
    #[test]
    fn sharded_matches_unsharded_bit_for_bit(
        picks in prop::collection::vec(0usize..POOL.len(), 0..20),
    ) {
        let texts: Vec<&str> = picks.iter().map(|&i| POOL[i]).collect();
        let c = collection(&texts);
        let baseline = InvertedIndex::build(&c, IndexOptions::default());
        for &n in &SHARD_COUNTS {
            let sharded = ShardedIndex::build(&c, n, IndexOptions::default())
                .expect("qgram tokenizer has a spec");
            prop_assert_eq!(sharded.num_records(), texts.len());
            prop_assert!(sharded.num_shards() <= n.max(1));
            let r = check_equivalence(&sharded, &baseline, &format!("shards={n}"));
            prop_assert!(r.is_ok(), "{}", r.unwrap_err());
        }
    }

    /// Save → open round trip preserves bit-identity (the reopened index
    /// scores with the manifest's reconstructed global weight table).
    #[test]
    fn save_open_round_trip_is_bit_identical(
        picks in prop::collection::vec(0usize..POOL.len(), 1..12),
        n_idx in 0usize..SHARD_COUNTS.len(),
    ) {
        let n = SHARD_COUNTS[n_idx];
        let texts: Vec<&str> = picks.iter().map(|&i| POOL[i]).collect();
        let c = collection(&texts);
        let baseline = InvertedIndex::build(&c, IndexOptions::default());
        let sharded = ShardedIndex::build(&c, n, IndexOptions::default())
            .expect("qgram tokenizer has a spec");
        let dir = temp_dir("roundtrip");
        sharded.save(&dir).expect("save");
        prop_assert!(ShardedIndex::exists(&dir));
        let reopened = ShardedIndex::open(&dir).expect("open");
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(reopened.num_shards(), sharded.num_shards());
        prop_assert_eq!(reopened.num_records(), sharded.num_records());
        let r = check_equivalence(&reopened, &baseline, &format!("reopened shards={n}"));
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }
}

/// All records tokenize to the same length: every quantile cut collapses
/// and the whole corpus lives in one band, for any requested count.
#[test]
fn all_equal_lengths_collapse_to_one_band() {
    let texts = vec!["same text here"; 9];
    let c = collection(&texts);
    let baseline = InvertedIndex::build(&c, IndexOptions::default());
    for &n in &SHARD_COUNTS {
        let sharded = ShardedIndex::build(&c, n, IndexOptions::default()).expect("spec");
        assert_eq!(sharded.num_shards(), 1, "requested {n}");
        check_equivalence(&sharded, &baseline, "all-equal").expect("equivalence");
    }
}

/// A single record sharded seventeen ways: one single-record shard.
#[test]
fn single_record_corpus() {
    let c = collection(&["main street"]);
    let baseline = InvertedIndex::build(&c, IndexOptions::default());
    let sharded = ShardedIndex::build(&c, 17, IndexOptions::default()).expect("spec");
    assert_eq!(sharded.num_shards(), 1);
    check_equivalence(&sharded, &baseline, "single-record").expect("equivalence");
}

/// Empty corpus: one empty shard, every query answers cleanly, and the
/// directory round-trips.
#[test]
fn empty_corpus_round_trips() {
    let c = collection(&[]);
    let baseline = InvertedIndex::build(&c, IndexOptions::default());
    let sharded = ShardedIndex::build(&c, 8, IndexOptions::default()).expect("spec");
    assert_eq!(sharded.num_shards(), 1);
    check_equivalence(&sharded, &baseline, "empty").expect("equivalence");
    let dir = temp_dir("empty");
    sharded.save(&dir).expect("save");
    let reopened = ShardedIndex::open(&dir).expect("open");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(reopened.num_records(), 0);
    check_equivalence(&reopened, &baseline, "empty reopened").expect("equivalence");
}

/// The multi-threaded [`ShardedEngine`] scatter path returns the same
/// bits as the sequential [`ShardedIndex::search`] path — worker count
/// and steal order must not leak into results (gather is slot-ordered)
/// — and records pruned shards in its metrics.
#[test]
fn engine_scatter_matches_sequential_search() {
    let texts: Vec<&str> = POOL.iter().copied().cycle().take(40).collect();
    let c = collection(&texts);
    let baseline = InvertedIndex::build(&c, IndexOptions::default());
    let sharded = ShardedIndex::build(&c, 8, IndexOptions::default()).expect("spec");
    assert!(sharded.num_shards() > 1);
    check_equivalence(&sharded, &baseline, "engine corpus").expect("sequential equivalence");

    let engine = ShardedEngine::new(ShardedIndex::build(&c, 8, IndexOptions::default()).unwrap());
    let mut saw_pruning = false;
    for query in QUERIES {
        for &tau in &TAUS {
            let sq = engine.prepare_query_str(query);
            let seq = sharded
                .search(&SearchRequest::new(&sq).tau(tau))
                .expect("sequential");
            for threads in [1, 2, 7] {
                let par = engine
                    .search_with_threads(&SearchRequest::new(&sq).tau(tau), threads)
                    .expect("parallel");
                assert_eq!(
                    key(&par.results),
                    key(&seq.results),
                    "threads={threads} τ={tau} q={query:?}"
                );
                assert_eq!(par.stats.shards_pruned, seq.stats.shards_pruned);
                if par.stats.shards_pruned > 0 {
                    saw_pruning = true;
                }
            }
        }
    }
    assert!(saw_pruning, "no cell pruned a shard — bands too coarse?");
    let metrics = engine.metrics();
    assert!(metrics.queries > 0);
}
