//! Offline microbenchmark shim for the setsim workspace.
//!
//! Reimplements the **subset** of the external `criterion` crate the
//! workspace's benches use, so `cargo bench` works with no network access
//! and no third-party code: [`criterion_group!`] / [`criterion_main!`],
//! [`Criterion::benchmark_group`], `bench_function`, `bench_with_input`,
//! [`BenchmarkId`], and [`Bencher::iter`].
//!
//! Measurement is deliberately simple — warm up, then time batches until a
//! fixed measurement budget elapses and report the mean wall-clock time
//! per iteration. No statistics, plots, or saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Drives one benchmark body: `b.iter(|| work())`.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`iter`](Self::iter).
    ns_per_iter: f64,
    iters: u64,
    measure: Duration,
}

impl Bencher {
    fn new(measure: Duration) -> Self {
        Self {
            ns_per_iter: 0.0,
            iters: 0,
            measure,
        }
    }

    /// Run `body` repeatedly and record its mean wall-clock duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up: one untimed run (JIT-free Rust, but touches caches).
        std::hint::black_box(body());
        let start = Instant::now();
        let mut iters: u64 = 0;
        loop {
            std::hint::black_box(body());
            iters += 1;
            if start.elapsed() >= self.measure {
                break;
            }
        }
        let total = start.elapsed();
        self.iters = iters;
        self.ns_per_iter = total.as_nanos() as f64 / iters as f64;
    }
}

/// Identifies one benchmark within a group, e.g. `new("SF", "tau=0.8")`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter, e.g. `from_parameter(0.8)`.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// A named set of related benchmarks, printed under a common heading.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    measure: Duration,
}

impl BenchmarkGroup<'_> {
    /// Criterion knob kept for API compatibility; this shim's measurement
    /// budget is time-based, so the requested sample count only scales the
    /// budget down for expensive benches (criterion's `sample_size(10)`
    /// idiom).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        if samples <= 10 {
            self.measure = self.criterion.measure / 2;
        }
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.measure);
        f(&mut b);
        report(&self.name, &id.label, &b);
        self
    }

    /// Benchmark a closure that receives `input` under `id`.
    // By-value `id` mirrors the external criterion signature so call
    // sites compile unchanged against either implementation.
    #[allow(clippy::needless_pass_by_value)]
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.measure);
        f(&mut b, input);
        report(&self.name, &id.label, &b);
        self
    }

    /// End the group (printing is immediate; this is a no-op for
    /// criterion API compatibility).
    pub fn finish(&mut self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

fn report(group: &str, label: &str, b: &Bencher) {
    let ns = b.ns_per_iter;
    let human = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    };
    println!("{group}/{label:<32} {human:>12}/iter  ({} iters)", b.iters);
}

/// Top-level benchmark driver; one per bench binary.
pub struct Criterion {
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Small budget: these benches exist for relative comparisons and
        // CI compile coverage, not publication-grade statistics.
        Self {
            measure: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            measure: self.measure,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.measure);
        f(&mut b);
        report("bench", id, &b);
        self
    }
}

/// Declare a group of benchmark functions, criterion-style:
/// `criterion_group!(benches, bench_a, bench_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench binary's `main`, running each group:
/// `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags like `--bench`; ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(Duration::from_millis(5));
        b.iter(|| std::hint::black_box((0..1000u64).sum::<u64>()));
        assert!(b.ns_per_iter > 0.0);
        assert!(b.iters > 0);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("SF", "tau=0.8").label, "SF/tau=0.8");
        assert_eq!(BenchmarkId::from_parameter(0.8).label, "0.8");
    }

    #[test]
    fn groups_run_all_benches() {
        let mut c = Criterion {
            measure: Duration::from_millis(2),
        };
        let mut ran = 0;
        let mut group = c.benchmark_group("g");
        group
            .bench_function("a", |b| {
                b.iter(|| std::hint::black_box(1 + 1));
            })
            .bench_with_input(BenchmarkId::new("b", 3), &3, |b, &x| {
                b.iter(|| std::hint::black_box(x * 2));
            });
        ran += 2;
        group.finish();
        assert_eq!(ran, 2);
    }
}
