//! `setsim` — set similarity search over the lines of a file.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match setsim_cli::parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    // snapshot load/verify take no input file; every other command has one
    // (validated by parse_args).
    let lines: Vec<String> = match opts.input.as_ref() {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(c) => c
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty())
                .map(str::to_string)
                .collect(),
            Err(e) => {
                eprintln!("cannot read {path:?}: {e}");
                return ExitCode::from(1);
            }
        },
        None => Vec::new(),
    };
    match setsim_cli::run(&opts, &lines) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(1)
        }
    }
}
