//! `setsim` — set similarity search over the lines of a file.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match setsim_cli::parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let path = opts.input.as_ref().expect("validated by parse_args");
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot read {path:?}: {e}");
            return ExitCode::from(1);
        }
    };
    let lines: Vec<String> = content
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect();
    match setsim_cli::run(&opts, &lines) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(1)
        }
    }
}
