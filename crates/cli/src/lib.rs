//! Implementation of the `setsim` command-line tool.
//!
//! Subcommands:
//!
//! * `setsim-cli query  {-i FILE | -d DIR} -q TEXT [--tau T] [--algo NAME]
//!   [-n N]` — similarity selection against the lines of FILE, or against
//!   a mutable segment directory built by `ingest`.
//! * `setsim-cli ingest -d DIR [-i FILE] [--ops FILE]` — create or update
//!   a mutable segment directory: seed it from FILE (new directories
//!   only), then apply the mutation script in `--ops` (one op per line:
//!   `+ TEXT` insert, `- ID` delete, `~ ID TEXT` upsert) and persist the
//!   layered state.
//! * `setsim-cli compact -d DIR` — fold a segment directory's delta into
//!   a fresh base segment with exact recomputed idfs and persist it.
//! * `setsim-cli topk   -i FILE -q TEXT [-k K]` — top-k most similar lines.
//! * `setsim-cli join   -i FILE [--tau T] [--threads N]` — self-join: all
//!   similar line pairs (duplicate detection).
//! * `setsim-cli stats  -i FILE` — collection and index statistics.
//! * `setsim-cli bench  -i FILE [--tau T] [--algo NAME] [--threads N]
//!   [--repeat R]` — run every line as a query through the
//!   [`QueryEngine`] batch executor and print its serving metrics
//!   (latency percentiles, pruning power).
//! * `setsim-cli snapshot save   -i FILE -s SNAP` — build the index and
//!   persist it as a checksummed snapshot file.
//! * `setsim-cli snapshot load   -s SNAP [-q TEXT]` — cold-start a
//!   [`QueryEngine`] from a snapshot (no rebuild) and optionally serve a
//!   query from it.
//! * `setsim-cli snapshot verify -s SNAP` — check every page checksum and
//!   the logical consistency of a snapshot without serving from it;
//!   prints the page count and the minimum viable `--pool-pages`.
//! * `setsim-cli query -s SNAP --paged [--pool-pages N] -q TEXT` — serve
//!   the query demand-paged from the snapshot: footer-only open, posting
//!   pages faulted per query through a bounded buffer pool, bit-identical
//!   results to the full-load path (falls back to a full load if the
//!   paged open fails).
//! * `setsim-cli serve {-i FILE | -d DIR} [--addr HOST:PORT]
//!   [--inflight N]` — serve the index over TCP with the wire-stable
//!   protocol (`setsim-core::api`, DESIGN.md §14).
//! * `setsim-cli query --remote HOST:PORT -q TEXT [--tau T] [--algo NAME]`
//!   — run the query against a running `serve`/`setsim-server` instance
//!   through the typed protocol client instead of a local index.
//! * `setsim-cli shard -i FILE -d DIR [--shards N]` — partition the lines
//!   of FILE into N length-banded shards and persist them as a sharded
//!   index directory (one snapshot per shard plus a checksummed
//!   MANIFEST). `query -d DIR` auto-detects such a directory and serves
//!   it with the scatter-gather engine, skipping out-of-window shards.
//!
//! Lines are tokenized into padded 3-grams by default; `--words` switches
//! to word tokens, `--q N` changes the gram length.

use setsim_core::algorithms::selfjoin::par_self_join;
use setsim_core::algorithms::topk::topk_nra;
use setsim_core::{
    AlgorithmKind, CollectionBuilder, IndexOptions, MutableEngine, MutableIndex,
    MutableSearchRequest, PreparedQuery, QueryEngine, RecordId, Scratch, SearchCall, SearchRequest,
    SetCollection, SfAlgorithm, ShardedEngine, ShardedIndex, PROTOCOL_VERSION,
};
use setsim_server::{Client, ServerConfig, ServerHandle};
use setsim_tokenize::{QGramTokenizer, TokenizerSpec, WordTokenizer};
use std::fmt::Write as _;
use std::path::Path;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Subcommand: query | topk | join | stats | bench | snapshot-save |
    /// snapshot-load | snapshot-verify.
    pub command: String,
    /// Input file of newline-separated records.
    pub input: Option<String>,
    /// Snapshot file path (snapshot subcommands).
    pub snapshot: Option<String>,
    /// Mutable segment directory (ingest/compact, and query -d).
    pub dir: Option<String>,
    /// Mutation-script file for ingest (`+ TEXT` / `- ID` / `~ ID TEXT`).
    pub ops: Option<String>,
    /// Query text (query/topk).
    pub query: Option<String>,
    /// Threshold.
    pub tau: f64,
    /// Algorithm name.
    pub algo: String,
    /// Top-k k.
    pub k: usize,
    /// Max results to print.
    pub limit: usize,
    /// Join worker threads.
    pub threads: usize,
    /// Gram length (ignored with --words).
    pub q: usize,
    /// Bench: repetitions of the query workload.
    pub repeat: usize,
    /// Bench: emit metrics as one JSON object instead of the text table.
    pub json: bool,
    /// Tokenize into words instead of q-grams.
    pub words: bool,
    /// Query: address of a running server to query over TCP instead of
    /// building a local index.
    pub remote: Option<String>,
    /// Serve: bind address.
    pub addr: String,
    /// Serve: admission-control permit count (concurrent requests).
    pub inflight: usize,
    /// Shard: number of length bands to partition the corpus into.
    pub shards: usize,
    /// Query -s: serve the snapshot demand-paged (bounded buffer pool)
    /// instead of fully decoding it into heap first.
    pub paged: bool,
    /// Paged buffer pool capacity in pages.
    pub pool_pages: usize,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            command: String::new(),
            input: None,
            snapshot: None,
            dir: None,
            ops: None,
            query: None,
            tau: 0.7,
            algo: "sf".into(),
            k: 10,
            limit: 20,
            threads: 1,
            q: 3,
            repeat: 1,
            json: false,
            words: false,
            remote: None,
            addr: "127.0.0.1:7878".into(),
            inflight: 8,
            shards: 4,
            paged: false,
            pool_pages: 64,
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
setsim-cli — set similarity search over the lines of a file

USAGE:
  setsim-cli query {-i FILE | -d DIR} -q TEXT [--tau T] [--algo sf|hybrid|inra|ita|ta|nra|merge|scan] [-n N]
  setsim-cli query --remote HOST:PORT -q TEXT [--tau T] [--algo NAME] [-n N]
  setsim-cli query -s SNAP -q TEXT [--paged [--pool-pages N]] [--tau T] [--algo NAME] [-n N]
  setsim-cli serve {-i FILE | -d DIR} [--addr HOST:PORT] [--inflight N]
  setsim-cli ingest -d DIR [-i FILE] [--ops FILE]
  setsim-cli compact -d DIR
  setsim-cli shard -i FILE -d DIR [--shards N]
  setsim-cli topk  -i FILE -q TEXT [-k K]
  setsim-cli join  -i FILE [--tau T] [--threads N] [-n N]
  setsim-cli stats -i FILE
  setsim-cli bench -i FILE [--tau T] [--algo NAME] [--threads N] [--repeat R] [--json]
  setsim-cli snapshot save   -i FILE -s SNAP
  setsim-cli snapshot load   -s SNAP [-q TEXT] [--tau T] [--algo NAME] [-n N]
  setsim-cli snapshot verify -s SNAP

OPTIONS:
  -i, --input FILE   newline-separated records
  -s, --snapshot F   snapshot file (snapshot subcommands)
  -d, --dir DIR      mutable segment directory (ingest/compact/query)
      --ops FILE     mutation script: lines of '+ TEXT', '- ID', '~ ID TEXT'
  -q, --query TEXT   query string
      --tau T        similarity threshold in (0, 1] (default 0.7)
      --algo NAME    selection algorithm (default sf)
  -k K               top-k size (default 10)
  -n, --limit N      max results to print (default 20)
      --threads N    join/bench parallelism (default 1)
      --q N          gram length (default 3)
      --repeat R     bench workload repetitions (default 1)
      --json         bench: print serving metrics as one JSON object
      --words        word tokens instead of q-grams
      --remote ADDR  query: send the query to a running server instead of
                     building a local index
      --addr ADDR    serve: bind address (default 127.0.0.1:7878)
      --inflight N   serve: admission-control permit count (default 8)
      --shards N     shard: number of length bands (default 4)
      --paged        query -s: serve demand-paged (bounded buffer pool)
      --pool-pages N paged buffer pool capacity in pages (default 64)

bench runs every input line as a query through the engine's work-stealing
batch executor and prints the aggregated serving metrics.

snapshot save builds the index from FILE and persists it as a
page-structured, CRC-checksummed snapshot; load cold-starts a serving
engine from the snapshot without rebuilding; verify checks every page
checksum and the logical consistency of the file.

serve binds a TCP listener and answers the wire-stable binary protocol
(see DESIGN.md, \"Wire protocol\"); query --remote talks to such a
server through the same protocol, so scores match the local path
bit-for-bit.

ingest creates a mutable segment directory (seeded from FILE when new)
and applies the --ops mutation script to it; compact folds the delta
into a fresh base segment with exact recomputed idfs. query -d serves
from such a directory, delta and all. The directory's base.snap is an
ordinary snapshot: 'snapshot verify -s DIR/base.snap' checks it.

query -s serves straight from a snapshot file. With --paged the engine
decodes only the snapshot footer at open and faults posting pages per
query through a buffer pool of --pool-pages frames, so an index larger
than RAM serves with bounded resident memory and results bit-identical
to the full-load path; if the paged open fails the query falls back to
a full load automatically. 'snapshot verify' prints the page count and
the minimum viable pool size so operators can size --pool-pages.

shard partitions FILE into length-banded shards (one snapshot per band
plus a checksummed MANIFEST) so queries can skip whole shards outside
the Theorem 1 window [tau*len(q), len(q)/tau]. query -d DIR detects a
sharded directory by its MANIFEST magic and serves it with the
scatter-gather engine; results are bit-identical to an unsharded index.
";

/// Parse argv (without the program name).
pub fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    opts.command = it.next().cloned().ok_or_else(|| USAGE.to_string())?;
    if opts.command == "snapshot" {
        let sub = it
            .next()
            .ok_or_else(|| format!("snapshot requires save|load|verify\n{USAGE}"))?;
        if !matches!(sub.as_str(), "save" | "load" | "verify") {
            return Err(format!("unknown snapshot subcommand '{sub}'\n{USAGE}"));
        }
        opts.command = format!("snapshot-{sub}");
    } else if !matches!(
        opts.command.as_str(),
        "query" | "topk" | "join" | "stats" | "bench" | "ingest" | "compact" | "serve" | "shard"
    ) {
        return Err(format!("unknown command '{}'\n{USAGE}", opts.command));
    }
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "-i" | "--input" => opts.input = Some(value("--input")?),
            "-s" | "--snapshot" => opts.snapshot = Some(value("--snapshot")?),
            "-d" | "--dir" => opts.dir = Some(value("--dir")?),
            "--ops" => opts.ops = Some(value("--ops")?),
            "-q" | "--query" => opts.query = Some(value("--query")?),
            "--tau" => {
                opts.tau = value("--tau")?
                    .parse()
                    .map_err(|_| "--tau expects a number".to_string())?;
            }
            "--algo" => opts.algo = value("--algo")?,
            "-k" => {
                opts.k = value("-k")?
                    .parse()
                    .map_err(|_| "-k expects an integer".to_string())?;
            }
            "-n" | "--limit" => {
                opts.limit = value("--limit")?
                    .parse()
                    .map_err(|_| "--limit expects an integer".to_string())?;
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads expects an integer".to_string())?;
            }
            "--q" => {
                opts.q = value("--q")?
                    .parse()
                    .map_err(|_| "--q expects an integer".to_string())?;
            }
            "--repeat" => {
                opts.repeat = value("--repeat")?
                    .parse()
                    .map_err(|_| "--repeat expects an integer".to_string())?;
            }
            "--json" => opts.json = true,
            "--words" => opts.words = true,
            "--remote" => opts.remote = Some(value("--remote")?),
            "--addr" => opts.addr = value("--addr")?,
            "--inflight" => {
                opts.inflight = value("--inflight")?
                    .parse()
                    .map_err(|_| "--inflight expects an integer".to_string())?;
            }
            "--shards" => {
                opts.shards = value("--shards")?
                    .parse()
                    .map_err(|_| "--shards expects an integer".to_string())?;
            }
            "--paged" => opts.paged = true,
            "--pool-pages" => {
                opts.pool_pages = value("--pool-pages")?
                    .parse()
                    .map_err(|_| "--pool-pages expects an integer".to_string())?;
            }
            "-h" | "--help" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown option '{other}'\n{USAGE}")),
        }
    }
    if opts.remote.is_some() && opts.command != "query" {
        return Err("--remote only applies to query".to_string());
    }
    if opts.remote.is_some()
        && (opts.input.is_some() || opts.dir.is_some() || opts.snapshot.is_some())
    {
        return Err(
            "query --remote takes no --input, --dir, or --snapshot (the server owns the index)"
                .to_string(),
        );
    }
    if opts.paged && !(opts.command == "query" && opts.snapshot.is_some()) {
        return Err("--paged requires query -s SNAP".to_string());
    }
    if opts.pool_pages == 0 {
        return Err("--pool-pages must be at least 1".to_string());
    }
    if opts.command == "serve" {
        if opts.input.is_none() && opts.dir.is_none() {
            return Err("serve requires --input FILE or --dir DIR".to_string());
        }
        if opts.input.is_some() && opts.dir.is_some() {
            return Err("serve takes --input or --dir, not both".to_string());
        }
    }
    let needs_input = !(matches!(
        opts.command.as_str(),
        "snapshot-load" | "snapshot-verify" | "ingest" | "compact" | "serve"
    ) || (opts.command == "query"
        && (opts.dir.is_some() || opts.remote.is_some() || opts.snapshot.is_some())));
    if needs_input && opts.input.is_none() {
        return Err("missing --input FILE".to_string());
    }
    if opts.command.starts_with("snapshot-") && opts.snapshot.is_none() {
        return Err(format!("{} requires --snapshot FILE", opts.command));
    }
    if matches!(opts.command.as_str(), "ingest" | "compact" | "shard") && opts.dir.is_none() {
        return Err(format!("{} requires --dir DIR", opts.command));
    }
    if opts.command == "shard" && opts.shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    if opts.command == "query"
        && [
            opts.input.is_some(),
            opts.dir.is_some(),
            opts.snapshot.is_some(),
        ]
        .iter()
        .filter(|x| **x)
        .count()
            > 1
    {
        return Err("query takes one of --input, --dir, or --snapshot".to_string());
    }
    if matches!(opts.command.as_str(), "query" | "topk") && opts.query.is_none() {
        return Err(format!("{} requires --query TEXT", opts.command));
    }
    if !(opts.tau > 0.0 && opts.tau <= 1.0) {
        return Err("--tau must lie in (0, 1]".to_string());
    }
    Ok(opts)
}

/// Build the collection from record lines per the tokenizer options.
pub fn build_collection(lines: &[String], opts: &Options) -> SetCollection {
    let mut builder: CollectionBuilder = if opts.words {
        CollectionBuilder::new(WordTokenizer::new().with_lowercase())
    } else {
        CollectionBuilder::new(
            QGramTokenizer::new(opts.q)
                .with_padding('#')
                .with_lowercase(),
        )
    };
    for l in lines {
        builder.add(l);
    }
    builder.build()
}

fn algorithm(name: &str) -> Result<AlgorithmKind, String> {
    AlgorithmKind::parse(name).ok_or_else(|| format!("unknown algorithm '{name}'"))
}

/// Run a parsed command against record lines; returns printable output.
pub fn run(opts: &Options, lines: &[String]) -> Result<String, String> {
    let mut out = String::new();
    // Snapshot load/verify serve from the snapshot file alone — no input
    // records, no index rebuild.
    match opts.command.as_str() {
        "snapshot-load" => {
            let path = std::path::Path::new(opts.snapshot.as_ref().expect("validated"));
            let mut engine = QueryEngine::open(path).map_err(|e| e.to_string())?;
            writeln!(
                out,
                "loaded snapshot: {} record(s), {} list(s), {} posting(s)",
                engine.index().collection().len(),
                engine.index().num_lists(),
                engine.index().total_postings()
            )
            .unwrap();
            if let Some(text) = &opts.query {
                let kind = algorithm(&opts.algo)?;
                let q = engine.prepare_query_str(text);
                let outcome = engine
                    .search(SearchRequest::new(&q).tau(opts.tau).algorithm(kind))
                    .map_err(|e| e.to_string())?;
                let results = outcome.sorted_by_score();
                writeln!(out, "{} match(es) at tau={}:", results.len(), opts.tau).unwrap();
                for m in results.iter().take(opts.limit) {
                    let text = engine.index().collection().text(m.id).expect("valid id");
                    writeln!(out, "  {:5.3}  {text}", m.score).unwrap();
                }
            }
            return Ok(out);
        }
        "snapshot-verify" => {
            let path = std::path::Path::new(opts.snapshot.as_ref().expect("validated"));
            let s = setsim_core::snapshot::verify(path).map_err(|e| e.to_string())?;
            writeln!(
                out,
                "snapshot OK: {} page(s) of {} B, {} B total",
                s.pages, s.page_size, s.file_len
            )
            .unwrap();
            writeln!(
                out,
                "records: {}  tokens: {}  postings: {}",
                s.records, s.tokens, s.postings
            )
            .unwrap();
            writeln!(
                out,
                "paged serving: min pool {} page(s) (query -s --paged --pool-pages)",
                s.min_pool_pages
            )
            .unwrap();
            return Ok(out);
        }
        "query" => {
            return match (&opts.remote, &opts.snapshot) {
                (Some(addr), _) => run_remote_query(opts, addr),
                (None, Some(_)) => run_snapshot_query(opts),
                (None, None) => run_query(opts, lines),
            }
        }
        "serve" => return run_serve(opts, lines),
        "ingest" => return run_ingest(opts, lines),
        "compact" => return run_compact(opts),
        "shard" => return run_shard(opts, lines),
        _ => {}
    }
    // Static-index commands build through the segment layer and freeze
    // with into_base(): index construction lives in one place (the
    // segment module) and yields the same index as a direct build.
    let index = build_mutable(lines, opts)?.into_base();
    match opts.command.as_str() {
        "topk" => {
            let q = index.prepare_query_str(opts.query.as_ref().expect("validated"));
            let top = topk_nra(&index, &q, opts.k);
            writeln!(out, "top-{}:", opts.k).unwrap();
            for m in top.results.iter().take(opts.limit) {
                let text = index.collection().text(m.id).unwrap();
                writeln!(out, "  {:5.3}  {text}", m.score).unwrap();
            }
        }
        "join" => {
            let joined = par_self_join(&index, &SfAlgorithm::default(), opts.tau, opts.threads);
            writeln!(
                out,
                "{} similar pair(s) at tau={}:",
                joined.pairs.len(),
                opts.tau
            )
            .unwrap();
            for p in joined.pairs.iter().take(opts.limit) {
                writeln!(
                    out,
                    "  {:5.3}  '{}' ~ '{}'",
                    p.score,
                    index.collection().text(p.a).unwrap(),
                    index.collection().text(p.b).unwrap()
                )
                .unwrap();
            }
        }
        "bench" => {
            let kind = algorithm(&opts.algo)?;
            let engine = QueryEngine::new(index);
            let queries: Vec<PreparedQuery> =
                lines.iter().map(|l| engine.prepare_query_str(l)).collect();
            let reqs: Vec<SearchRequest<'_>> = std::iter::repeat_with(|| queries.iter())
                .take(opts.repeat.max(1))
                .flatten()
                .map(|q| SearchRequest::new(q).tau(opts.tau).algorithm(kind))
                .collect();
            let results = engine.search_batch(&reqs, opts.threads);
            let errors = results.iter().filter(|r| r.is_err()).count();
            if opts.json {
                // Machine-readable path: one JSON object, nothing else on
                // stdout, so the output pipes straight into jq or the
                // bench tooling.
                out.push_str(&engine.metrics().render_json());
                out.push('\n');
            } else {
                writeln!(
                    out,
                    "bench: {} queries ({} error(s)), algo {}, {} thread(s)",
                    reqs.len(),
                    errors,
                    kind.name(),
                    opts.threads.max(1)
                )
                .unwrap();
                out.push_str(&engine.metrics().render());
                out.push('\n');
            }
        }
        "snapshot-save" => {
            let path = std::path::Path::new(opts.snapshot.as_ref().expect("validated"));
            index.save(path).map_err(|e| e.to_string())?;
            let bytes = std::fs::metadata(path).map_err(|e| e.to_string())?.len();
            writeln!(
                out,
                "saved snapshot: {} record(s), {} posting(s), {bytes} B",
                index.collection().len(),
                index.total_postings()
            )
            .unwrap();
        }
        "stats" => {
            let (lists, skips, hash) = index.size_bytes();
            writeln!(out, "records:          {}", index.collection().len()).unwrap();
            writeln!(out, "distinct tokens:  {}", index.collection().dict().len()).unwrap();
            writeln!(out, "postings:         {}", index.total_postings()).unwrap();
            writeln!(out, "inverted lists:   {lists} bytes").unwrap();
            writeln!(out, "skip lists:       {skips} bytes").unwrap();
            writeln!(out, "hash indexes:     {hash} bytes").unwrap();
        }
        _ => unreachable!("validated in parse_args"),
    }
    Ok(out)
}

/// Build a mutable (delta/base) index over the record lines.
pub fn build_mutable(lines: &[String], opts: &Options) -> Result<MutableIndex, String> {
    let collection = build_collection(lines, opts);
    MutableIndex::from_collection(Box::new(collection), IndexOptions::default())
        .map_err(|e| e.to_string())
}

/// The tokenizer spec matching [`build_collection`]'s options, for the
/// streaming shard build (which tokenizes records one at a time without
/// materializing a collection first).
fn tokenizer_spec(opts: &Options) -> TokenizerSpec {
    if opts.words {
        TokenizerSpec::Word {
            lowercase: true,
            keep_digits: true,
        }
    } else {
        TokenizerSpec::QGram {
            q: opts.q,
            pad: Some('#'),
            lowercase: true,
        }
    }
}

/// Build a length-banded sharded index over the record lines and persist
/// it to `--dir`.
fn run_shard(opts: &Options, lines: &[String]) -> Result<String, String> {
    let dir = Path::new(opts.dir.as_ref().ok_or("shard requires --dir DIR")?);
    let sharded = ShardedIndex::build_streaming(
        &tokenizer_spec(opts),
        lines,
        opts.shards,
        IndexOptions::default(),
    );
    sharded.save(dir).map_err(|e| e.to_string())?;
    let mut out = String::new();
    writeln!(
        out,
        "sharded {} record(s) into {} length band(s):",
        sharded.num_records(),
        sharded.num_shards()
    )
    .unwrap();
    for (band, postings) in sharded.bands().iter().zip(sharded.shard_postings()) {
        writeln!(
            out,
            "  len [{:.3}, {:.3}]  {postings} posting(s)",
            band.min_len, band.max_len
        )
        .unwrap();
    }
    Ok(out)
}

/// Serve one query from a sharded index directory via the scatter-gather
/// engine. Results are bit-identical to the unsharded index; the summary
/// line reports how many shards the band table skipped.
fn run_sharded_query(opts: &Options, dir: &Path) -> Result<String, String> {
    let kind = algorithm(&opts.algo)?;
    let engine = ShardedEngine::open(dir).map_err(|e| e.to_string())?;
    let q = engine.prepare_query_str(opts.query.as_ref().ok_or("query requires --query TEXT")?);
    let outcome = engine
        .search(&SearchRequest::new(&q).tau(opts.tau).algorithm(kind))
        .map_err(|e| e.to_string())?;
    let shards_pruned = outcome.stats.shards_pruned;
    let results = outcome.sorted_by_score();
    let mut out = String::new();
    writeln!(
        out,
        "{} match(es) at tau={} ({} of {} shard(s) pruned):",
        results.len(),
        opts.tau,
        shards_pruned,
        engine.index().num_shards()
    )
    .unwrap();
    for m in results.iter().take(opts.limit) {
        let text = engine.index().text(m.id).unwrap_or("<missing>");
        writeln!(out, "  {:5.3}  [{}] {text}", m.score, m.id).unwrap();
    }
    Ok(out)
}

/// Serve one query straight from a snapshot file. With `--paged` the
/// demand-paged engine is tried first (footer-only open, pages faulted
/// per query through a `--pool-pages`-frame pool); if that open fails
/// the query falls back to a full heap load, so `--paged` can never
/// make a servable snapshot unservable. Results are bit-identical
/// either way; the paged path additionally reports page-fault counters.
fn run_snapshot_query(opts: &Options) -> Result<String, String> {
    let kind = algorithm(&opts.algo)?;
    let path = Path::new(opts.snapshot.as_ref().expect("validated"));
    let text = opts.query.as_ref().expect("validated");
    let mut out = String::new();
    if opts.paged {
        match QueryEngine::open_paged(path, opts.pool_pages) {
            Ok(mut engine) => {
                let q = engine.prepare_query_str(text);
                let outcome = engine
                    .search(SearchRequest::new(&q).tau(opts.tau).algorithm(kind))
                    .map_err(|e| e.to_string())?;
                writeln!(
                    out,
                    "paged snapshot: {} page(s), pool {} frame(s), {} resident",
                    engine.num_pages(),
                    engine.pool_pages(),
                    engine.resident_pages()
                )
                .unwrap();
                let (touched, hits, misses) = (
                    outcome.stats.pages_touched,
                    outcome.stats.page_cache_hits,
                    outcome.stats.page_cache_misses,
                );
                let results = outcome.sorted_by_score();
                writeln!(out, "{} match(es) at tau={}:", results.len(), opts.tau).unwrap();
                for m in results.iter().take(opts.limit) {
                    let text = engine.index().collection().text(m.id).expect("valid id");
                    writeln!(out, "  {:5.3}  {text}", m.score).unwrap();
                }
                writeln!(
                    out,
                    "pages touched: {touched} ({hits} hit(s), {misses} miss(es))"
                )
                .unwrap();
                return Ok(out);
            }
            Err(e) => {
                writeln!(out, "paged open failed ({e}); falling back to full load").unwrap();
            }
        }
    }
    let mut engine = QueryEngine::open(path).map_err(|e| e.to_string())?;
    let q = engine.prepare_query_str(text);
    let outcome = engine
        .search(SearchRequest::new(&q).tau(opts.tau).algorithm(kind))
        .map_err(|e| e.to_string())?;
    let results = outcome.sorted_by_score();
    writeln!(out, "{} match(es) at tau={}:", results.len(), opts.tau).unwrap();
    for m in results.iter().take(opts.limit) {
        let text = engine.index().collection().text(m.id).expect("valid id");
        writeln!(out, "  {:5.3}  {text}", m.score).unwrap();
    }
    Ok(out)
}

fn run_query(opts: &Options, lines: &[String]) -> Result<String, String> {
    // A --dir can hold either a sharded index or a mutable segment
    // directory; the MANIFEST magic says which without decoding either.
    if let Some(dir) = &opts.dir {
        if ShardedIndex::exists(Path::new(dir)) {
            return run_sharded_query(opts, Path::new(dir));
        }
    }
    let kind = algorithm(&opts.algo)?;
    let mi = match &opts.dir {
        Some(dir) => MutableIndex::open(Path::new(dir)).map_err(|e| e.to_string())?,
        None => build_mutable(lines, opts)?,
    };
    let q = mi.prepare_query_str(opts.query.as_ref().expect("validated"));
    let req = MutableSearchRequest::new(&q).tau(opts.tau).algorithm(kind);
    let outcome = mi
        .search(&mut Scratch::default(), &req)
        .map_err(|e| e.to_string())?;
    let results = outcome.sorted_by_score();
    let mut out = String::new();
    writeln!(out, "{} match(es) at tau={}:", results.len(), opts.tau).unwrap();
    for m in results.iter().take(opts.limit) {
        let text = mi.text(m.record).expect("result ids are live");
        writeln!(out, "  {:5.3}  [{}] {text}", m.score, m.record).unwrap();
    }
    Ok(out)
}

/// Run `query --remote`: send the query to a running server through the
/// typed protocol client. The server owns the index and does the
/// scoring, so output matches the local path bit-for-bit.
fn run_remote_query(opts: &Options, addr: &str) -> Result<String, String> {
    let kind = algorithm(&opts.algo)?;
    let mut client =
        Client::connect(addr).map_err(|e| format!("cannot reach server at {addr}: {e}"))?;
    let call = SearchCall::new(opts.query.clone().expect("validated"))
        .tau(opts.tau)
        .algorithm(kind)
        .with_texts();
    let reply = client.search(&call).map_err(|e| e.to_string())?;
    let mut matches = reply.matches;
    matches.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.record.cmp(&b.record)));
    let mut out = String::new();
    writeln!(
        out,
        "{} match(es) at tau={} (remote {addr}):",
        matches.len(),
        opts.tau
    )
    .unwrap();
    for m in matches.iter().take(opts.limit) {
        let text = m.text.as_deref().unwrap_or("<text not requested>");
        writeln!(out, "  {:5.3}  [r{}] {text}", m.score, m.record).unwrap();
    }
    if reply.status == setsim_core::SearchStatus::BudgetExceeded {
        writeln!(
            out,
            "  (budget exceeded: exact but possibly partial results)"
        )
        .unwrap();
    }
    Ok(out)
}

/// Bind the `serve` listener and start answering the wire protocol.
///
/// Split out of [`run`] so tests and embedders can serve on an
/// ephemeral port (`--addr 127.0.0.1:0`) and shut down cleanly via the
/// returned handle; the `serve` subcommand itself blocks forever.
pub fn start_server(opts: &Options, lines: &[String]) -> Result<ServerHandle, String> {
    let engine = match &opts.dir {
        Some(dir) => MutableEngine::open(Path::new(dir)).map_err(|e| e.to_string())?,
        None => MutableEngine::new(build_mutable(lines, opts)?),
    };
    let mut cfg = ServerConfig::default();
    cfg.addr.clone_from(&opts.addr);
    cfg.max_inflight = opts.inflight.max(1);
    ServerHandle::spawn(engine, cfg).map_err(|e| format!("cannot serve on {}: {e}", opts.addr))
}

fn run_serve(opts: &Options, lines: &[String]) -> Result<String, String> {
    let handle = start_server(opts, lines)?;
    let records = handle.engine().with_index(MutableIndex::live_len);
    println!(
        "serving {records} record(s) on {} (protocol v{PROTOCOL_VERSION}, {} permit(s))",
        handle.addr(),
        opts.inflight.max(1)
    );
    // Serve until killed. The handle's drain path is exercised by tests
    // and embedders; the CLI process has no portable signal story under
    // the std-only rules, so it parks forever.
    loop {
        std::thread::park();
    }
}

fn run_ingest(opts: &Options, lines: &[String]) -> Result<String, String> {
    let dir = Path::new(opts.dir.as_ref().expect("validated"));
    let opened = MutableIndex::exists(dir);
    if opened && opts.input.is_some() {
        return Err(format!(
            "segment directory {} already exists; --input only seeds new directories (use --ops to mutate this one)",
            dir.display()
        ));
    }
    let mut mi = if opened {
        MutableIndex::open(dir).map_err(|e| e.to_string())?
    } else {
        build_mutable(lines, opts)?
    };
    let (ins, del, ups) = match &opts.ops {
        Some(path) => {
            let script =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            apply_ops(&mut mi, &script)?
        }
        None => (0, 0, 0),
    };
    mi.save(dir).map_err(|e| e.to_string())?;
    let mut out = String::new();
    writeln!(
        out,
        "{} segment {}: {} live record(s)",
        if opened { "updated" } else { "created" },
        dir.display(),
        mi.live_len()
    )
    .unwrap();
    writeln!(out, "applied ops: +{ins} -{del} ~{ups}").unwrap();
    writeln!(
        out,
        "delta: {} record(s), idf drift {:.4}{}",
        mi.delta_footprint(),
        mi.drift_rel_err(),
        if mi.needs_compaction() {
            "  (compaction recommended)"
        } else {
            ""
        }
    )
    .unwrap();
    Ok(out)
}

fn run_compact(opts: &Options) -> Result<String, String> {
    let dir = Path::new(opts.dir.as_ref().expect("validated"));
    let mut mi = MutableIndex::open(dir).map_err(|e| e.to_string())?;
    let folded = mi.delta_footprint();
    let drift = mi.drift_rel_err();
    mi.compact();
    mi.save(dir).map_err(|e| e.to_string())?;
    let mut out = String::new();
    writeln!(
        out,
        "compacted {}: folded {folded} delta record(s) (idf drift {drift:.4}) into a fresh base of {} record(s)",
        dir.display(),
        mi.live_len()
    )
    .unwrap();
    Ok(out)
}

/// Apply a mutation script: one op per non-empty, non-`#` line —
/// `+ TEXT` inserts, `- ID` deletes, `~ ID TEXT` upserts. Ids accept the
/// printed form (`r7`) or a bare number. Returns (inserts, deletes,
/// upserts) applied; any malformed line or miss on a dead/unknown id is
/// an error naming the line.
pub fn apply_ops(mi: &mut MutableIndex, script: &str) -> Result<(usize, usize, usize), String> {
    let (mut ins, mut del, mut ups) = (0usize, 0usize, 0usize);
    for (lineno, raw) in script.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let n = lineno + 1;
        let (op, rest) = line.split_at(1);
        let rest = rest.trim_start();
        match op {
            "+" => {
                if rest.is_empty() {
                    return Err(format!("ops line {n}: '+' needs record text"));
                }
                mi.insert(rest);
                ins += 1;
            }
            "-" => {
                let id = parse_record_id(rest)
                    .ok_or_else(|| format!("ops line {n}: '-' needs a record id, got '{rest}'"))?;
                if !mi.delete(id) {
                    return Err(format!("ops line {n}: no live record {id}"));
                }
                del += 1;
            }
            "~" => {
                let (id_text, text) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| format!("ops line {n}: '~' needs ID TEXT"))?;
                let id = parse_record_id(id_text)
                    .ok_or_else(|| format!("ops line {n}: bad record id '{id_text}'"))?;
                if !mi.upsert(id, text.trim_start()) {
                    return Err(format!("ops line {n}: no live record {id}"));
                }
                ups += 1;
            }
            _ => {
                return Err(format!(
                    "ops line {n}: expected '+', '-' or '~', got '{op}'"
                ))
            }
        }
    }
    Ok((ins, del, ups))
}

fn parse_record_id(s: &str) -> Option<RecordId> {
    let s = s.trim();
    let digits = s.strip_prefix('r').unwrap_or(s);
    digits.parse().ok().map(RecordId)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parse_query_command() {
        let o = parse_args(&argv(
            "query -i f.txt -q hello --tau 0.5 --algo hybrid -n 5",
        ))
        .unwrap();
        assert_eq!(o.command, "query");
        assert_eq!(o.input.as_deref(), Some("f.txt"));
        assert_eq!(o.query.as_deref(), Some("hello"));
        assert_eq!(o.tau, 0.5);
        assert_eq!(o.algo, "hybrid");
        assert_eq!(o.limit, 5);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse_args(&argv("frobnicate -i f.txt")).is_err());
        assert!(
            parse_args(&argv("query -i f.txt")).is_err(),
            "missing query"
        );
        assert!(parse_args(&argv("query -q x")).is_err(), "missing input");
        assert!(parse_args(&argv("query -i f -q x --tau 1.5")).is_err());
        assert!(parse_args(&argv("query -i f -q x --tau")).is_err());
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn parse_defaults() {
        let o = parse_args(&argv("stats -i data.txt")).unwrap();
        assert_eq!(o.tau, 0.7);
        assert_eq!(o.algo, "sf");
        assert_eq!(o.q, 3);
        assert!(!o.words);
    }

    fn lines() -> Vec<String> {
        ["main street", "main st", "maine street", "park avenue"]
            .iter()
            .map(|s| (*s).to_string())
            .collect()
    }

    #[test]
    fn parse_shard_command() {
        let o = parse_args(&argv("shard -i f.txt -d out.shards --shards 6")).unwrap();
        assert_eq!(o.command, "shard");
        assert_eq!(o.input.as_deref(), Some("f.txt"));
        assert_eq!(o.dir.as_deref(), Some("out.shards"));
        assert_eq!(o.shards, 6);
        let o = parse_args(&argv("shard -i f.txt -d out.shards")).unwrap();
        assert_eq!(o.shards, 4, "default shard count");
        assert!(parse_args(&argv("shard -i f.txt")).is_err(), "missing dir");
        assert!(parse_args(&argv("shard -d out")).is_err(), "missing input");
        assert!(
            parse_args(&argv("shard -i f.txt -d out --shards 0")).is_err(),
            "zero shards"
        );
    }

    #[test]
    fn shard_build_and_query_end_to_end() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "setsim-cli-shards-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let dir_s = dir.to_string_lossy().into_owned();

        let o = parse_args(&argv(&format!("shard -i x -d {dir_s} --shards 3"))).unwrap();
        let out = run(&o, &lines()).unwrap();
        assert!(out.contains("sharded 4 record(s)"), "{out}");

        // query -d auto-detects the sharded layout by MANIFEST magic.
        let mut q = parse_args(&argv(&format!("query -d {dir_s} -q y --tau 0.4"))).unwrap();
        q.query = Some("main street".into());
        let out = run(&q, &[]).unwrap();
        assert!(out.contains("main street"), "{out}");
        assert!(out.contains("1.000"), "{out}");
        assert!(out.contains("shard(s) pruned"), "{out}");

        // The sharded answer matches the plain in-memory index answer
        // (scores formatted to 3 decimals; exact bits are covered by the
        // core equivalence suite).
        let mut plain = parse_args(&argv("query -i x -q y --tau 0.4")).unwrap();
        plain.query = Some("main street".into());
        let plain_out = run(&plain, &lines()).unwrap();
        let scores = |s: &str| {
            let mut v: Vec<String> = s
                .lines()
                .skip(1)
                .filter_map(|l| l.split_whitespace().next().map(str::to_string))
                .collect();
            v.sort();
            v
        };
        assert_eq!(scores(&out), scores(&plain_out), "{out}\n{plain_out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_serve_and_remote() {
        let o = parse_args(&argv("serve -i f.txt --addr 0.0.0.0:9000 --inflight 4")).unwrap();
        assert_eq!(o.command, "serve");
        assert_eq!(o.addr, "0.0.0.0:9000");
        assert_eq!(o.inflight, 4);
        let o = parse_args(&argv("query --remote 127.0.0.1:7878 -q hello")).unwrap();
        assert_eq!(o.remote.as_deref(), Some("127.0.0.1:7878"));
        assert!(o.input.is_none(), "remote query needs no input");

        assert!(parse_args(&argv("serve")).is_err(), "serve needs a source");
        assert!(
            parse_args(&argv("serve -i f -d d")).is_err(),
            "not both sources"
        );
        assert!(
            parse_args(&argv("query --remote a:1 -i f -q x")).is_err(),
            "remote excludes local sources"
        );
        assert!(
            parse_args(&argv("stats -i f --remote a:1")).is_err(),
            "--remote is query-only"
        );
        assert!(
            parse_args(&argv("query --remote a:1")).is_err(),
            "remote query still needs -q"
        );
    }

    /// Round-trip smoke test for the serving tier: start a server on an
    /// ephemeral port via the same path `serve` uses, then drive
    /// `query --remote` through `run()` and compare against the local
    /// query output record-for-record.
    #[test]
    fn remote_query_round_trip() {
        let corpus = lines();
        let mut serve_opts = parse_args(&argv("serve -i x --addr 127.0.0.1:0")).unwrap();
        serve_opts.input = Some("unused".into());
        let handle = start_server(&serve_opts, &corpus).unwrap();

        let mut local = parse_args(&argv("query -i x -q y --tau 0.4")).unwrap();
        local.query = Some("main street".into());
        let local_out = run(&local, &corpus).unwrap();

        let mut remote = parse_args(&argv(&format!(
            "query --remote {} -q y --tau 0.4",
            handle.addr()
        )))
        .unwrap();
        remote.query = Some("main street".into());
        let remote_out = run(&remote, &[]).unwrap();

        // Same matches, same scores, same ids: everything after the
        // header line must agree with the local path.
        let tail = |s: &str| s.lines().skip(1).map(str::to_string).collect::<Vec<_>>();
        assert_eq!(
            tail(&local_out),
            tail(&remote_out),
            "{local_out}\n{remote_out}"
        );
        assert!(remote_out.contains("main street"), "{remote_out}");

        let report = handle.shutdown();
        assert_eq!(report.shed, 0, "smoke load must not shed");
    }

    #[test]
    fn query_end_to_end() {
        let o = parse_args(&argv("query -i x -q main_street --tau 0.4")).unwrap();
        let mut o = o;
        o.query = Some("main street".into());
        let out = run(&o, &lines()).unwrap();
        assert!(out.contains("main street"), "{out}");
        assert!(out.contains("1.000"), "{out}");
    }

    #[test]
    fn every_algorithm_name_resolves() {
        for name in ["sf", "hybrid", "inra", "ita", "ta", "nra", "merge", "scan"] {
            let mut o = parse_args(&argv("query -i x -q y")).unwrap();
            o.algo = name.into();
            o.query = Some("main street".into());
            assert!(run(&o, &lines()).is_ok(), "{name}");
        }
        assert!(algorithm("bogus").is_err());
    }

    #[test]
    fn topk_end_to_end() {
        let mut o = parse_args(&argv("topk -i x -q y -k 2")).unwrap();
        o.query = Some("main".into());
        let out = run(&o, &lines()).unwrap();
        assert!(out.starts_with("top-2"), "{out}");
    }

    #[test]
    fn join_end_to_end() {
        let o = parse_args(&argv("join -i x --tau 0.5 --threads 2")).unwrap();
        let out = run(&o, &lines()).unwrap();
        assert!(out.contains("pair"), "{out}");
    }

    #[test]
    fn bench_end_to_end() {
        let o = parse_args(&argv("bench -i x --tau 0.5 --threads 2 --repeat 3")).unwrap();
        let out = run(&o, &lines()).unwrap();
        assert!(out.contains("bench: 12 queries (0 error(s))"), "{out}");
        assert!(out.contains("p50"), "{out}");
        assert!(out.contains("pruning"), "{out}");
    }

    #[test]
    fn bench_json_is_one_json_object() {
        let o = parse_args(&argv("bench -i x --tau 0.5 --repeat 2 --json")).unwrap();
        assert!(o.json);
        let out = run(&o, &lines()).unwrap();
        let trimmed = out.trim();
        assert!(trimmed.starts_with('{') && trimmed.ends_with('}'), "{out}");
        assert!(trimmed.contains("\"queries\":8"), "{out}");
        assert!(trimmed.contains("\"p50\""), "{out}");
        assert!(
            !trimmed.contains("bench:"),
            "no text preamble in JSON mode: {out}"
        );
    }

    #[test]
    fn stats_end_to_end() {
        let o = parse_args(&argv("stats -i x")).unwrap();
        let out = run(&o, &lines()).unwrap();
        assert!(out.contains("records:          4"), "{out}");
    }

    fn temp_snap(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("setsim-cli-{}-{tag}-{n}.snap", std::process::id()))
    }

    struct TempFile(std::path::PathBuf);
    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn parse_snapshot_commands() {
        let o = parse_args(&argv("snapshot save -i f.txt -s idx.snap")).unwrap();
        assert_eq!(o.command, "snapshot-save");
        assert_eq!(o.snapshot.as_deref(), Some("idx.snap"));
        let o = parse_args(&argv("snapshot load -s idx.snap")).unwrap();
        assert_eq!(o.command, "snapshot-load");
        assert!(o.input.is_none(), "load needs no input file");
        let o = parse_args(&argv("snapshot verify -s idx.snap")).unwrap();
        assert_eq!(o.command, "snapshot-verify");

        assert!(parse_args(&argv("snapshot")).is_err(), "missing subcommand");
        assert!(parse_args(&argv("snapshot frob -s x")).is_err());
        assert!(
            parse_args(&argv("snapshot save -i f.txt")).is_err(),
            "missing snapshot path"
        );
        assert!(
            parse_args(&argv("snapshot save -s x")).is_err(),
            "save still needs input"
        );
    }

    #[test]
    fn parse_paged_query() {
        let o = parse_args(&argv("query -s idx.snap -q hello --paged --pool-pages 8")).unwrap();
        assert_eq!(o.command, "query");
        assert_eq!(o.snapshot.as_deref(), Some("idx.snap"));
        assert!(o.paged);
        assert_eq!(o.pool_pages, 8);
        assert!(o.input.is_none(), "snapshot query needs no input");

        let o = parse_args(&argv("query -s idx.snap -q hello")).unwrap();
        assert!(!o.paged, "paged is opt-in");
        assert_eq!(o.pool_pages, 64, "default pool size");

        assert!(
            parse_args(&argv("query -i f.txt -q x --paged")).is_err(),
            "--paged requires -s"
        );
        assert!(
            parse_args(&argv("stats -i f.txt --paged")).is_err(),
            "--paged is query-only"
        );
        assert!(
            parse_args(&argv("query -s a.snap -i f.txt -q x")).is_err(),
            "one source only"
        );
        assert!(
            parse_args(&argv("query -s a.snap -d seg -q x")).is_err(),
            "one source only"
        );
        assert!(
            parse_args(&argv("query --remote a:1 -s a.snap -q x")).is_err(),
            "remote excludes snapshot"
        );
        assert!(
            parse_args(&argv("query -s a.snap -q x --paged --pool-pages 0")).is_err(),
            "zero pool frames"
        );
    }

    #[test]
    fn paged_query_end_to_end_matches_full_load() {
        let t = TempFile(temp_snap("paged"));
        let snap = t.0.to_string_lossy().into_owned();
        let o = parse_args(&argv(&format!("snapshot save -i x -s {snap}"))).unwrap();
        run(&o, &lines()).unwrap();

        // Verify reports how to size the pool.
        let o = parse_args(&argv(&format!("snapshot verify -s {snap}"))).unwrap();
        let out = run(&o, &[]).unwrap();
        assert!(out.contains("min pool"), "{out}");

        // Full-load serving from the snapshot.
        let mut o = parse_args(&argv(&format!("query -s {snap} -q y --tau 0.4"))).unwrap();
        o.query = Some("main street".into());
        let full_out = run(&o, &[]).unwrap();
        assert!(full_out.contains("main street"), "{full_out}");
        assert!(full_out.contains("1.000"), "{full_out}");

        // Demand-paged serving with a deliberately tiny pool must report
        // its fault counters and agree match-for-match.
        let mut o = parse_args(&argv(&format!(
            "query -s {snap} -q y --tau 0.4 --paged --pool-pages 1"
        )))
        .unwrap();
        o.query = Some("main street".into());
        let paged_out = run(&o, &[]).unwrap();
        assert!(paged_out.contains("paged snapshot:"), "{paged_out}");
        assert!(paged_out.contains("pages touched:"), "{paged_out}");
        let matches = |s: &str| {
            s.lines()
                .filter(|l| l.starts_with("  "))
                .map(str::to_string)
                .collect::<Vec<_>>()
        };
        assert_eq!(matches(&full_out), matches(&paged_out), "{paged_out}");
    }

    #[test]
    fn snapshot_save_load_verify_end_to_end() {
        let t = TempFile(temp_snap("e2e"));
        let snap = t.0.to_string_lossy().into_owned();

        let o = parse_args(&argv(&format!("snapshot save -i x -s {snap}"))).unwrap();
        let out = run(&o, &lines()).unwrap();
        assert!(out.contains("saved snapshot: 4 record(s)"), "{out}");

        let o = parse_args(&argv(&format!("snapshot verify -s {snap}"))).unwrap();
        let out = run(&o, &[]).unwrap();
        assert!(out.contains("snapshot OK"), "{out}");
        assert!(out.contains("records: 4"), "{out}");

        let mut o = parse_args(&argv(&format!("snapshot load -s {snap} --tau 0.4"))).unwrap();
        o.query = Some("main street".into());
        let out = run(&o, &[]).unwrap();
        assert!(out.contains("loaded snapshot: 4 record(s)"), "{out}");
        assert!(out.contains("main street"), "{out}");
        assert!(out.contains("1.000"), "{out}");
    }

    #[test]
    fn snapshot_verify_rejects_damage_without_panicking() {
        let t = TempFile(temp_snap("damage"));
        let snap = t.0.to_string_lossy().into_owned();
        let o = parse_args(&argv(&format!("snapshot save -i x -s {snap}"))).unwrap();
        run(&o, &lines()).unwrap();

        let mut bytes = std::fs::read(&t.0).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&t.0, &bytes).unwrap();

        let o = parse_args(&argv(&format!("snapshot verify -s {snap}"))).unwrap();
        let err = run(&o, &[]).unwrap_err();
        assert!(err.contains("checksum") || err.contains("corrupt"), "{err}");
        let o = parse_args(&argv(&format!("snapshot load -s {snap}"))).unwrap();
        assert!(run(&o, &[]).is_err(), "damaged snapshot must not serve");
    }

    struct TempSegDir(std::path::PathBuf);
    impl TempSegDir {
        fn new(tag: &str) -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            Self(
                std::env::temp_dir()
                    .join(format!("setsim-cli-seg-{}-{tag}-{n}", std::process::id())),
            )
        }
        fn arg(&self) -> String {
            self.0.to_string_lossy().into_owned()
        }
    }
    impl Drop for TempSegDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn parse_ingest_and_compact_commands() {
        let o = parse_args(&argv("ingest -d seg -i f.txt --ops ops.txt")).unwrap();
        assert_eq!(o.command, "ingest");
        assert_eq!(o.dir.as_deref(), Some("seg"));
        assert_eq!(o.ops.as_deref(), Some("ops.txt"));
        let o = parse_args(&argv("ingest -d seg")).unwrap();
        assert!(o.input.is_none(), "ingest can open an existing directory");
        let o = parse_args(&argv("compact -d seg")).unwrap();
        assert_eq!(o.command, "compact");

        assert!(parse_args(&argv("ingest -i f.txt")).is_err(), "needs --dir");
        assert!(parse_args(&argv("compact")).is_err(), "needs --dir");
        let o = parse_args(&argv("query -d seg -q x")).unwrap();
        assert_eq!(o.dir.as_deref(), Some("seg"));
        assert!(
            parse_args(&argv("query -d seg -i f.txt -q x")).is_err(),
            "query takes --input or --dir, not both"
        );
    }

    #[test]
    fn ingest_compact_verify_round_trip() {
        let dir = TempSegDir::new("roundtrip");
        let ops_file = TempFile(temp_snap("ops"));
        std::fs::write(
            &ops_file.0,
            "# grow, shrink, rewrite\n+ ocean drive\n- r1\n~ r0 main street north\n",
        )
        .unwrap();

        // Seed from lines and mutate in one ingest.
        let mut o = parse_args(&argv(&format!("ingest -i x -d {}", dir.arg()))).unwrap();
        o.ops = Some(ops_file.0.to_string_lossy().into_owned());
        let out = run(&o, &lines()).unwrap();
        assert!(out.contains("created segment"), "{out}");
        assert!(out.contains("4 live record(s)"), "{out}");
        assert!(out.contains("applied ops: +1 -1 ~1"), "{out}");

        // Query the layered directory: upserted text is served, deleted
        // record is gone.
        let mut o = parse_args(&argv(&format!("query -d {} -q x --tau 0.4", dir.arg()))).unwrap();
        o.query = Some("main street north".into());
        let out = run(&o, &[]).unwrap();
        assert!(out.contains("main street north"), "{out}");
        let mut o = parse_args(&argv(&format!("query -d {} -q x --tau 0.9", dir.arg()))).unwrap();
        o.query = Some("main st".into());
        let out = run(&o, &[]).unwrap();
        assert!(!out.contains("main st\n"), "deleted record served: {out}");

        // Compact, then verify the fresh base with the snapshot tooling.
        let o = parse_args(&argv(&format!("compact -d {}", dir.arg()))).unwrap();
        let out = run(&o, &[]).unwrap();
        assert!(out.contains("compacted"), "{out}");
        assert!(out.contains("4 record(s)"), "{out}");
        let base = dir.0.join("base.snap");
        let o = parse_args(&argv(&format!("snapshot verify -s {}", base.display()))).unwrap();
        let out = run(&o, &[]).unwrap();
        assert!(out.contains("snapshot OK"), "{out}");
        assert!(out.contains("records: 4"), "{out}");

        // A second ingest opens the existing directory; re-seeding it
        // with --input is refused.
        let o = parse_args(&argv(&format!("ingest -d {}", dir.arg()))).unwrap();
        let out = run(&o, &[]).unwrap();
        assert!(out.contains("updated segment"), "{out}");
        let o = parse_args(&argv(&format!("ingest -i x -d {}", dir.arg()))).unwrap();
        assert!(run(&o, &lines()).is_err(), "re-seeding must be refused");
    }

    #[test]
    fn ingest_rejects_malformed_ops() {
        let mut mi = build_mutable(&lines(), &Options::default()).unwrap();
        assert!(apply_ops(&mut mi, "+ ok\n? bogus").is_err());
        assert!(apply_ops(&mut mi, "- r99").is_err(), "dead id is an error");
        assert!(apply_ops(&mut mi, "~ r0").is_err(), "upsert needs text");
        assert!(apply_ops(&mut mi, "+").is_err(), "insert needs text");
        let err = apply_ops(&mut mi, "+ fine\n- nonsense").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        // Counts reflect only applied ops; comments and blanks are free.
        let (i, d, u) =
            apply_ops(&mut mi, "# nothing\n\n+ park lane\n- 0\n~ 1 main str\n").unwrap();
        assert_eq!((i, d, u), (1, 1, 1));
    }

    #[test]
    fn query_from_empty_seeded_ingest() {
        // ingest with no --input seeds an empty base; every record then
        // lives in the delta and queries still serve.
        let dir = TempSegDir::new("empty");
        let ops_file = TempFile(temp_snap("emptyops"));
        std::fs::write(&ops_file.0, "+ main street\n+ park avenue\n").unwrap();
        let mut o = parse_args(&argv(&format!("ingest -d {}", dir.arg()))).unwrap();
        o.ops = Some(ops_file.0.to_string_lossy().into_owned());
        let out = run(&o, &[]).unwrap();
        assert!(out.contains("2 live record(s)"), "{out}");
        let mut o = parse_args(&argv(&format!("query -d {} -q x --tau 0.8", dir.arg()))).unwrap();
        o.query = Some("main street".into());
        let out = run(&o, &[]).unwrap();
        assert!(out.contains("main street"), "{out}");
        assert!(out.contains("1.000"), "{out}");
    }

    #[test]
    fn words_mode() {
        let mut o = parse_args(&argv("query -i x -q y --words --tau 0.3")).unwrap();
        o.query = Some("main street".into());
        let out = run(&o, &lines()).unwrap();
        assert!(out.contains("main street"), "{out}");
    }
}
