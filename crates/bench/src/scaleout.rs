//! The scale-out benchmark behind `setsim-bench scaleout` — the
//! ≥10M-record `large` cell of the CI `scale-out` job.
//!
//! The corpus is the word-occurrence view at serving scale: one word per
//! record, streamed straight from [`setsim_datagen::RecordStream`] into
//! [`ShardedIndex::build_streaming`], so the generator never holds the
//! corpus as a `Vec<String>` — the only resident copies are the ones the
//! shard sub-collections own. With `--dir`, the built index is persisted
//! as a sharded snapshot directory and reopened on the next run (the CI
//! job caches that directory by seed+records, so the multi-minute build
//! is paid once per cache key).
//!
//! Two checks ride on top of the [`BenchReport`] this writes:
//!
//! * **Majority pruning** — for each τ in the grid, the fraction of
//!   (query, shard) visits the Theorem 1 band check pruned is recorded;
//!   `--expect-majority-pruned` turns "τ = 0.8 prunes most shards" into
//!   an exit code.
//! * **Equivalence** — a prefix of the same record stream (so the small
//!   corpus is literally the head of the large one) is indexed both
//!   sharded and unsharded, and every roster algorithm must return
//!   bit-identical results across the τ grid.

use crate::report::{
    AlgoReport, BenchReport, CounterSection, EnvFingerprint, LatencySection, WorkloadReport,
    SCHEMA_VERSION,
};
use setsim_core::{
    engine, AlgorithmKind, CollectionBuilder, IndexOptions, InvertedIndex, Scratch, SearchRequest,
    SearchStats, ShardedEngine, ShardedIndex,
};
use setsim_datagen::{CorpusConfig, RecordStream};
use setsim_tokenize::{QGramTokenizer, TokenizerSpec};
use std::path::PathBuf;
use std::time::Instant;

/// Parameters of one scale-out run.
#[derive(Debug, Clone)]
pub struct ScaleoutConfig {
    /// Records in the large cell (default 10M — the north-star scale).
    pub records: usize,
    /// Length-banded shards (upper bound; degenerate bands collapse).
    pub shards: usize,
    /// Master seed: corpus, queries, and equivalence prefix derive from it.
    pub seed: u64,
    /// Queries per τ cell.
    pub queries: usize,
    /// Threshold grid.
    pub taus: Vec<f64>,
    /// Sharded-snapshot cache directory: reopened if it already holds a
    /// matching index, written after a fresh build.
    pub dir: Option<PathBuf>,
    /// Records in the sharded-vs-unsharded equivalence prefix; 0 skips
    /// the check (the full differential lives in `shard_equivalence.rs`).
    pub equivalence_records: usize,
    /// Report label — the file becomes `BENCH_<label>.json`.
    pub label: String,
}

impl Default for ScaleoutConfig {
    fn default() -> Self {
        Self {
            records: 10_000_000,
            shards: 32,
            seed: 42,
            queries: 64,
            taus: vec![0.5, 0.8, 0.95],
            dir: None,
            equivalence_records: 20_000,
            label: "scaleout".to_string(),
        }
    }
}

/// The scale-out corpus: single-word records (the paper's
/// word-occurrence view) whose 3–18-character spread produces the length
/// histogram the band planner cuts. Deterministic in (records, seed).
#[must_use]
pub fn corpus_config(records: usize, seed: u64) -> CorpusConfig {
    CorpusConfig {
        num_records: records,
        // Vocabulary scales with the corpus but stays bounded: it is the
        // only part of the generator held in memory.
        vocab_size: (records / 50).clamp(1_000, 200_000),
        words_per_record: (1, 1),
        word_len: (3, 18),
        zipf_s: 1.0,
        seed,
    }
}

fn qgram_spec() -> TokenizerSpec {
    TokenizerSpec::QGram {
        q: 3,
        pad: Some('#'),
        lowercase: true,
    }
}

/// What one run produced, beyond the report file.
#[derive(Debug)]
pub struct ScaleoutOutcome {
    /// The report (one workload per τ).
    pub report: BenchReport,
    /// Shards the built/opened index actually has (≤ configured).
    pub num_shards: usize,
    /// Records the index covers.
    pub num_records: usize,
    /// Per τ: fraction of (query, shard) visits pruned whole by the band
    /// check, in `taus` order.
    pub pruned_fraction: Vec<(f64, f64)>,
    /// Whether the sharded-vs-unsharded equivalence prefix was checked.
    pub equivalence_checked: bool,
    /// Whether the index was reopened from `dir` instead of built.
    pub opened_from_cache: bool,
}

/// Run the scale-out cell. `Err` is a human-readable failure: snapshot
/// corruption, a stale cache directory, or an equivalence mismatch.
pub fn run(cfg: &ScaleoutConfig) -> Result<ScaleoutOutcome, String> {
    let (index, opened_from_cache) = acquire_index(cfg)?;
    if index.num_records() != cfg.records {
        return Err(format!(
            "cache directory holds {} records but --records is {} — stale cache key",
            index.num_records(),
            cfg.records
        ));
    }
    let num_shards = index.num_shards();
    let num_records = index.num_records();

    // Queries come from a *distinct* stream over the same vocabulary
    // model: same word distribution as the corpus, different draws.
    let query_texts: Vec<String> = RecordStream::new(&corpus_config(
        cfg.queries.max(1),
        cfg.seed ^ 0x0071_7565_7279,
    ))
    .collect();

    let equivalence_checked = if cfg.equivalence_records > 0 {
        check_equivalence(cfg)?;
        true
    } else {
        false
    };

    let engine = ShardedEngine::new(index);
    let mut workloads = Vec::with_capacity(cfg.taus.len());
    let mut pruned_fraction = Vec::with_capacity(cfg.taus.len());
    for &tau in &cfg.taus {
        let mut stats = SearchStats::default();
        let mut matches = 0u64;
        let start = Instant::now();
        for text in &query_texts {
            let q = engine.prepare_query_str(text);
            let req = SearchRequest::new(&q).tau(tau).algorithm(AlgorithmKind::Sf);
            let out = engine
                .search(&req)
                .map_err(|e| format!("scaleout query failed at tau={tau}: {e}"))?;
            matches += out.results.len() as u64;
            stats.merge(&out.stats);
        }
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        // lint: allow — query and shard counts well below 2^53.
        let visits = (query_texts.len() * num_shards) as f64;
        // lint: allow — counter below 2^53.
        let fraction = if visits > 0.0 {
            stats.shards_pruned as f64 / visits
        } else {
            0.0
        };
        pruned_fraction.push((tau, fraction));
        workloads.push(WorkloadReport {
            label: format!("scaleout tau={tau} shards={num_shards}"),
            tau,
            queries: query_texts.len() as u64,
            algos: vec![AlgoReport {
                name: "SF".to_string(),
                counters: CounterSection::from_stats(&stats, query_texts.len() as u64, matches),
                latency: LatencySection::from_samples(&[
                    // lint: allow — query count below 2^53.
                    elapsed_ms / query_texts.len().max(1) as f64,
                ]),
            }],
        });
    }

    let report = BenchReport {
        schema_version: SCHEMA_VERSION,
        label: cfg.label.clone(),
        scale: "scaleout".to_string(),
        seed: cfg.seed,
        warmup: 0,
        reps: 1,
        env: EnvFingerprint::capture(),
        workloads,
    };
    Ok(ScaleoutOutcome {
        report,
        num_shards,
        num_records,
        pruned_fraction,
        equivalence_checked,
        opened_from_cache,
    })
}

/// Reopen the sharded index from the cache directory when possible,
/// otherwise stream-build it (and persist it if a directory was given).
fn acquire_index(cfg: &ScaleoutConfig) -> Result<(ShardedIndex, bool), String> {
    if let Some(dir) = &cfg.dir {
        if ShardedIndex::exists(dir) {
            let index = ShardedIndex::open(dir)
                .map_err(|e| format!("could not reopen {}: {e}", dir.display()))?;
            return Ok((index, true));
        }
    }
    let stream = RecordStream::new(&corpus_config(cfg.records, cfg.seed));
    let index =
        ShardedIndex::build_streaming(&qgram_spec(), stream, cfg.shards, IndexOptions::default());
    if let Some(dir) = &cfg.dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        index
            .save(dir)
            .map_err(|e| format!("could not persist to {}: {e}", dir.display()))?;
    }
    Ok((index, false))
}

/// Sharded vs unsharded differential over a prefix of the large stream:
/// every roster algorithm, every τ of the grid, bit-identical (id,
/// score-bits) sets.
fn check_equivalence(cfg: &ScaleoutConfig) -> Result<(), String> {
    let prefix: Vec<String> = RecordStream::new(&corpus_config(cfg.records, cfg.seed))
        .take(cfg.equivalence_records)
        .collect();
    let mut builder = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    for t in &prefix {
        builder.add(t);
    }
    let collection = builder.build();
    let baseline = InvertedIndex::build(&collection, IndexOptions::default());
    let sharded = ShardedIndex::build(&collection, cfg.shards, IndexOptions::default())
        .map_err(|e| format!("equivalence shard build: {e}"))?;

    let query_texts: Vec<String> = RecordStream::new(&corpus_config(
        cfg.queries.clamp(1, 16),
        cfg.seed ^ 0x0071_7565_7279,
    ))
    .collect();
    let mut scratch = Scratch::default();
    for text in &query_texts {
        let bq = baseline.prepare_query_str(text);
        let sq = sharded.prepare_query_str(text);
        for &tau in &cfg.taus {
            for kind in AlgorithmKind::ALL {
                let breq = SearchRequest::new(&bq).tau(tau).algorithm(kind);
                let base = engine::execute(&baseline, &mut scratch, &breq)
                    .map_err(|e| format!("baseline {} tau={tau}: {e}", kind.name()))?;
                let sreq = SearchRequest::new(&sq).tau(tau).algorithm(kind);
                let shard = sharded
                    .search_with_scratch(&mut scratch, &sreq)
                    .map_err(|e| format!("sharded {} tau={tau}: {e}", kind.name()))?;
                let mut b: Vec<(u64, u64)> = base
                    .results
                    .iter()
                    .map(|m| (u64::from(m.id.0), m.score.to_bits()))
                    .collect();
                let mut s: Vec<(u64, u64)> = shard
                    .results
                    .iter()
                    .map(|m| (u64::from(m.id.0), m.score.to_bits()))
                    .collect();
                b.sort_unstable();
                s.sort_unstable();
                if b != s {
                    return Err(format!(
                        "EQUIVALENCE MISMATCH: {} tau={tau} query={text:?}: \
                         baseline {} result(s), sharded {} result(s)",
                        kind.name(),
                        b.len(),
                        s.len()
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScaleoutConfig {
        ScaleoutConfig {
            records: 3_000,
            shards: 8,
            seed: 42,
            queries: 8,
            equivalence_records: 1_500,
            ..ScaleoutConfig::default()
        }
    }

    #[test]
    fn tiny_cell_runs_and_prunes() {
        let out = run(&tiny()).expect("tiny scale-out cell");
        assert_eq!(out.num_records, 3_000);
        assert!(out.num_shards > 1, "bands must split the corpus");
        assert!(out.equivalence_checked);
        assert!(!out.opened_from_cache);
        assert_eq!(out.report.workloads.len(), 3);
        // Pruning strengthens with τ: the 0.95 window is narrower than
        // the 0.5 one, so it can only prune at least as many shards.
        let f = &out.pruned_fraction;
        assert!(f[2].1 >= f[0].1, "pruning must not weaken as tau rises");
        let at_08 = f.iter().find(|(t, _)| (*t - 0.8).abs() < 1e-9).unwrap();
        assert!(
            at_08.1 > 0.5,
            "tau=0.8 must prune the majority of shard visits, got {:.2}",
            at_08.1
        );
    }

    #[test]
    fn equivalence_mismatch_surfaces_as_error() {
        // Sanity: the check runs (a real mismatch would need a broken
        // engine, so only the success path is exercised here) and a
        // stale cache is rejected by the record-count guard.
        let mut cfg = tiny();
        cfg.equivalence_records = 200;
        let out = run(&cfg).expect("equivalence over a short prefix");
        assert!(out.equivalence_checked);
    }

    #[test]
    fn cache_round_trip_reopens() {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "setsim-scaleout-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let mut cfg = tiny();
        cfg.records = 800;
        cfg.equivalence_records = 0;
        cfg.dir = Some(dir.clone());
        let first = run(&cfg).expect("fresh build");
        assert!(!first.opened_from_cache);
        let second = run(&cfg).expect("cache reopen");
        assert!(second.opened_from_cache);
        assert_eq!(
            first.report.counters_json(),
            second.report.counters_json(),
            "cached reopen must reproduce the counters byte for byte"
        );
        // A different --records against the same directory is a stale key.
        cfg.records = 900;
        let err = run(&cfg).unwrap_err();
        assert!(err.contains("stale cache"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
