//! The versioned, schema-stable benchmark report.
//!
//! One [`BenchReport`] is the unit of the repo's perf trajectory: the
//! harness (`setsim-bench harness`) writes one as `BENCH_<label>.json`,
//! CI caches the previous run's file, and `cargo xtask bench-diff`
//! compares two of them (see [`crate::diff`]). The figure binaries
//! (`fig6_time --json`, `fig7_pruning --json`) emit the same schema, so
//! paper figures and the regression gate share one representation
//! instead of two ad-hoc printers.
//!
//! Layout (schema version [`SCHEMA_VERSION`]):
//!
//! ```text
//! { "schema_version": 1,
//!   "label": "seed", "scale": "small", "seed": 42,
//!   "warmup": 1, "reps": 3,
//!   "env": { host, os, arch, rev, profile },
//!   "workloads": [
//!     { "label": "tau=0.8 11-15g 0mods", "tau": 0.8, "queries": 50,
//!       "algos": [
//!         { "name": "SF",
//!           "counters": { queries, matches, elements_read, … },
//!           "latency": { reps, min_ms_per_query, median_ms_per_query,
//!                        mad_ms_per_query } } ] } ] }
//! ```
//!
//! The **counters section is deterministic**: it aggregates
//! [`SearchStats`] access counts, which depend only on (scale, seed,
//! workload, algorithm) — never on machine load. Two runs with the same
//! parameters produce byte-identical counter sections
//! ([`BenchReport::counters_json`]), which is why counters are the
//! primary regression signal and wall clock is advisory. Versioning
//! rule: any key rename, removal, or semantic change bumps
//! [`SCHEMA_VERSION`]; adding new keys is allowed within a version
//! (readers ignore unknown keys).

use crate::json::Json;
use crate::{Algo, Engines};
use setsim_core::{AlgoConfig, PreparedQuery, SearchStats};
use std::time::Instant;

/// Version of the `BENCH_*.json` layout. Bump on any incompatible key
/// change; `bench-diff` refuses to compare across versions.
pub const SCHEMA_VERSION: u64 = 1;

/// Where a report was produced: recorded so a comparison across hosts,
/// revisions, or build profiles is visibly apples-to-oranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvFingerprint {
    /// Hostname (from `$HOSTNAME`, else "unknown").
    pub host: String,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Git revision (`$SETSIM_REV`, else `git rev-parse --short HEAD`,
    /// else "unknown").
    pub rev: String,
    /// Build profile of the harness binary: "release" or "debug".
    pub profile: String,
}

impl EnvFingerprint {
    /// Capture the current environment.
    #[must_use]
    pub fn capture() -> Self {
        let rev = std::env::var("SETSIM_REV").ok().or_else(git_rev);
        Self {
            host: std::env::var("HOSTNAME").unwrap_or_else(|_| "unknown".to_string()),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            rev: rev.unwrap_or_else(|| "unknown".to_string()),
            profile: if cfg!(debug_assertions) {
                "debug".to_string()
            } else {
                "release".to_string()
            },
        }
    }

    fn to_json(&self) -> Json {
        Json::obj()
            .field("host", self.host.as_str())
            .field("os", self.os.as_str())
            .field("arch", self.arch.as_str())
            .field("rev", self.rev.as_str())
            .field("profile", self.profile.as_str())
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            host: str_field(v, "env.host")?,
            os: str_field(v, "env.os")?,
            arch: str_field(v, "env.arch")?,
            rev: str_field(v, "env.rev")?,
            profile: str_field(v, "env.profile")?,
        })
    }
}

fn git_rev() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?;
    let rev = rev.trim();
    (!rev.is_empty()).then(|| rev.to_string())
}

/// The deterministic access counters of one (workload, algorithm) cell:
/// the [`SearchStats`] sums plus result counts. These are exact integers
/// independent of machine speed — the regression gate's primary signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSection {
    /// Queries executed (workload size).
    pub queries: u64,
    /// Matches returned across the workload.
    pub matches: u64,
    /// Σ postings read by sorted access.
    pub elements_read: u64,
    /// Σ random-access probes.
    pub random_probes: u64,
    /// Σ postings stepped over by skip-list seeks.
    pub elements_skipped: u64,
    /// Σ candidates inserted into candidate sets.
    pub candidates_inserted: u64,
    /// Σ candidate-set bookkeeping steps.
    pub candidate_scan_steps: u64,
    /// Σ rounds / lists processed.
    pub rounds: u64,
    /// Σ base-table records scored directly.
    pub records_scanned: u64,
    /// Σ pruning denominators (total postings across query lists).
    pub total_list_elements: u64,
    /// Σ shards skipped whole by the Theorem 1 band check.
    pub shards_pruned: u64,
    /// Σ postings never visited because their shard was pruned.
    pub shard_pruned_elements: u64,
    /// Σ distinct snapshot pages faulted (paged serving only).
    pub pages_touched: u64,
    /// Σ buffer-pool hits while faulting pages (paged serving only).
    pub page_cache_hits: u64,
    /// Σ buffer-pool misses — disk reads — while faulting pages (paged
    /// serving only).
    pub page_cache_misses: u64,
}

/// Field names of [`CounterSection`], in serialization order; `bench-diff`
/// iterates this list so a new counter is automatically gated.
pub const COUNTER_FIELDS: [&str; 15] = [
    "queries",
    "matches",
    "elements_read",
    "random_probes",
    "elements_skipped",
    "candidates_inserted",
    "candidate_scan_steps",
    "rounds",
    "records_scanned",
    "total_list_elements",
    "shards_pruned",
    "shard_pruned_elements",
    "pages_touched",
    "page_cache_hits",
    "page_cache_misses",
];

impl CounterSection {
    /// Build from merged workload stats plus result/query counts.
    #[must_use]
    pub fn from_stats(stats: &SearchStats, queries: u64, matches: u64) -> Self {
        Self {
            queries,
            matches,
            elements_read: stats.elements_read,
            random_probes: stats.random_probes,
            elements_skipped: stats.elements_skipped,
            candidates_inserted: stats.candidates_inserted,
            candidate_scan_steps: stats.candidate_scan_steps,
            rounds: stats.rounds,
            records_scanned: stats.records_scanned,
            total_list_elements: stats.total_list_elements,
            shards_pruned: stats.shards_pruned,
            shard_pruned_elements: stats.shard_pruned_elements,
            pages_touched: stats.pages_touched,
            page_cache_hits: stats.page_cache_hits,
            page_cache_misses: stats.page_cache_misses,
        }
    }

    /// Field access by [`COUNTER_FIELDS`] name (drives `bench-diff`).
    #[must_use]
    pub fn get(&self, field: &str) -> Option<u64> {
        Some(match field {
            "queries" => self.queries,
            "matches" => self.matches,
            "elements_read" => self.elements_read,
            "random_probes" => self.random_probes,
            "elements_skipped" => self.elements_skipped,
            "candidates_inserted" => self.candidates_inserted,
            "candidate_scan_steps" => self.candidate_scan_steps,
            "rounds" => self.rounds,
            "records_scanned" => self.records_scanned,
            "total_list_elements" => self.total_list_elements,
            "shards_pruned" => self.shards_pruned,
            "shard_pruned_elements" => self.shard_pruned_elements,
            "pages_touched" => self.pages_touched,
            "page_cache_hits" => self.page_cache_hits,
            "page_cache_misses" => self.page_cache_misses,
            _ => return None,
        })
    }

    /// Pruning power over the workload, the paper's Figure 7 metric.
    #[must_use]
    pub fn pruning_pct(&self) -> f64 {
        if self.total_list_elements == 0 {
            return 100.0;
        }
        // lint: allow — counters well below 2^53, exact in f64.
        100.0 * (1.0 - self.elements_read as f64 / self.total_list_elements as f64)
    }

    /// Modeled disk milliseconds per query with the 2008-era constants of
    /// `fig6_time` (0.2 µs per sequential posting, 100 µs per random
    /// probe) — counter-derived, hence deterministic.
    #[must_use]
    pub fn modeled_disk_ms_per_query(&self) -> f64 {
        // lint: allow — counters well below 2^53, exact in f64.
        let (seq, rnd) = (self.elements_read as f64, self.random_probes as f64);
        // lint: allow — query count below 2^53.
        (seq * 0.0002 + rnd * 0.1) / self.queries.max(1) as f64
    }

    fn to_json(self) -> Json {
        let mut obj = Json::obj();
        for field in COUNTER_FIELDS {
            obj = obj.field(field, self.get(field).unwrap_or(0));
        }
        obj
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            queries: u64_field(v, "queries")?,
            matches: u64_field(v, "matches")?,
            elements_read: u64_field(v, "elements_read")?,
            random_probes: u64_field(v, "random_probes")?,
            elements_skipped: u64_field(v, "elements_skipped")?,
            candidates_inserted: u64_field(v, "candidates_inserted")?,
            candidate_scan_steps: u64_field(v, "candidate_scan_steps")?,
            rounds: u64_field(v, "rounds")?,
            records_scanned: u64_field(v, "records_scanned")?,
            total_list_elements: u64_field(v, "total_list_elements")?,
            // Within-version schema extension: reports written before the
            // sharded cell landed lack these keys and still must parse.
            shards_pruned: u64_field_or_zero(v, "shards_pruned")?,
            shard_pruned_elements: u64_field_or_zero(v, "shard_pruned_elements")?,
            // Same extension rule for the paged-serving counters.
            pages_touched: u64_field_or_zero(v, "pages_touched")?,
            page_cache_hits: u64_field_or_zero(v, "page_cache_hits")?,
            page_cache_misses: u64_field_or_zero(v, "page_cache_misses")?,
        })
    }
}

/// Wall-clock statistics over the measured repetitions of one workload:
/// min-of-k (the robust point estimate — the least-interfered-with run)
/// plus median and MAD (median absolute deviation) to expose spread.
/// Noisy by nature; `bench-diff` treats drift here as advisory within a
/// band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySection {
    /// Measured repetitions (after warmup).
    pub reps: u64,
    /// Minimum over reps of mean milliseconds per query.
    pub min_ms_per_query: f64,
    /// Median over reps of mean milliseconds per query.
    pub median_ms_per_query: f64,
    /// Median absolute deviation of the per-rep means.
    pub mad_ms_per_query: f64,
    /// Client-observed tail percentiles over individual request
    /// latencies. `None` for the offline harness (which reduces per-rep
    /// *means*, where percentiles of three numbers mean nothing);
    /// populated by `setsim-bench loadgen`, whose samples are one TCP
    /// round-trip each. Optional keys are a within-version schema
    /// extension: readers ignore unknown keys, and old reports without
    /// them still parse.
    pub tail: Option<TailSection>,
}

/// Tail latency percentiles (nearest-rank) over per-request samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailSection {
    /// 50th percentile, milliseconds per request.
    pub p50_ms: f64,
    /// 95th percentile, milliseconds per request.
    pub p95_ms: f64,
    /// 99th percentile, milliseconds per request.
    pub p99_ms: f64,
}

impl TailSection {
    fn of_sorted(sorted: &[f64]) -> Self {
        let pick = |p: f64| {
            // Nearest-rank: ceil(p·n) clamped into range, 1-indexed.
            let n = sorted.len();
            // lint: allow — sample counts well below 2^53.
            let rank = (p * n as f64).ceil() as usize;
            sorted[rank.clamp(1, n) - 1]
        };
        Self {
            p50_ms: pick(0.50),
            p95_ms: pick(0.95),
            p99_ms: pick(0.99),
        }
    }
}

impl LatencySection {
    /// Reduce per-repetition mean-ms-per-query samples. Panics on an
    /// empty sample set (the harness always runs ≥ 1 rep).
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        Self::reduce(samples, false)
    }

    /// Reduce per-**request** latency samples (milliseconds), keeping
    /// tail percentiles — the loadgen path, where every sample is one
    /// client-observed round-trip rather than a per-rep mean.
    #[must_use]
    pub fn from_request_samples_ms(samples: &[f64]) -> Self {
        Self::reduce(samples, true)
    }

    fn reduce(samples: &[f64], with_tail: bool) -> Self {
        assert!(!samples.is_empty(), "at least one measured sample required");
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let med = median_of_sorted(&sorted);
        let mut devs: Vec<f64> = sorted.iter().map(|s| (s - med).abs()).collect();
        devs.sort_by(f64::total_cmp);
        Self {
            reps: samples.len() as u64,
            min_ms_per_query: sorted[0],
            median_ms_per_query: med,
            mad_ms_per_query: median_of_sorted(&devs),
            tail: with_tail.then(|| TailSection::of_sorted(&sorted)),
        }
    }

    fn to_json(self) -> Json {
        let mut obj = Json::obj()
            .field("reps", self.reps)
            .field("min_ms_per_query", self.min_ms_per_query)
            .field("median_ms_per_query", self.median_ms_per_query)
            .field("mad_ms_per_query", self.mad_ms_per_query);
        if let Some(t) = self.tail {
            obj = obj
                .field("p50_ms", t.p50_ms)
                .field("p95_ms", t.p95_ms)
                .field("p99_ms", t.p99_ms);
        }
        obj
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        // The tail keys travel together; a report either has all three
        // (loadgen) or none (harness).
        let tail = match v.get("p50_ms") {
            Some(_) => Some(TailSection {
                p50_ms: f64_field(v, "p50_ms")?,
                p95_ms: f64_field(v, "p95_ms")?,
                p99_ms: f64_field(v, "p99_ms")?,
            }),
            None => None,
        };
        Ok(Self {
            reps: u64_field(v, "reps")?,
            min_ms_per_query: f64_field(v, "min_ms_per_query")?,
            median_ms_per_query: f64_field(v, "median_ms_per_query")?,
            mad_ms_per_query: f64_field(v, "mad_ms_per_query")?,
            tail,
        })
    }
}

fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// One algorithm's measurement on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgoReport {
    /// Paper display name (`SF`, `iNRA`, …).
    pub name: String,
    /// Deterministic access counters — the gated signal.
    pub counters: CounterSection,
    /// Wall-clock statistics — the advisory signal.
    pub latency: LatencySection,
}

impl AlgoReport {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("name", self.name.as_str())
            .field("counters", self.counters.to_json())
            .field("latency", self.latency.to_json())
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Self {
            name: str_field(v, "name")?,
            counters: CounterSection::from_json(
                v.get("counters").ok_or("algo missing `counters`")?,
            )?,
            latency: LatencySection::from_json(v.get("latency").ok_or("algo missing `latency`")?)?,
        })
    }
}

/// One workload (a query set at one threshold) measured across the
/// algorithm roster.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadReport {
    /// Stable identifier, e.g. `tau=0.8 11-15g 0mods` — `bench-diff`
    /// matches workloads across reports by this label.
    pub label: String,
    /// Selection threshold.
    pub tau: f64,
    /// Queries in the workload.
    pub queries: u64,
    /// Per-algorithm measurements, roster order.
    pub algos: Vec<AlgoReport>,
}

impl WorkloadReport {
    /// Measurement for one algorithm, by paper display name.
    #[must_use]
    pub fn algo(&self, name: &str) -> Option<&AlgoReport> {
        self.algos.iter().find(|a| a.name == name)
    }

    fn to_json(&self) -> Json {
        Json::obj()
            .field("label", self.label.as_str())
            .field("tau", self.tau)
            .field("queries", self.queries)
            .field(
                "algos",
                Json::Arr(self.algos.iter().map(AlgoReport::to_json).collect()),
            )
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let algos = v
            .get("algos")
            .and_then(Json::as_arr)
            .ok_or("workload missing `algos` array")?
            .iter()
            .map(AlgoReport::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            label: str_field(v, "label")?,
            tau: f64_field(v, "tau")?,
            queries: u64_field(v, "queries")?,
            algos,
        })
    }
}

/// A complete benchmark report: fingerprint, parameters, measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Layout version ([`SCHEMA_VERSION`] at write time).
    pub schema_version: u64,
    /// Report label (`BENCH_<label>.json`).
    pub label: String,
    /// Experiment scale (`small` / `medium` / `large`).
    pub scale: String,
    /// Master seed for corpus and workload generation.
    pub seed: u64,
    /// Untimed warmup repetitions per (workload, algorithm).
    pub warmup: u64,
    /// Timed repetitions per (workload, algorithm).
    pub reps: u64,
    /// Where and on what the report was produced.
    pub env: EnvFingerprint,
    /// The measured workloads.
    pub workloads: Vec<WorkloadReport>,
}

impl BenchReport {
    /// Full JSON document (pretty-printed, trailing newline).
    #[must_use]
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }

    /// Full JSON value.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("schema_version", self.schema_version)
            .field("label", self.label.as_str())
            .field("scale", self.scale.as_str())
            .field("seed", self.seed)
            .field("warmup", self.warmup)
            .field("reps", self.reps)
            .field("env", self.env.to_json())
            .field(
                "workloads",
                Json::Arr(self.workloads.iter().map(WorkloadReport::to_json).collect()),
            )
    }

    /// Parse a report from JSON text, validating the schema version.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let schema_version = u64_field(&v, "schema_version")?;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {schema_version} (this build reads {SCHEMA_VERSION})"
            ));
        }
        let workloads = v
            .get("workloads")
            .and_then(Json::as_arr)
            .ok_or("report missing `workloads` array")?
            .iter()
            .map(WorkloadReport::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            schema_version,
            label: str_field(&v, "label")?,
            scale: str_field(&v, "scale")?,
            seed: u64_field(&v, "seed")?,
            warmup: u64_field(&v, "warmup")?,
            reps: u64_field(&v, "reps")?,
            env: EnvFingerprint::from_json(v.get("env").ok_or("report missing `env`")?)?,
            workloads,
        })
    }

    /// Only the deterministic slice of the report — parameters plus every
    /// counter section, no env, no latency. Two harness runs with the
    /// same (scale, seed, workload grid) produce **byte-identical**
    /// output here; the determinism test and the CI gate both rely on it.
    #[must_use]
    pub fn counters_json(&self) -> String {
        Json::obj()
            .field("schema_version", self.schema_version)
            .field("scale", self.scale.as_str())
            .field("seed", self.seed)
            .field(
                "workloads",
                Json::Arr(
                    self.workloads
                        .iter()
                        .map(|w| {
                            Json::obj()
                                .field("label", w.label.as_str())
                                .field("tau", w.tau)
                                .field("queries", w.queries)
                                .field(
                                    "algos",
                                    Json::Arr(
                                        w.algos
                                            .iter()
                                            .map(|a| {
                                                Json::obj()
                                                    .field("name", a.name.as_str())
                                                    .field("counters", a.counters.to_json())
                                            })
                                            .collect(),
                                    ),
                                )
                        })
                        .collect(),
                ),
            )
            .pretty()
    }
}

/// A column of numbers derivable from one [`AlgoReport`] — what the
/// figure binaries print and what `--json` replaces with the full report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Min-of-k mean wall-clock ms/query (Figure 6 primary).
    MinMs,
    /// Counter-modeled disk ms/query (Figure 6 companion).
    ModeledDiskMs,
    /// Pruning power % (Figure 7).
    PruningPct,
}

impl Metric {
    /// Extract this metric's value from one measurement.
    #[must_use]
    pub fn of(self, algo: &AlgoReport) -> f64 {
        match self {
            Metric::MinMs => algo.latency.min_ms_per_query,
            Metric::ModeledDiskMs => algo.counters.modeled_disk_ms_per_query(),
            Metric::PruningPct => algo.counters.pruning_pct(),
        }
    }

    /// Table-cell formatting for this metric.
    #[must_use]
    pub fn format(self, value: f64) -> String {
        match self {
            Metric::MinMs | Metric::ModeledDiskMs => format!("{value:.3}"),
            Metric::PruningPct => format!("{value:.1}%"),
        }
    }
}

/// Render a figure-style text table — algorithms × workload columns — of
/// one metric, through the shared [`crate::print_table`] layout. The
/// same `WorkloadReport` values serialize to JSON via [`BenchReport`],
/// so the figures' text and JSON outputs are two views of one schema.
pub fn print_figure(title: &str, columns: &[&WorkloadReport], col_labels: &[String], m: Metric) {
    let Some(first) = columns.first() else {
        return;
    };
    let rows: Vec<(String, Vec<String>)> = first
        .algos
        .iter()
        .map(|a| {
            let cells = columns
                .iter()
                .map(|w| {
                    w.algo(&a.name)
                        .map_or_else(|| "-".to_string(), |r| m.format(m.of(r)))
                })
                .collect();
            (a.name.clone(), cells)
        })
        .collect();
    crate::print_table(title, col_labels, &rows);
}

/// Pass counts for one measured cell: `warmup` untimed passes followed
/// by `reps` timed passes (clamped to ≥ 1).
#[derive(Debug, Clone, Copy)]
pub struct Passes {
    /// Untimed passes run first to settle caches and allocators.
    pub warmup: usize,
    /// Timed passes that feed [`LatencySection::from_samples`].
    pub reps: usize,
}

/// Measure `algos` over one prepared workload: `passes.warmup` untimed
/// passes, then `passes.reps` timed passes per algorithm. Counters come
/// from the final pass (they are identical across passes — that
/// determinism is asserted by `tests/harness_determinism.rs`); latency
/// reduces all timed passes.
pub fn measure_workload(
    engines: &Engines<'_>,
    algos: &[Algo],
    config: AlgoConfig,
    queries: &[PreparedQuery],
    tau: f64,
    label: &str,
    passes: Passes,
) -> WorkloadReport {
    let (warmup, reps) = (passes.warmup, passes.reps.max(1));
    let mut reports = Vec::with_capacity(algos.len());
    for &algo in algos {
        for _ in 0..warmup {
            run_pass(engines, algo, config, queries, tau);
        }
        let mut samples = Vec::with_capacity(reps);
        let mut last = PassResult::default();
        for _ in 0..reps {
            let start = Instant::now();
            last = run_pass(engines, algo, config, queries, tau);
            let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
            // lint: allow — workload sizes well below 2^53.
            samples.push(elapsed_ms / queries.len().max(1) as f64);
        }
        reports.push(AlgoReport {
            name: algo.name().to_string(),
            counters: CounterSection::from_stats(
                &last.stats,
                queries.len() as u64,
                last.matches as u64,
            ),
            latency: LatencySection::from_samples(&samples),
        });
    }
    WorkloadReport {
        label: label.to_string(),
        tau,
        queries: queries.len() as u64,
        algos: reports,
    }
}

#[derive(Default)]
struct PassResult {
    stats: SearchStats,
    matches: usize,
}

fn run_pass(
    engines: &Engines<'_>,
    algo: Algo,
    config: AlgoConfig,
    queries: &[PreparedQuery],
    tau: f64,
) -> PassResult {
    let mut pass = PassResult::default();
    for q in queries {
        let out = engines.run(algo, config, q, tau);
        pass.matches += out.results.len();
        pass.stats.merge(&out.stats);
    }
    pass
}

fn str_field(v: &Json, key: &str) -> Result<String, String> {
    // Nested keys in error labels ("env.host") address the outer object.
    let leaf = key.rsplit('.').next().unwrap_or(key);
    v.get(leaf)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

/// Optional integer field: absent keys default to 0 (pre-extension
/// reports), present keys must still be integers.
fn u64_field_or_zero(v: &Json, key: &str) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(0),
        Some(j) => j
            .as_u64()
            .ok_or_else(|| format!("non-integer field `{key}`")),
    }
}

fn f64_field(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field `{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_report() -> BenchReport {
        let counters = CounterSection {
            queries: 10,
            matches: 12,
            elements_read: 500,
            random_probes: 20,
            elements_skipped: 100,
            candidates_inserted: 50,
            candidate_scan_steps: 75,
            rounds: 30,
            records_scanned: 0,
            total_list_elements: 2000,
            shards_pruned: 3,
            shard_pruned_elements: 400,
            pages_touched: 7,
            page_cache_hits: 5,
            page_cache_misses: 2,
        };
        let latency = LatencySection::from_samples(&[0.5, 0.4, 0.6]);
        BenchReport {
            schema_version: SCHEMA_VERSION,
            label: "test".to_string(),
            scale: "small".to_string(),
            seed: 42,
            warmup: 1,
            reps: 3,
            env: EnvFingerprint {
                host: "h".to_string(),
                os: "linux".to_string(),
                arch: "x86_64".to_string(),
                rev: "abc1234".to_string(),
                profile: "release".to_string(),
            },
            workloads: vec![WorkloadReport {
                label: "tau=0.8 11-15g 0mods".to_string(),
                tau: 0.8,
                queries: 10,
                algos: vec![AlgoReport {
                    name: "SF".to_string(),
                    counters,
                    latency,
                }],
            }],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample_report();
        let text = r.to_json_string();
        let back = BenchReport::parse(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn unsupported_schema_version_is_rejected() {
        let text = sample_report()
            .to_json_string()
            .replace("\"schema_version\": 1", "\"schema_version\": 999");
        let err = BenchReport::parse(&text).unwrap_err();
        assert!(err.contains("schema_version 999"), "{err}");
    }

    #[test]
    fn missing_field_is_a_readable_error() {
        let text = sample_report()
            .to_json_string()
            .replace("\"elements_read\": 500,", "");
        let err = BenchReport::parse(&text).unwrap_err();
        assert!(err.contains("elements_read"), "{err}");
    }

    #[test]
    fn latency_reduction_is_min_median_mad() {
        let l = LatencySection::from_samples(&[3.0, 1.0, 2.0, 10.0]);
        assert_eq!(l.reps, 4);
        assert_eq!(l.min_ms_per_query, 1.0);
        assert_eq!(l.median_ms_per_query, 2.5);
        // Deviations from 2.5: sorted [0.5, 0.5, 1.5, 7.5] → median 1.0.
        assert_eq!(l.mad_ms_per_query, 1.0);
    }

    #[test]
    fn request_samples_keep_tail_percentiles() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let l = LatencySection::from_request_samples_ms(&samples);
        let t = l.tail.expect("loadgen reduction keeps tails");
        assert_eq!(t.p50_ms, 50.0);
        assert_eq!(t.p95_ms, 95.0);
        assert_eq!(t.p99_ms, 99.0);
        // The tail keys survive the JSON round trip, and their absence
        // (harness reports) still parses.
        let mut r = sample_report();
        r.workloads[0].algos[0].latency = l;
        let back = BenchReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
        assert!(sample_report().workloads[0].algos[0].latency.tail.is_none());
    }

    #[test]
    fn counter_fields_cover_every_counter() {
        let c = CounterSection {
            queries: 1,
            matches: 2,
            elements_read: 3,
            random_probes: 4,
            elements_skipped: 5,
            candidates_inserted: 6,
            candidate_scan_steps: 7,
            rounds: 8,
            records_scanned: 9,
            total_list_elements: 10,
            shards_pruned: 11,
            shard_pruned_elements: 12,
            pages_touched: 13,
            page_cache_hits: 14,
            page_cache_misses: 15,
        };
        let values: Vec<u64> = COUNTER_FIELDS
            .iter()
            .map(|f| c.get(f).expect("known field"))
            .collect();
        assert_eq!(
            values,
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]
        );
        assert_eq!(c.get("bogus"), None);
    }

    #[test]
    fn missing_shard_counters_default_to_zero() {
        // Reports written before the sharded cell landed have no shard
        // keys; they must parse with zeros, not fail.
        // Renaming the keys (readers ignore unknown keys) removes them
        // without disturbing the surrounding JSON punctuation.
        let text = sample_report()
            .to_json_string()
            .replace("\"shards_pruned\"", "\"x_shards_pruned\"")
            .replace("\"shard_pruned_elements\"", "\"x_shard_pruned_elements\"");
        let back = BenchReport::parse(&text).unwrap();
        let c = &back.workloads[0].algos[0].counters;
        assert_eq!(c.shards_pruned, 0);
        assert_eq!(c.shard_pruned_elements, 0);
    }

    #[test]
    fn missing_page_counters_default_to_zero() {
        // Reports written before the paged engine landed have no page
        // keys; same extension rule as the shard counters.
        let text = sample_report()
            .to_json_string()
            .replace("\"pages_touched\"", "\"x_pages_touched\"")
            .replace("\"page_cache_hits\"", "\"x_page_cache_hits\"")
            .replace("\"page_cache_misses\"", "\"x_page_cache_misses\"");
        let back = BenchReport::parse(&text).unwrap();
        let c = &back.workloads[0].algos[0].counters;
        assert_eq!(c.pages_touched, 0);
        assert_eq!(c.page_cache_hits, 0);
        assert_eq!(c.page_cache_misses, 0);
    }

    #[test]
    fn counters_json_excludes_env_and_latency() {
        let text = sample_report().counters_json();
        assert!(text.contains("elements_read"), "{text}");
        assert!(!text.contains("min_ms_per_query"), "{text}");
        assert!(!text.contains("host"), "{text}");
    }

    #[test]
    fn derived_metrics() {
        let r = sample_report();
        let a = &r.workloads[0].algos[0];
        assert!((Metric::PruningPct.of(a) - 75.0).abs() < 1e-9);
        // 500 seq × 0.2µs + 20 probes × 100µs = 0.1ms + 2ms over 10 q.
        assert!((Metric::ModeledDiskMs.of(a) - 0.21).abs() < 1e-9);
        assert_eq!(Metric::MinMs.of(a), 0.4);
        assert_eq!(Metric::PruningPct.format(75.0), "75.0%");
    }

    #[test]
    fn env_capture_is_well_formed() {
        let env = EnvFingerprint::capture();
        assert!(!env.os.is_empty());
        assert!(!env.arch.is_empty());
        assert!(env.profile == "debug" || env.profile == "release");
    }
}
