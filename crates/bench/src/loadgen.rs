//! Concurrent load generator for the serving tier (`setsim-bench
//! loadgen`).
//!
//! Starts an in-process [`setsim_server::ServerHandle`] on an ephemeral
//! port over a seeded corpus, then drives it over real TCP with `R`
//! reader threads (similarity selections through the typed protocol
//! client) and `W` writer threads (insert/upsert/delete mutations)
//! concurrently. Every reader sample is one client-observed round-trip,
//! so the reduced [`LatencySection`] carries tail percentiles
//! (p50/p95/p99) — the serving-tier signal the offline harness cannot
//! produce. The outcome folds into the versioned [`BenchReport`] schema
//! so `bench-diff` and CI read loadgen runs with the same tooling as
//! harness runs.
//!
//! Shedding is part of the contract, not an error: a request refused by
//! admission control arrives back as a typed `Overloaded` response and
//! is counted separately from transport failures. The CI `serving` job
//! asserts zero shed at low load and nonzero shed (with zero transport
//! errors) at saturation. Saturation is made deterministic by *clog*
//! connections ([`LoadgenConfig::clog`]) rather than by racing fast
//! requests against a small permit count, which is a scheduler lottery.

use crate::report::{
    AlgoReport, BenchReport, CounterSection, EnvFingerprint, LatencySection, WorkloadReport,
    SCHEMA_VERSION,
};
use crate::Scale;
use setsim_core::{
    AlgorithmKind, ErrorCode, IndexOptions, MutableEngine, MutableIndex, RecordId, SearchCall,
    WireStats,
};
use setsim_datagen::LengthBucket;
use setsim_server::{Client, ClientError, DrainReport, ServerConfig, ServerHandle};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parameters of one loadgen run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Corpus scale served by the in-process server.
    pub scale: Scale,
    /// Master seed for corpus and query workload generation.
    pub seed: u64,
    /// Concurrent reader (search) connections.
    pub readers: usize,
    /// Concurrent writer (mutation) connections.
    pub writers: usize,
    /// Search requests issued per reader.
    pub requests: usize,
    /// Mutations issued per writer.
    pub mutations: usize,
    /// Selection threshold for the reader queries.
    pub tau: f64,
    /// Server admission-control permit count; saturate by setting this
    /// below the reader count.
    pub inflight: usize,
    /// Connections dedicated to *clog* searches: Scan queries whose text
    /// alone costs hundreds of milliseconds to tokenize server-side, so
    /// each one holds an admission permit for a wide window. With
    /// `clog >= 2` and `inflight = 1`, shedding is guaranteed — the
    /// clogs refuse each other — instead of a scheduler race between
    /// fast requests (which on a single-core host can produce zero
    /// sheds, because a client's next arrival anti-correlates with the
    /// held window).
    pub clog: usize,
    /// Report label (`BENCH_<label>.json`).
    pub label: String,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            seed: 42,
            readers: 4,
            writers: 1,
            requests: 50,
            mutations: 20,
            tau: 0.8,
            inflight: 8,
            clog: 0,
            label: "loadgen".to_string(),
        }
    }
}

/// What one loadgen run observed, beyond the report itself.
#[derive(Debug, Clone)]
pub struct LoadgenOutcome {
    /// The run folded into the versioned report schema (one workload,
    /// one algo entry, tail percentiles populated).
    pub report: BenchReport,
    /// Search requests answered with results.
    pub ok: u64,
    /// Search/mutation requests refused with a typed `Overloaded`.
    pub overloaded: u64,
    /// Transport-level failures (broken connection, decode error) — the
    /// saturation contract requires these stay zero.
    pub transport_errors: u64,
    /// Mutations acknowledged by the server.
    pub mutations_applied: u64,
    /// Server-side counters sampled just before shutdown.
    pub server: WireStats,
    /// What the graceful drain reported.
    pub drain: DrainReport,
}

struct ReaderResult {
    samples: Vec<f64>,
    ok: u64,
    overloaded: u64,
    transport_errors: u64,
    matches: u64,
}

struct WriterResult {
    applied: u64,
    overloaded: u64,
    transport_errors: u64,
}

/// Run the load: spawn the server, drive it, drain it, fold the report.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenOutcome, String> {
    let (corpus, collection) = crate::word_collection_seeded(cfg.scale, cfg.seed);
    let index = MutableIndex::from_collection(Box::new(collection), IndexOptions::default())
        .map_err(|e| e.to_string())?;
    let engine = MutableEngine::new(index);

    let mut scfg = ServerConfig::default();
    scfg.addr = "127.0.0.1:0".to_string();
    scfg.max_inflight = cfg.inflight.max(1);
    let handle = ServerHandle::spawn(engine, scfg).map_err(|e| e.to_string())?;
    let addr = handle.addr();

    // The paper's query workload: perturbed words drawn from the served
    // corpus, so selections do real index work rather than missing.
    let requests = cfg.requests.max(1);
    let wl = crate::workload(
        &corpus,
        LengthBucket::PAPER[2],
        1,
        requests,
        cfg.seed ^ 0x6c6f_6164,
    );
    let queries: Vec<String> = wl.queries().to_vec();

    let stop_clogs = Arc::new(AtomicBool::new(false));
    let clogs: Vec<_> = (0..cfg.clog)
        .map(|t| {
            let stop = Arc::clone(&stop_clogs);
            let tau = cfg.tau;
            std::thread::Builder::new()
                .name(format!("loadgen-clog-{t}"))
                .spawn(move || clog_loop(addr, &stop, tau))
                .expect("spawn clog")
        })
        .collect();
    let readers: Vec<_> = (0..cfg.readers.max(1))
        .map(|t| {
            let queries = queries.clone();
            let tau = cfg.tau;
            std::thread::Builder::new()
                .name(format!("loadgen-reader-{t}"))
                .spawn(move || reader_loop(addr, &queries, tau, t, requests))
                .expect("spawn reader")
        })
        .collect();
    let writers: Vec<_> = (0..cfg.writers)
        .map(|t| {
            let mutations = cfg.mutations;
            std::thread::Builder::new()
                .name(format!("loadgen-writer-{t}"))
                .spawn(move || writer_loop(addr, t, mutations))
                .expect("spawn writer")
        })
        .collect();

    let mut samples = Vec::new();
    let (mut ok, mut overloaded, mut transport, mut matches) = (0u64, 0u64, 0u64, 0u64);
    for r in readers {
        let r = r.join().map_err(|_| "reader thread panicked".to_string())?;
        samples.extend(r.samples);
        ok += r.ok;
        overloaded += r.overloaded;
        transport += r.transport_errors;
        matches += r.matches;
    }
    let mut applied = 0u64;
    for w in writers {
        let w = w.join().map_err(|_| "writer thread panicked".to_string())?;
        applied += w.applied;
        overloaded += w.overloaded;
        transport += w.transport_errors;
    }
    stop_clogs.store(true, Ordering::Release);
    for c in clogs {
        let c = c.join().map_err(|_| "clog thread panicked".to_string())?;
        samples.extend(c.samples);
        ok += c.ok;
        overloaded += c.overloaded;
        transport += c.transport_errors;
        matches += c.matches;
    }

    let server = Client::connect(addr)
        .and_then(|mut c| c.stats())
        .map_err(|e| format!("final stats probe: {e}"))?;
    let drain = handle.shutdown();

    if samples.is_empty() {
        return Err("no search request succeeded; nothing to report".to_string());
    }
    let latency = LatencySection::from_request_samples_ms(&samples);
    let counters = CounterSection {
        queries: ok,
        matches,
        elements_read: server.elements_read,
        random_probes: server.random_probes,
        elements_skipped: server.elements_skipped,
        candidates_inserted: 0,
        candidate_scan_steps: 0,
        rounds: 0,
        records_scanned: server.records_scanned,
        total_list_elements: server.total_list_elements,
        // The serving tier fronts a single unsharded, unpaged index.
        shards_pruned: 0,
        shard_pruned_elements: 0,
        pages_touched: 0,
        page_cache_hits: 0,
        page_cache_misses: 0,
    };
    let report = BenchReport {
        schema_version: SCHEMA_VERSION,
        label: cfg.label.clone(),
        scale: Scale::name(cfg.scale).to_string(),
        seed: cfg.seed,
        warmup: 0,
        reps: 1,
        env: EnvFingerprint::capture(),
        workloads: vec![WorkloadReport {
            label: format!(
                "loadgen tau={} {}r+{}w+{}c inflight={}",
                cfg.tau,
                cfg.readers.max(1),
                cfg.writers,
                cfg.clog,
                cfg.inflight.max(1)
            ),
            tau: cfg.tau,
            queries: ok,
            algos: vec![AlgoReport {
                name: "SF-remote".to_string(),
                counters,
                latency,
            }],
        }],
    };
    Ok(LoadgenOutcome {
        report,
        ok,
        overloaded,
        transport_errors: transport,
        mutations_applied: applied,
        server,
        drain,
    })
}

fn reader_loop(
    addr: std::net::SocketAddr,
    queries: &[String],
    tau: f64,
    thread: usize,
    requests: usize,
) -> ReaderResult {
    let mut out = ReaderResult {
        samples: Vec::with_capacity(requests),
        ok: 0,
        overloaded: 0,
        transport_errors: 0,
        matches: 0,
    };
    let Ok(mut client) = Client::connect(addr) else {
        out.transport_errors += 1;
        return out;
    };
    for i in 0..requests {
        // Stride by a prime so concurrent readers don't march through
        // the workload in lockstep.
        let text = &queries[(thread + i * 7) % queries.len()];
        let call = SearchCall::new(text.clone())
            .tau(tau)
            .algorithm(AlgorithmKind::Sf);
        let start = Instant::now();
        match client.search(&call) {
            Ok(reply) => {
                out.samples.push(start.elapsed().as_secs_f64() * 1e3);
                out.ok += 1;
                out.matches += reply.matches.len() as u64;
            }
            Err(ClientError::Server(e)) if e.code == ErrorCode::Overloaded => {
                out.overloaded += 1;
                // Honor the server's retry hint, capped so a saturation
                // run still finishes quickly.
                let wait = e.retry_after_ms.unwrap_or(1).min(5);
                std::thread::sleep(Duration::from_millis(wait));
            }
            Err(ClientError::Server(_)) => out.transport_errors += 1,
            Err(_) => {
                out.transport_errors += 1;
                return out;
            }
        }
    }
    out
}

/// One clog connection: repeat a Scan search whose ~1 MB query text
/// costs a wide window of server-side tokenization per request, each
/// holding an admission permit for that whole window. Round trips are
/// real successful searches, so they feed the same tallies as reader
/// requests (their latencies are the overload tail, which is the
/// point of a saturation run).
fn clog_loop(addr: std::net::SocketAddr, stop: &AtomicBool, tau: f64) -> ReaderResult {
    let mut out = ReaderResult {
        samples: Vec::new(),
        ok: 0,
        overloaded: 0,
        transport_errors: 0,
        matches: 0,
    };
    let Ok(mut client) = Client::connect(addr) else {
        out.transport_errors += 1;
        return out;
    };
    let text = "loadgen clog permit holder ".repeat(40_000);
    while !stop.load(Ordering::Acquire) {
        let call = SearchCall::new(text.clone())
            .tau(tau.max(0.9))
            .algorithm(AlgorithmKind::Scan);
        let start = Instant::now();
        match client.search(&call) {
            Ok(reply) => {
                out.samples.push(start.elapsed().as_secs_f64() * 1e3);
                out.ok += 1;
                out.matches += reply.matches.len() as u64;
            }
            Err(ClientError::Server(e)) if e.code == ErrorCode::Overloaded => {
                out.overloaded += 1;
                let wait = e.retry_after_ms.unwrap_or(1).min(5);
                std::thread::sleep(Duration::from_millis(wait));
            }
            Err(ClientError::Server(_)) => out.transport_errors += 1,
            Err(_) => {
                out.transport_errors += 1;
                return out;
            }
        }
    }
    out
}

fn writer_loop(addr: std::net::SocketAddr, thread: usize, mutations: usize) -> WriterResult {
    let mut out = WriterResult {
        applied: 0,
        overloaded: 0,
        transport_errors: 0,
    };
    let Ok(mut client) = Client::connect(addr) else {
        out.transport_errors += 1;
        return out;
    };
    let mut last: Option<RecordId> = None;
    for i in 0..mutations {
        // Rotate insert → upsert → delete so the delta segment sees all
        // three mutation kinds while readers are in flight.
        let res = match (i % 3, last) {
            (1, Some(id)) => client
                .upsert(id, &format!("loadgen w{thread} u{i}"))
                .map(|_| ()),
            (2, Some(id)) => {
                last = None;
                client.delete(id).map(|_| ())
            }
            _ => client.insert(&format!("loadgen w{thread} i{i}")).map(|id| {
                last = Some(id);
            }),
        };
        match res {
            Ok(()) => out.applied += 1,
            Err(ClientError::Server(e)) if e.code == ErrorCode::Overloaded => {
                out.overloaded += 1;
                let wait = e.retry_after_ms.unwrap_or(1).min(5);
                std::thread::sleep(Duration::from_millis(wait));
            }
            Err(ClientError::Server(_)) => out.transport_errors += 1,
            Err(_) => {
                out.transport_errors += 1;
                return out;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_load_run_sheds_nothing_and_reports_tails() {
        let cfg = LoadgenConfig {
            readers: 2,
            writers: 1,
            requests: 5,
            mutations: 3,
            inflight: 8,
            label: "loadgen-test".to_string(),
            ..LoadgenConfig::default()
        };
        let out = run(&cfg).expect("loadgen run");
        assert_eq!(out.ok, 10, "every search answered");
        assert_eq!(out.overloaded, 0, "no shedding below the permit count");
        assert_eq!(out.transport_errors, 0);
        assert_eq!(out.mutations_applied, 3);
        assert_eq!(out.server.shed, 0);
        assert_eq!(out.drain.shed, 0);
        let algo = &out.report.workloads[0].algos[0];
        let tail = algo.latency.tail.expect("loadgen keeps tail percentiles");
        assert!(tail.p50_ms <= tail.p95_ms && tail.p95_ms <= tail.p99_ms);
        // The folded report round-trips through the shared schema.
        let text = out.report.to_json_string();
        let back = BenchReport::parse(&text).expect("parse loadgen report");
        assert_eq!(back, out.report);
    }

    #[test]
    fn clogged_run_sheds_typed_refusals_only() {
        let cfg = LoadgenConfig {
            readers: 2,
            writers: 0,
            requests: 5,
            inflight: 1,
            clog: 2,
            label: "loadgen-sat".to_string(),
            ..LoadgenConfig::default()
        };
        let out = run(&cfg).expect("clogged run");
        // Two clogs against one permit refuse each other: shedding is
        // guaranteed, not a scheduling race.
        assert!(out.overloaded > 0, "clogged run must shed");
        assert_eq!(out.transport_errors, 0, "sheds are typed, never drops");
        assert_eq!(
            out.drain.shed, out.overloaded,
            "every shed was a typed refusal some client observed"
        );
        assert!(out.ok > 0, "admitted work still completes under overload");
    }
}
