//! Experiment harness reproducing the ICDE 2008 evaluation.
//!
//! Each table/figure of the paper has a binary in `src/bin/`:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1_precision` | Table I — average precision of TFIDF/IDF/BM25/BM25′ on cu1..cu8 |
//! | `fig5_index_size` | Figure 5 — index size per structure |
//! | `fig6_time` | Figure 6 — wall-clock time vs τ / query size / modifications |
//! | `fig7_pruning` | Figure 7 — pruning power, same sweeps |
//! | `fig8_length_bounding` | Figure 8 — Length Bounding ablation |
//! | `fig9_skip_lists` | Figure 9 — skip list ablation |
//!
//! This library holds the shared pieces: corpus/index construction, the
//! algorithm roster, workload execution with timing, and plain-text table
//! rendering. Scale is tunable with `--scale small|medium|large` (the
//! binaries default to `medium`, laptop-friendly while preserving the
//! paper's relative trends).
//!
//! Beyond the figure binaries, the crate hosts the machine-readable perf
//! trajectory: [`json`] (a dependency-free JSON writer/parser), [`report`]
//! (the versioned `BENCH_*.json` schema), [`harness`] (the deterministic
//! seeded workload runner behind `setsim-bench harness`), [`loadgen`]
//! (the concurrent serving-tier driver behind `setsim-bench loadgen`),
//! [`scaleout`] (the ≥10M-record sharded cell behind `setsim-bench
//! scaleout`), and [`diff`] (the noise-aware comparator behind `cargo
//! xtask bench-diff`).

pub mod diff;
pub mod harness;
pub mod json;
pub mod loadgen;
pub mod report;
pub mod scaleout;

use setsim_core::algorithms::sql::SqlBaseline;
use setsim_core::{
    engine, AlgoConfig, AlgorithmKind, InvertedIndex, PreparedQuery, Scratch, SearchOutcome,
    SearchRequest, SearchStats, SetCollection,
};
use setsim_datagen::{Corpus, CorpusConfig, LengthBucket, QueryWorkload};
use setsim_tokenize::QGramTokenizer;
use std::cell::RefCell;
use std::time::Instant;

/// Experiment scale presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~5k word occurrences; smoke-test sized.
    Small,
    /// ~60k word occurrences; default.
    Medium,
    /// ~250k word occurrences.
    Large,
}

impl Scale {
    /// Parse from a CLI argument.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "large" => Some(Scale::Large),
            _ => None,
        }
    }

    /// Corpus configuration for this scale (the figure binaries' fixed
    /// seed 42).
    pub fn corpus_config(self) -> CorpusConfig {
        self.corpus_config_seeded(42)
    }

    /// Corpus configuration for this scale with an explicit seed (the
    /// harness threads its master seed through here).
    pub fn corpus_config_seeded(self, seed: u64) -> CorpusConfig {
        let (records, vocab) = match self {
            Scale::Small => (2_000, 1_200),
            Scale::Medium => (25_000, 9_000),
            Scale::Large => (100_000, 25_000),
        };
        CorpusConfig {
            num_records: records,
            vocab_size: vocab,
            words_per_record: (1, 4),
            word_len: (3, 18),
            zipf_s: 1.0,
            seed,
        }
    }

    /// Lower-case name, as used in `--scale` and the BENCH JSON.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Large => "large",
        }
    }
}

/// Read `--scale` from argv (defaulting to medium); returns remaining args.
pub fn scale_from_args() -> (Scale, Vec<String>) {
    let mut scale = Scale::Medium;
    let mut rest = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--scale" {
            let v = args.next().unwrap_or_default();
            scale = Scale::parse(&v).unwrap_or_else(|| {
                eprintln!("unknown scale {v:?}; use small|medium|large");
                std::process::exit(2);
            });
        } else {
            rest.push(a);
        }
    }
    (scale, rest)
}

/// Build the word-occurrence database of the paper's Section VIII-A: the
/// corpus is tokenized into words, and **every word occurrence** becomes
/// one record (a 3-gram set) with its own id.
pub fn word_collection(scale: Scale) -> (Corpus, SetCollection) {
    word_collection_seeded(scale, 42)
}

/// [`word_collection`] with an explicit corpus seed (harness runs).
pub fn word_collection_seeded(scale: Scale, seed: u64) -> (Corpus, SetCollection) {
    let corpus = Corpus::generate(&scale.corpus_config_seeded(seed));
    let mut builder = setsim_core::CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    for w in corpus.words() {
        builder.add(w);
    }
    let collection = builder.build();
    (corpus, collection)
}

/// The paper's query workload: `n` words drawn from the database in a
/// gram-count bucket, each perturbed by `modifications` edits.
pub fn workload(
    corpus: &Corpus,
    bucket: LengthBucket,
    modifications: usize,
    n: usize,
    seed: u64,
) -> QueryWorkload {
    QueryWorkload::generate(corpus.words(), bucket, 3, modifications, n, seed)
}

/// The algorithm roster of the evaluation (Figures 6 and 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Multiway merge over id-sorted lists.
    SortById,
    /// Relational baseline (q-gram table + clustered B-tree).
    Sql,
    /// Classic Threshold Algorithm.
    Ta,
    /// Classic No-Random-Access algorithm (with the paper's bookkeeping
    /// reducers — textbook NRA does not finish at scale).
    Nra,
    /// Improved NRA (Algorithm 2).
    INra,
    /// Improved TA.
    ITa,
    /// Shortest-First (Algorithm 3).
    Sf,
    /// Hybrid (Algorithm 4).
    Hybrid,
}

impl Algo {
    /// Full roster in the paper's legend order.
    pub const ALL: [Algo; 8] = [
        Algo::SortById,
        Algo::Sql,
        Algo::Ta,
        Algo::Nra,
        Algo::INra,
        Algo::ITa,
        Algo::Sf,
        Algo::Hybrid,
    ];

    /// Inverted-list roster (Figure 7 excludes SQL).
    pub const LISTS_ONLY: [Algo; 7] = [
        Algo::SortById,
        Algo::Ta,
        Algo::Nra,
        Algo::INra,
        Algo::ITa,
        Algo::Sf,
        Algo::Hybrid,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algo::SortById => "sort-by-id",
            Algo::Sql => "SQL",
            Algo::Ta => "TA",
            Algo::Nra => "NRA",
            Algo::INra => "iNRA",
            Algo::ITa => "iTA",
            Algo::Sf => "SF",
            Algo::Hybrid => "Hybrid",
        }
    }

    /// Engine dispatch kind; `None` for the relational baseline, which
    /// does not run on inverted lists.
    pub fn kind(self) -> Option<AlgorithmKind> {
        match self {
            Algo::SortById => Some(AlgorithmKind::Merge),
            Algo::Sql => None,
            Algo::Ta => Some(AlgorithmKind::Ta),
            Algo::Nra => Some(AlgorithmKind::Nra),
            Algo::INra => Some(AlgorithmKind::INra),
            Algo::ITa => Some(AlgorithmKind::ITa),
            Algo::Sf => Some(AlgorithmKind::Sf),
            Algo::Hybrid => Some(AlgorithmKind::Hybrid),
        }
    }
}

/// A context holding everything a query run needs.
pub struct Engines<'c> {
    /// The inverted-list index.
    pub index: InvertedIndex<'c>,
    /// The relational baseline (None to skip building it).
    pub sql: Option<SqlBaseline>,
    /// Warm scratch shared across runs, so workload timings measure the
    /// algorithms rather than per-query allocation.
    scratch: RefCell<Scratch>,
}

impl<'c> Engines<'c> {
    /// Build index + SQL baseline with default options.
    pub fn build(collection: &'c SetCollection) -> Self {
        Self::build_with(collection, setsim_core::IndexOptions::default(), true)
    }

    /// Build with explicit index options; `with_sql` controls whether the
    /// relational baseline is materialized.
    pub fn build_with(
        collection: &'c SetCollection,
        options: setsim_core::IndexOptions,
        with_sql: bool,
    ) -> Self {
        let index = InvertedIndex::build(collection, options);
        let sql = with_sql.then(|| SqlBaseline::build(collection, index.weights()));
        Self {
            index,
            sql,
            scratch: RefCell::new(Scratch::default()),
        }
    }

    /// Run one algorithm on one prepared query (through the engine's
    /// warm-scratch execution path; SQL runs its own relational plan).
    pub fn run(
        &self,
        algo: Algo,
        config: AlgoConfig,
        q: &PreparedQuery,
        tau: f64,
    ) -> SearchOutcome {
        let Some(kind) = algo.kind() else {
            return self
                .sql
                .as_ref()
                .expect("SQL baseline not built")
                .search(q, tau);
        };
        let req = SearchRequest::new(q)
            .tau(tau)
            .algorithm(kind)
            .config(config);
        let mut scratch = self.scratch.borrow_mut();
        engine::execute(&self.index, &mut scratch, &req).expect("valid bench request")
    }
}

/// Aggregated outcome of one algorithm over one workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadResult {
    /// Mean wall-clock milliseconds per query.
    pub avg_ms: f64,
    /// Mean results returned per query.
    pub avg_results: f64,
    /// Merged access statistics over the workload.
    pub stats: SearchStats,
}

/// Run `algo` over every query of a workload at threshold `tau`.
pub fn run_workload(
    engines: &Engines<'_>,
    algo: Algo,
    config: AlgoConfig,
    queries: &[PreparedQuery],
    tau: f64,
) -> WorkloadResult {
    let mut stats = SearchStats::default();
    let mut total_results = 0usize;
    let start = Instant::now();
    for q in queries {
        let out = engines.run(algo, config, q, tau);
        total_results += out.results.len();
        stats.merge(&out.stats);
    }
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    let n = queries.len().max(1) as f64;
    WorkloadResult {
        avg_ms: elapsed / n,
        avg_results: total_results as f64 / n,
        stats,
    }
}

/// Prepare a workload's query strings against the index.
pub fn prepare_queries(index: &InvertedIndex<'_>, workload: &QueryWorkload) -> Vec<PreparedQuery> {
    workload
        .queries()
        .iter()
        .map(|s| index.prepare_query_str(s))
        .collect()
}

/// Render an aligned text table: row labels × column labels.
pub fn print_table(title: &str, col_labels: &[String], rows: &[(String, Vec<String>)]) {
    println!("\n## {title}");
    let label_w = rows
        .iter()
        .map(|(l, _)| l.len())
        .chain(std::iter::once(9))
        .max()
        .unwrap();
    let col_w = col_labels
        .iter()
        .map(std::string::String::len)
        .chain(
            rows.iter()
                .flat_map(|(_, v)| v.iter().map(std::string::String::len)),
        )
        .max()
        .unwrap_or(8)
        .max(8);
    print!("{:label_w$}", "");
    for c in col_labels {
        print!("  {c:>col_w$}");
    }
    println!();
    for (label, cells) in rows {
        print!("{label:label_w$}");
        for cell in cells {
            print!("  {cell:>col_w$}");
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_pipeline_runs() {
        let (corpus, collection) = word_collection(Scale::Small);
        let engines = Engines::build(&collection);
        let wl = workload(&corpus, LengthBucket::PAPER[2], 0, 5, 1);
        let queries = prepare_queries(&engines.index, &wl);
        assert!(!queries.is_empty());
        let mut reference: Option<Vec<setsim_core::SetId>> = None;
        for algo in Algo::ALL {
            let out = engines.run(algo, AlgoConfig::default(), &queries[0], 0.8);
            let mut ids: Vec<_> = out.results.iter().map(|m| m.id).collect();
            ids.sort_unstable();
            match &reference {
                None => reference = Some(ids),
                Some(r) => assert_eq!(&ids, r, "{} disagrees", algo.name()),
            }
        }
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("nope"), None);
    }

    #[test]
    fn workload_result_aggregates() {
        let (corpus, collection) = word_collection(Scale::Small);
        let engines = Engines::build(&collection);
        let wl = workload(&corpus, LengthBucket::PAPER[1], 0, 10, 2);
        let queries = prepare_queries(&engines.index, &wl);
        let r = run_workload(&engines, Algo::Sf, AlgoConfig::default(), &queries, 0.8);
        // Every query has at least its exact match.
        assert!(r.avg_results >= 1.0, "avg_results = {}", r.avg_results);
        assert!(r.stats.total_list_elements > 0);
    }
}
