//! Minimal hand-rolled JSON value, writer, and parser.
//!
//! The bench harness emits machine-readable `BENCH_<label>.json` reports
//! and `cargo xtask bench-diff` parses them back. The workspace builds
//! offline with zero external dependencies (no serde — see the shim
//! policy in the root manifest), so this module implements the small
//! JSON subset the reports need, end to end:
//!
//! * [`Json`] — the value tree. Objects preserve insertion order, so a
//!   report serializes with a stable, diff-friendly key order.
//! * [`Json::render`] / [`Json::pretty`] — the writer. Strings are
//!   escaped per RFC 8259 (quote, backslash, and control characters;
//!   everything else is emitted as raw UTF-8). Numbers use Rust's
//!   shortest-round-trip `f64` formatting, with the integer fast path
//!   (`42`, not `42.0`) for values that are exactly integral, so
//!   counter sections are byte-stable across runs.
//! * [`Json::parse`] — a recursive-descent parser accepting exactly the
//!   writer's output plus standard JSON flexibility (whitespace, `\u`
//!   escapes including surrogate pairs, scientific notation).
//!
//! `parse(render(v)) == v` for every value this module can produce; the
//! property is enforced by `tests/json_roundtrip.rs`.

use std::fmt;

/// Largest integer magnitude exactly representable in an `f64`.
const MAX_EXACT_INT: f64 = 9_007_199_254_740_992.0; // 2^53

/// A JSON value. Numbers are `f64` (the reports carry counters below
/// 2^53 and latencies, both exact); object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key–value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object builder seed: `Json::obj().field("k", v)…`.
    #[must_use]
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a field to an object (panics on non-objects — builder
    /// misuse is a programming error in the bench crate, not input).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value.into())),
            other => panic!("Json::field on non-object {other:?}"),
        }
        self
    }

    /// Member lookup on an object; `None` on missing keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number value as an exact non-negative integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= MAX_EXACT_INT => {
                // lint: allow — fract()==0 and range-checked above, exact.
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key–value pairs, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Compact serialization (no whitespace).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization: two-space indentation, one member per line.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                let (k, v) = &pairs[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, depth + 1);
            }),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        // lint: allow — counters stay far below 2^53 in practice; the
        // writer emits the integer fast path for exact values.
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::from(n as u64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// Emit a number: exact integers in integer form (byte-stable counter
/// sections), everything else via shortest-round-trip `f64` formatting.
/// Non-finite values cannot come from the report pipeline; they fall
/// back to `null` rather than producing invalid JSON.
fn write_number(out: &mut String, n: f64) {
    use fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= MAX_EXACT_INT {
        // lint: allow — fract()==0 and |n| ≤ 2^53, exact in i64.
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
    out.push(close);
}

/// A parse failure: what went wrong and the byte offset it was noticed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

/// Nesting ceiling: reports are ~4 levels deep; 128 guards the parser's
/// recursion against adversarial input without limiting real documents.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nested too deeply"));
        }
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            self.expect(b',')?;
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(pairs));
            }
            self.expect(b',')?;
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let _ = self.eat(b'-');
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if !self.eat(b'-') {
                let _ = self.eat(b'+');
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err(format!("invalid number `{text}`"))),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes is one UTF-8 slice copy.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let Some(&b) = self.bytes.get(self.pos) else {
            return Err(self.err("unterminated escape"));
        };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let c = if (0xd800..0xdc00).contains(&hi) {
                    // Surrogate pair: a second \uXXXX must follow.
                    if !(self.eat(b'\\') && self.eat(b'u')) {
                        return Err(self.err("lone high surrogate"));
                    }
                    let lo = self.hex4()?;
                    if !(0xdc00..0xe000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                    char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("lone low surrogate"))?
                };
                out.push(c);
            }
            other => return Err(self.err(format!("invalid escape `\\{}`", other as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_and_parse() {
        for (v, text) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::Bool(false), "false"),
            (Json::Num(42.0), "42"),
            (Json::Num(-7.0), "-7"),
            (Json::Num(1.5), "1.5"),
            (Json::Str("hi".into()), "\"hi\""),
        ] {
            assert_eq!(v.render(), text);
            assert_eq!(Json::parse(text).unwrap(), v);
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::obj().field("b", 1u64).field("a", 2u64);
        assert_eq!(v.render(), "{\"b\":1,\"a\":2}");
        let back = Json::parse(&v.render()).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("a").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{0007}f→g";
        let v = Json::Str(s.to_string());
        let text = v.render();
        assert!(text.contains("\\u0007"), "{text}");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap(),
            Json::Str("Aé😀".to_string())
        );
        assert!(Json::parse("\"\\ud83d\"").is_err(), "lone high surrogate");
        assert!(Json::parse("\"\\udc00\"").is_err(), "lone low surrogate");
    }

    #[test]
    fn numbers_parse_with_exponents() {
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("-2.5E-1").unwrap(), Json::Num(-0.25));
        assert!(Json::parse("1e400").is_err(), "overflows to infinity");
    }

    #[test]
    fn pretty_output_reparses() {
        let v = Json::obj()
            .field("xs", Json::Arr(vec![Json::Num(1.0), Json::Null]))
            .field("o", Json::obj().field("k", "v"))
            .field("empty", Json::Arr(Vec::new()));
        let pretty = v.pretty();
        assert!(pretty.contains("\n  \"xs\": ["), "{pretty}");
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "nul",
            "\"",
            "01x",
            "[1] 2",
            "{\"a\":1,}",
            "[,]",
            "\u{0007}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_guards_recursion() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("nested"), "{err}");
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("3".into()).as_u64(), None);
    }

    #[test]
    fn error_reports_offset() {
        let err = Json::parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"), "{err}");
    }
}
