//! Noise-aware comparison of two [`BenchReport`]s — the logic behind
//! `cargo xtask bench-diff <baseline.json> <candidate.json>`.
//!
//! The gate's core asymmetry: **counters are exact, latency is noisy.**
//! Access counters ([`crate::report::CounterSection`]) are deterministic
//! functions of (scale, seed, workload, algorithm), so *any* drift is a
//! real behavioral change and fails the comparison. Wall clock depends
//! on the machine and its load, so latency drift only fails beyond a
//! configurable relative band (default
//! [`DiffOptions::DEFAULT_LATENCY_BAND_PCT`]%), and CI downgrades even
//! that to a warning on pull requests (`latency_advisory`).
//!
//! Comparisons are refused outright when the reports are not
//! comparable: different schema versions, scales, or seeds measure
//! different experiments, and no band makes that honest. Environment
//! differences (host, rev, profile) are reported as context, with a
//! debug-profile candidate escalated to a warning.

use crate::report::{BenchReport, COUNTER_FIELDS};
use std::fmt::Write as _;

/// Tuning knobs for a comparison.
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Allowed relative slowdown of `min_ms_per_query`, percent.
    pub latency_band_pct: f64,
    /// Report latency regressions but do not count them as failures
    /// (CI uses this on pull requests, where runners are noisy).
    pub latency_advisory: bool,
}

impl DiffOptions {
    /// Default latency tolerance band, percent.
    pub const DEFAULT_LATENCY_BAND_PCT: f64 = 15.0;
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            latency_band_pct: Self::DEFAULT_LATENCY_BAND_PCT,
            latency_advisory: false,
        }
    }
}

/// Outcome of a comparison: the rendered report plus failure counts.
#[derive(Debug, Clone)]
pub struct DiffOutcome {
    /// Human-readable per-algorithm report.
    pub report: String,
    /// Counter deviations (each one fails the gate).
    pub counter_regressions: usize,
    /// Latency slowdowns beyond the band.
    pub latency_regressions: usize,
    /// Non-fatal observations (env mismatch, improvements, new rows).
    pub warnings: usize,
}

impl DiffOutcome {
    /// Whether the gate fails under `opts`: any counter drift always
    /// fails; latency drift fails unless advisory.
    #[must_use]
    pub fn failed(&self, opts: &DiffOptions) -> bool {
        self.counter_regressions > 0 || (self.latency_regressions > 0 && !opts.latency_advisory)
    }
}

/// Compare `candidate` against `baseline`. `Err` means the reports are
/// not comparable at all (schema/scale/seed mismatch or malformed
/// structure); `Ok` carries the per-algorithm verdicts.
pub fn diff(
    baseline: &BenchReport,
    candidate: &BenchReport,
    opts: &DiffOptions,
) -> Result<DiffOutcome, String> {
    if baseline.schema_version != candidate.schema_version {
        return Err(format!(
            "schema_version mismatch: baseline {} vs candidate {}",
            baseline.schema_version, candidate.schema_version
        ));
    }
    if baseline.scale != candidate.scale {
        return Err(format!(
            "scale mismatch: baseline `{}` vs candidate `{}` — different experiments",
            baseline.scale, candidate.scale
        ));
    }
    if baseline.seed != candidate.seed {
        return Err(format!(
            "seed mismatch: baseline {} vs candidate {} — workloads differ",
            baseline.seed, candidate.seed
        ));
    }

    let mut out = DiffOutcome {
        report: String::new(),
        counter_regressions: 0,
        latency_regressions: 0,
        warnings: 0,
    };
    let r = &mut out.report;
    let _ = writeln!(
        r,
        "bench-diff: scale={} seed={} (band ±{:.0}% on min ms/query{})",
        baseline.scale,
        baseline.seed,
        opts.latency_band_pct,
        if opts.latency_advisory {
            ", advisory"
        } else {
            ""
        }
    );
    let _ = writeln!(
        r,
        "  baseline : {} @ {} ({}, {})",
        baseline.env.host, baseline.env.rev, baseline.env.os, baseline.env.profile
    );
    let _ = writeln!(
        r,
        "  candidate: {} @ {} ({}, {})",
        candidate.env.host, candidate.env.rev, candidate.env.os, candidate.env.profile
    );
    if baseline.env.host != candidate.env.host {
        let _ = writeln!(r, "  note: different hosts — latency is not comparable");
        out.warnings += 1;
    }
    if candidate.env.profile == "debug" {
        let _ = writeln!(r, "  warning: candidate measured in a debug build");
        out.warnings += 1;
    }

    for base_wl in &baseline.workloads {
        let _ = writeln!(r, "\nworkload {}", base_wl.label);
        let Some(cand_wl) = candidate
            .workloads
            .iter()
            .find(|w| w.label == base_wl.label)
        else {
            let _ = writeln!(r, "  MISSING in candidate");
            out.counter_regressions += 1;
            continue;
        };
        for base_algo in &base_wl.algos {
            let Some(cand_algo) = cand_wl.algo(&base_algo.name) else {
                let _ = writeln!(r, "  {:10} MISSING in candidate", base_algo.name);
                out.counter_regressions += 1;
                continue;
            };
            let mut drifted = Vec::new();
            for field in COUNTER_FIELDS {
                let (b, c) = (
                    base_algo.counters.get(field).unwrap_or(0),
                    cand_algo.counters.get(field).unwrap_or(0),
                );
                if b != c {
                    drifted.push((field, b, c));
                }
            }
            let (lb, lc) = (
                base_algo.latency.min_ms_per_query,
                cand_algo.latency.min_ms_per_query,
            );
            let lat_delta_pct = if lb > 0.0 {
                100.0 * (lc - lb) / lb
            } else {
                0.0
            };
            let lat_slow = lat_delta_pct > opts.latency_band_pct;
            let lat_fast = lat_delta_pct < -opts.latency_band_pct;

            if drifted.is_empty() && !lat_slow {
                let _ = writeln!(
                    r,
                    "  {:10} ok   counters exact · min {:.3} → {:.3} ms/q ({:+.1}%){}",
                    base_algo.name,
                    lb,
                    lc,
                    lat_delta_pct,
                    if lat_fast { " — faster" } else { "" }
                );
                if lat_fast {
                    out.warnings += 1;
                }
                continue;
            }
            if !drifted.is_empty() {
                let _ = writeln!(r, "  {:10} COUNTER DRIFT", base_algo.name);
                for (field, b, c) in &drifted {
                    let _ = writeln!(
                        r,
                        "      {field:22} {b:>14} -> {c:>14}  ({})",
                        pct_delta(*b, *c)
                    );
                    out.counter_regressions += 1;
                }
            }
            if lat_slow {
                let _ = writeln!(
                    r,
                    "  {:10} LATENCY      min {:.3} -> {:.3} ms/q ({:+.1}%, band ±{:.0}%){}",
                    base_algo.name,
                    lb,
                    lc,
                    lat_delta_pct,
                    opts.latency_band_pct,
                    if opts.latency_advisory {
                        " [advisory]"
                    } else {
                        ""
                    }
                );
                out.latency_regressions += 1;
            }
        }
        for cand_algo in &cand_wl.algos {
            if base_wl.algo(&cand_algo.name).is_none() {
                let _ = writeln!(r, "  {:10} new in candidate (no baseline)", cand_algo.name);
                out.warnings += 1;
            }
        }
    }
    for cand_wl in &candidate.workloads {
        if !baseline.workloads.iter().any(|w| w.label == cand_wl.label) {
            let _ = writeln!(r, "\nworkload {} — new in candidate", cand_wl.label);
            out.warnings += 1;
        }
    }

    let _ = writeln!(
        r,
        "\nverdict: {} counter regression(s), {} latency regression(s), {} warning(s)",
        out.counter_regressions, out.latency_regressions, out.warnings
    );
    Ok(out)
}

fn pct_delta(b: u64, c: u64) -> String {
    if b == 0 {
        return "was 0".to_string();
    }
    // lint: allow — counters below 2^53, exact in f64.
    format!("{:+.1}%", 100.0 * (c as f64 - b as f64) / b as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{
        AlgoReport, BenchReport, CounterSection, EnvFingerprint, LatencySection, WorkloadReport,
        SCHEMA_VERSION,
    };

    fn report(elements_read: u64, min_ms: f64) -> BenchReport {
        let counters = CounterSection {
            queries: 10,
            matches: 12,
            elements_read,
            random_probes: 20,
            elements_skipped: 100,
            candidates_inserted: 50,
            candidate_scan_steps: 75,
            rounds: 30,
            records_scanned: 0,
            total_list_elements: 2000,
            shards_pruned: 0,
            shard_pruned_elements: 0,
            pages_touched: 0,
            page_cache_hits: 0,
            page_cache_misses: 0,
        };
        BenchReport {
            schema_version: SCHEMA_VERSION,
            label: "t".to_string(),
            scale: "small".to_string(),
            seed: 42,
            warmup: 1,
            reps: 3,
            env: EnvFingerprint {
                host: "h".to_string(),
                os: "linux".to_string(),
                arch: "x86_64".to_string(),
                rev: "abc".to_string(),
                profile: "release".to_string(),
            },
            workloads: vec![WorkloadReport {
                label: "tau=0.8".to_string(),
                tau: 0.8,
                queries: 10,
                algos: vec![AlgoReport {
                    name: "SF".to_string(),
                    counters,
                    latency: LatencySection::from_samples(&[min_ms, min_ms * 1.1, min_ms * 1.2]),
                }],
            }],
        }
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(500, 0.4);
        let out = diff(&r, &r.clone(), &DiffOptions::default()).unwrap();
        assert_eq!(out.counter_regressions, 0);
        assert_eq!(out.latency_regressions, 0);
        assert!(!out.failed(&DiffOptions::default()), "{}", out.report);
        assert!(out.report.contains("ok"), "{}", out.report);
    }

    #[test]
    fn doubled_counter_is_caught() {
        // The acceptance scenario: a 2× elements_read inflation must fail
        // with a readable per-algorithm report.
        let base = report(500, 0.4);
        let cand = report(1000, 0.4);
        let out = diff(&base, &cand, &DiffOptions::default()).unwrap();
        assert_eq!(out.counter_regressions, 1);
        assert!(out.failed(&DiffOptions::default()));
        assert!(out.report.contains("COUNTER DRIFT"), "{}", out.report);
        assert!(out.report.contains("elements_read"), "{}", out.report);
        assert!(out.report.contains("+100.0%"), "{}", out.report);
    }

    #[test]
    fn in_band_latency_wobble_passes() {
        // 10% slower min-of-k with exact counters: inside the 15% band.
        let base = report(500, 0.40);
        let cand = report(500, 0.44);
        let out = diff(&base, &cand, &DiffOptions::default()).unwrap();
        assert_eq!(out.latency_regressions, 0);
        assert!(!out.failed(&DiffOptions::default()), "{}", out.report);
    }

    #[test]
    fn out_of_band_latency_fails_unless_advisory() {
        let base = report(500, 0.40);
        let cand = report(500, 0.60); // +50%
        let strict = DiffOptions::default();
        let out = diff(&base, &cand, &strict).unwrap();
        assert_eq!(out.latency_regressions, 1);
        assert!(out.failed(&strict));
        assert!(out.report.contains("LATENCY"), "{}", out.report);

        let advisory = DiffOptions {
            latency_advisory: true,
            ..DiffOptions::default()
        };
        let out = diff(&base, &cand, &advisory).unwrap();
        assert_eq!(out.latency_regressions, 1);
        assert!(!out.failed(&advisory), "advisory mode must not fail");
    }

    #[test]
    fn latency_improvement_is_not_a_regression() {
        let base = report(500, 0.40);
        let cand = report(500, 0.10);
        let out = diff(&base, &cand, &DiffOptions::default()).unwrap();
        assert_eq!(out.latency_regressions, 0);
        assert!(!out.failed(&DiffOptions::default()));
        assert!(out.report.contains("faster"), "{}", out.report);
    }

    #[test]
    fn wider_band_tolerates_more() {
        let base = report(500, 0.40);
        let cand = report(500, 0.50); // +25%
        assert!(diff(&base, &cand, &DiffOptions::default())
            .unwrap()
            .failed(&DiffOptions::default()));
        let wide = DiffOptions {
            latency_band_pct: 30.0,
            ..DiffOptions::default()
        };
        assert!(!diff(&base, &cand, &wide).unwrap().failed(&wide));
    }

    #[test]
    fn incomparable_reports_are_refused() {
        let base = report(500, 0.4);
        let mut cand = report(500, 0.4);
        cand.seed = 7;
        assert!(diff(&base, &cand, &DiffOptions::default())
            .unwrap_err()
            .contains("seed mismatch"));
        let mut cand = report(500, 0.4);
        cand.scale = "large".to_string();
        assert!(diff(&base, &cand, &DiffOptions::default())
            .unwrap_err()
            .contains("scale mismatch"));
        let mut cand = report(500, 0.4);
        cand.schema_version = 2;
        assert!(diff(&base, &cand, &DiffOptions::default())
            .unwrap_err()
            .contains("schema_version"));
    }

    #[test]
    fn missing_algo_or_workload_fails() {
        let base = report(500, 0.4);
        let mut cand = report(500, 0.4);
        cand.workloads[0].algos.clear();
        let out = diff(&base, &cand, &DiffOptions::default()).unwrap();
        assert!(out.counter_regressions > 0);
        assert!(out.report.contains("MISSING"), "{}", out.report);

        let mut cand = report(500, 0.4);
        cand.workloads.clear();
        let out = diff(&base, &cand, &DiffOptions::default()).unwrap();
        assert!(out.counter_regressions > 0);
    }

    #[test]
    fn debug_candidate_warns() {
        let base = report(500, 0.4);
        let mut cand = report(500, 0.4);
        cand.env.profile = "debug".to_string();
        let out = diff(&base, &cand, &DiffOptions::default()).unwrap();
        assert!(out.warnings > 0);
        assert!(out.report.contains("debug build"), "{}", out.report);
    }
}
