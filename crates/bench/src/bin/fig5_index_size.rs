//! Figure 5 — index size per structure and per approach.
//!
//! The paper's bars: the SQL approach needs the base table, the q-gram
//! table, and the clustered composite B-tree; TA needs inverted lists +
//! skip lists + extendible hashing; NRA/iNRA/iTA need lists + skip lists;
//! SF/Hybrid the same. Extendible hashing dominates TA's budget and the
//! q-gram table + B-tree dominate SQL's — both far above the raw data.
//!
//! Usage: `fig5_index_size [--scale small|medium|large]`

use setsim_bench::{print_table, scale_from_args, word_collection, Engines};

fn mb(bytes: usize) -> String {
    format!("{:.2} MB", bytes as f64 / (1024.0 * 1024.0))
}

fn main() {
    let (scale, _) = scale_from_args();
    let (_corpus, collection) = word_collection(scale);
    let engines = Engines::build(&collection);
    let sql = engines.sql.as_ref().expect("sql baseline");

    let base = collection.base_table_bytes();
    let (qgram_table, btree) = sql.size_bytes();
    let (lists, skips, hashing) = engines.index.size_bytes();

    println!("# Figure 5: index size");
    println!(
        "# {} sets, {} distinct tokens, {} postings",
        collection.len(),
        collection.dict().len(),
        engines.index.total_postings()
    );

    print_table(
        "Per-structure sizes",
        &["size".into()],
        &[
            ("base table".into(), vec![mb(base)]),
            ("q-gram table".into(), vec![mb(qgram_table)]),
            ("B-tree (clustered)".into(), vec![mb(btree)]),
            ("inverted lists".into(), vec![mb(lists)]),
            (
                "  (delta+varint compressed)".into(),
                vec![mb(engines.index.compressed_lists_bytes())],
            ),
            ("skip lists".into(), vec![mb(skips)]),
            ("extendible hashing".into(), vec![mb(hashing)]),
        ],
    );

    print_table(
        "Per-approach totals (the paper's bars)",
        &["total".into(), "x base".into()],
        &[
            (
                "SQL (table+B-tree)".into(),
                vec![
                    mb(base + qgram_table + btree),
                    format!("{:.1}", (base + qgram_table + btree) as f64 / base as f64),
                ],
            ),
            (
                "TA/iTA (lists+skip+hash)".into(),
                vec![
                    mb(lists + skips + hashing),
                    format!("{:.1}", (lists + skips + hashing) as f64 / base as f64),
                ],
            ),
            (
                "NRA/iNRA (lists+skip)".into(),
                vec![
                    mb(lists + skips),
                    format!("{:.1}", (lists + skips) as f64 / base as f64),
                ],
            ),
            (
                "SF/Hybrid (lists+skip)".into(),
                vec![
                    mb(lists + skips),
                    format!("{:.1}", (lists + skips) as f64 / base as f64),
                ],
            ),
        ],
    );
    println!("\n# Expectation (paper): every approach is several times the base table;");
    println!("# SQL is largest; extendible hashing is a heavy extra cost paid only by TA/iTA.");
}
