//! Physical-I/O replay of the SF-vs-TA trade-off on simulated disk.
//!
//! The wall-clock figures run in memory; this binary makes the paper's
//! central I/O argument *physical*: the index's weight-sorted lists are
//! laid out on a simulated page device (delta+varint, one block per 4 KiB
//! page), and a query workload is replayed two ways —
//!
//! * **SF-style**: one `seek_range` per list over the Length Boundedness
//!   window `[τ·len(q), len(q)/τ]` — a random landing plus a sequential
//!   run of pages;
//! * **iTA-style**: the same windows *plus* the random hash-bucket page
//!   probes iTA actually issues (measured by running the algorithm), one
//!   page each by extendible hashing's guarantee.
//!
//! Page tallies go through an LRU buffer pool and are priced with a
//! 2008-era HDD model and an NVMe model.
//!
//! Usage: `disk_io_model [--scale small|medium|large]`

use setsim_bench::{prepare_queries, scale_from_args, word_collection, workload, Engines};
use setsim_core::properties;
use setsim_datagen::LengthBucket;
use setsim_storage::{BufferPool, CostModel, PagedPostings, SimulatedDisk};
use std::collections::HashMap;

fn main() {
    let (scale, _) = scale_from_args();
    let (corpus, collection) = word_collection(scale);
    let engines = Engines::build_with(&collection, setsim_core::IndexOptions::default(), false);
    let index = &engines.index;

    // Lay every list out on the simulated disk.
    let mut disk = SimulatedDisk::new(4096);
    let mut paged: HashMap<u32, PagedPostings> = HashMap::new();
    for (token, _) in collection.dict().iter() {
        if let Some(list) = index.list(token) {
            let entries: Vec<setsim_collections::CodecEntry> = list
                .postings()
                .iter()
                .map(|p| setsim_collections::CodecEntry {
                    key: p.len.to_bits(),
                    id: p.id.0,
                })
                .collect();
            paged.insert(token.0, PagedPostings::store(&mut disk, &entries));
        }
    }
    println!(
        "# disk layout: {} lists over {} pages ({:.1} MB at 4 KiB)",
        paged.len(),
        disk.num_pages(),
        disk.size_bytes() as f64 / (1024.0 * 1024.0)
    );

    let wl = workload(&corpus, LengthBucket::PAPER[2], 0, 100, 61);
    let queries = prepare_queries(index, &wl);
    let tau = 0.8;
    // The paper disables software buffers; a small pool models the OS
    // cache over a 100-query session.
    let pool_pages = disk.num_pages() / 10 + 1;

    // SF-style replay: one window read per list.
    disk.reset_stats();
    let mut pool = BufferPool::new(pool_pages);
    for q in &queries {
        let (lo, hi) = properties::length_bounds(tau, q.len);
        for qt in &q.tokens {
            if let Some(p) = paged.get(&qt.token.0) {
                let _ = p.seek_range(&mut disk, &mut pool, lo.to_bits(), hi.to_bits());
            }
        }
    }
    let sf_stats = disk.stats();
    let sf_hit = pool.hit_ratio();

    // iTA-style replay: the same windows (iTA uses the same length-bound
    // seeks), plus the random hash-page probes iTA *actually issues* —
    // measured by running the algorithm on the in-memory index (each
    // probe is one bucket page by extendible hashing's guarantee).
    disk.reset_stats();
    let mut pool = BufferPool::new(pool_pages);
    let mut probe_pages = 0u64;
    {
        use setsim_core::SelectionAlgorithm;
        let ita = setsim_core::ITaAlgorithm::default();
        for q in &queries {
            let (lo, hi) = properties::length_bounds(tau, q.len);
            for qt in &q.tokens {
                if let Some(p) = paged.get(&qt.token.0) {
                    let _ = p.seek_range(&mut disk, &mut pool, lo.to_bits(), hi.to_bits());
                }
            }
            probe_pages += ita.search(index, q, tau).stats.random_probes;
        }
    }
    let mut ta_stats = disk.stats();
    ta_stats.random_reads += probe_pages;
    let ta_hit = pool.hit_ratio();

    let hdd = CostModel::hdd_2008();
    let nvme = CostModel::nvme();
    println!("\n# 100 queries, 11-15 grams, tau={tau} (pool: {pool_pages} pages)");
    println!("                    SF-style       iTA-style");
    println!(
        "pages sequential    {:>8}        {:>8}",
        sf_stats.sequential_reads, ta_stats.sequential_reads
    );
    println!(
        "pages random        {:>8}        {:>8}",
        sf_stats.random_reads, ta_stats.random_reads
    );
    println!(
        "pool hit ratio      {:>7.1}%        {:>7.1}%",
        100.0 * sf_hit,
        100.0 * ta_hit
    );
    println!(
        "HDD-2008 ms/query   {:>8.2}        {:>8.2}   ({:.0}x)",
        hdd.read_ms(&sf_stats) / 100.0,
        hdd.read_ms(&ta_stats) / 100.0,
        hdd.read_ms(&ta_stats) / hdd.read_ms(&sf_stats).max(1e-9)
    );
    println!(
        "NVMe ms/query       {:>8.3}        {:>8.3}   ({:.0}x)",
        nvme.read_ms(&sf_stats) / 100.0,
        nvme.read_ms(&ta_stats) / 100.0,
        nvme.read_ms(&ta_stats) / nvme.read_ms(&sf_stats).max(1e-9)
    );
    println!("\n# Expectation (paper): the TA family's per-element random I/O makes it");
    println!("# orders of magnitude slower than SF on disk, despite higher pruning.");
}
