//! Figure 6 — wall-clock time of all algorithms as a function of
//! (a) threshold, (b) query size, and (c) modifications per query word.
//!
//! Usage: `fig6_time [--scale ...] [--json] [threshold|querysize|modifications]`
//! (no sweep argument runs all three).
//!
//! Measurements go through [`setsim_bench::report::measure_workload`] —
//! the same warmup / min-of-k / counter pipeline as `setsim-bench
//! harness` — so the text tables and the `--json` report are two views
//! of one schema ([`BenchReport`]). With `--json`, stdout carries one
//! JSON document and nothing else; the tables move to stderr-free
//! silence.

use setsim_bench::report::{
    measure_workload, print_figure, BenchReport, EnvFingerprint, Metric, Passes, WorkloadReport,
    SCHEMA_VERSION,
};
use setsim_bench::{prepare_queries, scale_from_args, word_collection, workload, Algo, Engines};
use setsim_core::AlgoConfig;
use setsim_datagen::LengthBucket;

const QUERIES: usize = 100;
/// Base query-workload seed; the sweeps derive their per-column seeds
/// from it exactly as the pre-report version did (61, 62+bucket, 66+mods)
/// so the measured workloads are unchanged.
const FIG_SEED: u64 = 61;
const WARMUP: usize = 1;
const REPS: usize = 3;

/// A workload report minus one algorithm row — used to drop SQL from the
/// modeled-disk table, whose constants describe inverted-list I/O.
fn without(w: &WorkloadReport, name: &str) -> WorkloadReport {
    let mut filtered = w.clone();
    filtered.algos.retain(|a| a.name != name);
    filtered
}

fn result_counts(columns: &[WorkloadReport]) -> String {
    columns
        .iter()
        .map(|w| {
            w.algo(Algo::Sf.name()).map_or_else(
                || "-".to_string(),
                // lint: allow — counters well below 2^53.
                |a| format!("{:.0}", a.counters.matches as f64 / w.queries.max(1) as f64),
            )
        })
        .collect::<Vec<_>>()
        .join("  ")
}

fn sweep_threshold(engines: &Engines<'_>, corpus: &setsim_datagen::Corpus) -> Vec<WorkloadReport> {
    // 11-15 grams, 0 modifications, tau in {0.6, 0.7, 0.8, 0.9}.
    let wl = workload(corpus, LengthBucket::PAPER[2], 0, QUERIES, FIG_SEED);
    let queries = prepare_queries(&engines.index, &wl);
    [0.6, 0.7, 0.8, 0.9]
        .iter()
        .map(|&tau| {
            measure_workload(
                engines,
                &Algo::ALL,
                AlgoConfig::default(),
                &queries,
                tau,
                &format!("tau={tau} 11-15g 0mods"),
                Passes {
                    warmup: WARMUP,
                    reps: REPS,
                },
            )
        })
        .collect()
}

fn print_threshold(columns: &[WorkloadReport]) {
    let labels: Vec<String> = columns.iter().map(|w| format!("tau={}", w.tau)).collect();
    let refs: Vec<&WorkloadReport> = columns.iter().collect();
    print_figure(
        "Figure 6(a): min wall-clock ms/query vs threshold (11-15 grams, 0 mods)",
        &refs,
        &labels,
        Metric::MinMs,
    );
    println!("avg results/query: {}", result_counts(columns));
    let modeled: Vec<WorkloadReport> = columns.iter().map(|w| without(w, "SQL")).collect();
    let refs: Vec<&WorkloadReport> = modeled.iter().collect();
    print_figure(
        "Figure 6(a'): modeled disk ms/query (0.2us/seq element, 100us/random probe)",
        &refs,
        &labels,
        Metric::ModeledDiskMs,
    );
}

fn sweep_querysize(engines: &Engines<'_>, corpus: &setsim_datagen::Corpus) -> Vec<WorkloadReport> {
    // tau = 0.8, 0 modifications, the four gram buckets.
    LengthBucket::PAPER
        .iter()
        .enumerate()
        .map(|(bi, bucket)| {
            let wl = workload(corpus, *bucket, 0, QUERIES, FIG_SEED + 1 + bi as u64);
            let queries = prepare_queries(&engines.index, &wl);
            measure_workload(
                engines,
                &Algo::ALL,
                AlgoConfig::default(),
                &queries,
                0.8,
                &format!("tau=0.8 {} 0mods", bucket.label()),
                Passes {
                    warmup: WARMUP,
                    reps: REPS,
                },
            )
        })
        .collect()
}

fn print_querysize(columns: &[WorkloadReport]) {
    let labels: Vec<String> = LengthBucket::PAPER
        .iter()
        .map(setsim_datagen::LengthBucket::label)
        .collect();
    let refs: Vec<&WorkloadReport> = columns.iter().collect();
    print_figure(
        "Figure 6(b): min wall-clock ms/query vs query size (tau=0.8, 0 mods)",
        &refs,
        &labels,
        Metric::MinMs,
    );
    println!("avg results/query: {}", result_counts(columns));
}

fn sweep_modifications(
    engines: &Engines<'_>,
    corpus: &setsim_datagen::Corpus,
) -> Vec<WorkloadReport> {
    // tau = 0.6, 11-15 grams, modifications in {0, 1, 2, 3}.
    [0usize, 1, 2, 3]
        .iter()
        .map(|&m| {
            let wl = workload(
                corpus,
                LengthBucket::PAPER[2],
                m,
                QUERIES,
                FIG_SEED + 5 + m as u64,
            );
            let queries = prepare_queries(&engines.index, &wl);
            measure_workload(
                engines,
                &Algo::ALL,
                AlgoConfig::default(),
                &queries,
                0.6,
                &format!("tau=0.6 11-15g {m}mods"),
                Passes {
                    warmup: WARMUP,
                    reps: REPS,
                },
            )
        })
        .collect()
}

fn print_modifications(columns: &[WorkloadReport]) {
    let labels: Vec<String> = [0, 1, 2, 3].iter().map(|m| format!("{m} mods")).collect();
    let refs: Vec<&WorkloadReport> = columns.iter().collect();
    print_figure(
        "Figure 6(c): min wall-clock ms/query vs modifications (tau=0.6, 11-15 grams)",
        &refs,
        &labels,
        Metric::MinMs,
    );
    println!("avg results/query: {}", result_counts(columns));
}

fn main() {
    let (scale, rest) = scale_from_args();
    let json = rest.iter().any(|a| a == "--json");
    let which = rest
        .iter()
        .find(|a| *a != "--json")
        .map_or("all", String::as_str);
    let (corpus, collection) = word_collection(scale);
    let engines = Engines::build(&collection);
    if !json {
        println!(
            "# Figure 6: wall-clock time ({} sets, {} postings)",
            collection.len(),
            engines.index.total_postings()
        );
    }
    let mut all = Vec::new();
    if which == "threshold" || which == "all" {
        let columns = sweep_threshold(&engines, &corpus);
        if !json {
            print_threshold(&columns);
        }
        all.extend(columns);
    }
    if which == "querysize" || which == "all" {
        let columns = sweep_querysize(&engines, &corpus);
        if !json {
            print_querysize(&columns);
        }
        all.extend(columns);
    }
    if which == "modifications" || which == "all" {
        let columns = sweep_modifications(&engines, &corpus);
        if !json {
            print_modifications(&columns);
        }
        all.extend(columns);
    }
    if json {
        let report = BenchReport {
            schema_version: SCHEMA_VERSION,
            label: "fig6".to_string(),
            scale: setsim_bench::Scale::name(scale).to_string(),
            seed: FIG_SEED,
            warmup: WARMUP as u64,
            reps: REPS as u64,
            env: EnvFingerprint::capture(),
            workloads: all,
        };
        print!("{}", report.to_json_string());
        return;
    }
    println!("\n# Expectation (paper): SF fastest overall; SQL/iNRA/Hybrid close behind;");
    println!("# sort-by-id flat and slow; TA/NRA uncompetitive; Length-Bounded algorithms");
    println!("# get FASTER as queries grow (6b); cost drops with modifications (6c).");
}
