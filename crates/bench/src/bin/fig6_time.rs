//! Figure 6 — wall-clock time of all algorithms as a function of
//! (a) threshold, (b) query size, and (c) modifications per query word.
//!
//! Usage: `fig6_time [--scale ...] [threshold|querysize|modifications]`
//! (no sweep argument runs all three).

use setsim_bench::{
    prepare_queries, print_table, run_workload, scale_from_args, word_collection, workload, Algo,
    Engines,
};
use setsim_core::AlgoConfig;
use setsim_datagen::LengthBucket;

const QUERIES: usize = 100;

/// Modeled disk time per query in ms: the paper's indexes are disk
/// resident, where TA's per-element random probes dominate. In-memory
/// wall clock hides that, so we also report a modeled cost with
/// 2008-era constants: 0.2 µs per sequential posting (streamed pages),
/// 100 µs per random probe (partially cached seeks).
fn modeled_ms(r: &setsim_bench::WorkloadResult, queries: usize) -> f64 {
    let n = queries.max(1) as f64;
    (r.stats.elements_read as f64 * 0.0002 + r.stats.random_probes as f64 * 0.1) / n
}

fn sweep_threshold(engines: &Engines<'_>, corpus: &setsim_datagen::Corpus) {
    // 11-15 grams, 0 modifications, tau in {0.6, 0.7, 0.8, 0.9}.
    let wl = workload(corpus, LengthBucket::PAPER[2], 0, QUERIES, 61);
    let queries = prepare_queries(&engines.index, &wl);
    let taus = [0.6, 0.7, 0.8, 0.9];
    let mut rows = Vec::new();
    let mut rows_model = Vec::new();
    let mut result_counts = Vec::new();
    for algo in Algo::ALL {
        let mut cells = Vec::new();
        let mut model_cells = Vec::new();
        for &tau in &taus {
            let r = run_workload(engines, algo, AlgoConfig::default(), &queries, tau);
            if algo == Algo::Sf {
                result_counts.push(format!("{:.0}", r.avg_results));
            }
            cells.push(format!("{:.3}", r.avg_ms));
            model_cells.push(format!("{:.3}", modeled_ms(&r, queries.len())));
        }
        rows.push((algo.name().to_string(), cells));
        if algo != Algo::Sql {
            rows_model.push((algo.name().to_string(), model_cells));
        }
    }
    print_table(
        "Figure 6(a): avg wall-clock ms/query vs threshold (11-15 grams, 0 mods)",
        &taus.iter().map(|t| format!("tau={t}")).collect::<Vec<_>>(),
        &rows,
    );
    println!("avg results/query: {}", result_counts.join("  "));
    print_table(
        "Figure 6(a'): modeled disk ms/query (0.2us/seq element, 100us/random probe)",
        &taus.iter().map(|t| format!("tau={t}")).collect::<Vec<_>>(),
        &rows_model,
    );
}

fn sweep_querysize(engines: &Engines<'_>, corpus: &setsim_datagen::Corpus) {
    // tau = 0.8, 0 modifications, the four gram buckets.
    let mut rows: Vec<(String, Vec<String>)> = Algo::ALL
        .iter()
        .map(|a| (a.name().to_string(), Vec::new()))
        .collect();
    let mut result_counts = Vec::new();
    for (bi, bucket) in LengthBucket::PAPER.iter().enumerate() {
        let wl = workload(corpus, *bucket, 0, QUERIES, 62 + bi as u64);
        let queries = prepare_queries(&engines.index, &wl);
        for (ai, algo) in Algo::ALL.iter().enumerate() {
            let r = run_workload(engines, *algo, AlgoConfig::default(), &queries, 0.8);
            if *algo == Algo::Sf {
                result_counts.push(format!("{:.0}", r.avg_results));
            }
            rows[ai].1.push(format!("{:.3}", r.avg_ms));
        }
    }
    print_table(
        "Figure 6(b): avg wall-clock ms/query vs query size (tau=0.8, 0 mods)",
        &LengthBucket::PAPER
            .iter()
            .map(setsim_datagen::LengthBucket::label)
            .collect::<Vec<_>>(),
        &rows,
    );
    println!("avg results/query: {}", result_counts.join("  "));
}

fn sweep_modifications(engines: &Engines<'_>, corpus: &setsim_datagen::Corpus) {
    // tau = 0.6, 11-15 grams, modifications in {0, 1, 2, 3}.
    let mods = [0usize, 1, 2, 3];
    let mut rows: Vec<(String, Vec<String>)> = Algo::ALL
        .iter()
        .map(|a| (a.name().to_string(), Vec::new()))
        .collect();
    let mut result_counts = Vec::new();
    for &m in &mods {
        let wl = workload(corpus, LengthBucket::PAPER[2], m, QUERIES, 66 + m as u64);
        let queries = prepare_queries(&engines.index, &wl);
        for (ai, algo) in Algo::ALL.iter().enumerate() {
            let r = run_workload(engines, *algo, AlgoConfig::default(), &queries, 0.6);
            if *algo == Algo::Sf {
                result_counts.push(format!("{:.0}", r.avg_results));
            }
            rows[ai].1.push(format!("{:.3}", r.avg_ms));
        }
    }
    print_table(
        "Figure 6(c): avg wall-clock ms/query vs modifications (tau=0.6, 11-15 grams)",
        &mods.iter().map(|m| format!("{m} mods")).collect::<Vec<_>>(),
        &rows,
    );
    println!("avg results/query: {}", result_counts.join("  "));
}

fn main() {
    let (scale, rest) = scale_from_args();
    let (corpus, collection) = word_collection(scale);
    let engines = Engines::build(&collection);
    println!(
        "# Figure 6: wall-clock time ({} sets, {} postings)",
        collection.len(),
        engines.index.total_postings()
    );
    let which = rest.first().map_or("all", std::string::String::as_str);
    if which == "threshold" || which == "all" {
        sweep_threshold(&engines, &corpus);
    }
    if which == "querysize" || which == "all" {
        sweep_querysize(&engines, &corpus);
    }
    if which == "modifications" || which == "all" {
        sweep_modifications(&engines, &corpus);
    }
    println!("\n# Expectation (paper): SF fastest overall; SQL/iNRA/Hybrid close behind;");
    println!("# sort-by-id flat and slow; TA/NRA uncompetitive; Length-Bounded algorithms");
    println!("# get FASTER as queries grow (6b); cost drops with modifications (6c).");
}
