//! Figure 9 — the effect of skip lists.
//!
//! With Length Bounding on, each algorithm either jumps to `τ·len(q)`
//! through the per-list skip list, or ("NSL") scans and discards the
//! prefix sequentially. The paper reports close to a 2x improvement from
//! skip lists, growing with query size, at tiny space cost.
//!
//! Usage: `fig9_skip_lists [--scale ...]`

use setsim_bench::{
    prepare_queries, print_table, run_workload, scale_from_args, word_collection, workload, Algo,
    Engines,
};
use setsim_core::AlgoConfig;
use setsim_datagen::LengthBucket;

const QUERIES: usize = 100;
const ABLATED: [Algo; 4] = [Algo::INra, Algo::ITa, Algo::Sf, Algo::Hybrid];

fn main() {
    let (scale, _) = scale_from_args();
    let (corpus, collection) = word_collection(scale);
    let engines = Engines::build_with(&collection, setsim_core::IndexOptions::default(), false);
    println!(
        "# Figure 9: effect of skip lists ({} sets)",
        collection.len()
    );

    let wl = workload(&corpus, LengthBucket::PAPER[2], 0, QUERIES, 91);
    let queries = prepare_queries(&engines.index, &wl);
    let taus = [0.6, 0.7, 0.8, 0.9];

    let mut rows = Vec::new();
    let mut rows_reads = Vec::new();
    for algo in ABLATED {
        for (suffix, cfg) in [
            ("", AlgoConfig::full()),
            (" NSL", AlgoConfig::no_skip_lists()),
        ] {
            let mut time_cells = Vec::new();
            let mut read_cells = Vec::new();
            for &tau in &taus {
                let r = run_workload(&engines, algo, cfg, &queries, tau);
                time_cells.push(format!("{:.3}", r.avg_ms));
                read_cells.push(format!(
                    "{}",
                    r.stats.elements_read / queries.len().max(1) as u64
                ));
            }
            rows.push((format!("{}{}", algo.name(), suffix), time_cells));
            rows_reads.push((format!("{}{}", algo.name(), suffix), read_cells));
        }
    }
    print_table(
        "Figure 9(a): avg ms/query with and without skip lists",
        &taus.iter().map(|t| format!("tau={t}")).collect::<Vec<_>>(),
        &rows,
    );
    print_table(
        "Figure 9(b): avg postings read/query (NSL pays the prefix scan)",
        &taus.iter().map(|t| format!("tau={t}")).collect::<Vec<_>>(),
        &rows_reads,
    );

    println!("\n# Expectation (paper): skip lists are worth up to ~2x, at a space cost");
    println!("# that is negligible next to the extendible hashing TA requires.");
}
