//! Serving-layer microbenchmarks for the `QueryEngine` (the engine-PR
//! acceptance numbers, recorded in EXPERIMENTS.md).
//!
//! Two measurements:
//!
//! 1. **Warm-scratch allocation count** — a counting global allocator
//!    verifies that iNRA, SF, and Hybrid perform zero heap allocations per
//!    query once their `Scratch` is warm (`engine::execute_into`), versus
//!    the legacy allocating `search` wrapper.
//! 2. **Skewed-batch throughput** — a 1000-query workload whose 100
//!    expensive queries are packed contiguously at the front (the
//!    adversarial case for static chunking). Compares the legacy chunked
//!    `algorithms::parallel::search_batch` against the engine's
//!    work-stealing `QueryEngine::search_batch` at several thread counts.
//!
//! Usage: `engine_bench [--scale small|medium|large]`

use setsim_bench::{prepare_queries, scale_from_args, word_collection, workload};
use setsim_core::algorithms::parallel;
use setsim_core::{
    engine, AlgorithmKind, IndexOptions, InvertedIndex, PreparedQuery, QueryEngine, Scratch,
    SearchRequest, SelectionAlgorithm, SfAlgorithm,
};
use setsim_datagen::LengthBucket;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Makespan of static contiguous chunking: the busiest chunk's total cost.
fn chunked_makespan(costs: &[u64], workers: usize) -> u64 {
    let chunk = costs.len().div_ceil(workers);
    costs
        .chunks(chunk)
        .map(|c| c.iter().sum::<u64>())
        .max()
        .unwrap_or(0)
}

/// Makespan of work stealing: each freed worker pulls the next query in
/// order, i.e. greedy earliest-free-worker assignment.
fn stealing_makespan(costs: &[u64], workers: usize) -> u64 {
    let mut busy = vec![0u64; workers.max(1)];
    for &c in costs {
        if let Some(min) = busy.iter_mut().min() {
            *min += c;
        }
    }
    busy.into_iter().max().unwrap_or(0)
}

/// Allocations per query, averaged over `reps` passes of `queries`, on a
/// warm scratch through the engine path.
fn engine_allocs_per_query(
    index: &InvertedIndex<'_>,
    kind: AlgorithmKind,
    queries: &[PreparedQuery],
    tau: f64,
    reps: usize,
) -> f64 {
    let mut scratch = Scratch::default();
    for q in queries {
        let req = SearchRequest::new(q).tau(tau).algorithm(kind);
        engine::execute_into(index, &mut scratch, &req).expect("valid request");
    }
    let before = allocations();
    for _ in 0..reps {
        for q in queries {
            let req = SearchRequest::new(q).tau(tau).algorithm(kind);
            engine::execute_into(index, &mut scratch, &req).expect("valid request");
        }
    }
    (allocations() - before) as f64 / (reps * queries.len()) as f64
}

/// Allocations per query through the legacy allocating `search` wrapper.
fn legacy_allocs_per_query(
    index: &InvertedIndex<'_>,
    kind: AlgorithmKind,
    queries: &[PreparedQuery],
    tau: f64,
    reps: usize,
) -> f64 {
    let before = allocations();
    for _ in 0..reps {
        for q in queries {
            // The wrapper allocates a fresh Scratch internally.
            let _ = match kind {
                AlgorithmKind::INra => setsim_core::INraAlgorithm::default().search(index, q, tau),
                AlgorithmKind::Hybrid => {
                    setsim_core::HybridAlgorithm::default().search(index, q, tau)
                }
                _ => SfAlgorithm::default().search(index, q, tau),
            };
        }
    }
    (allocations() - before) as f64 / (reps * queries.len()) as f64
}

fn main() {
    let (scale, _rest) = scale_from_args();
    let (corpus, collection) = word_collection(scale);
    let index = InvertedIndex::build(&collection, IndexOptions::default());
    println!(
        "# engine_bench: {} sets, {} postings",
        collection.len(),
        index.total_postings()
    );

    // ---- 1. Warm-scratch allocation counts -------------------------------
    let wl = workload(&corpus, LengthBucket::PAPER[2], 1, 50, 41);
    let queries = prepare_queries(&index, &wl);
    println!("\n## allocations per query (tau=0.7, 50 queries x 20 reps)");
    println!("  algorithm   warm engine   legacy search");
    for kind in [
        AlgorithmKind::INra,
        AlgorithmKind::Sf,
        AlgorithmKind::Hybrid,
    ] {
        let warm = engine_allocs_per_query(&index, kind, &queries, 0.7, 20);
        let legacy = legacy_allocs_per_query(&index, kind, &queries, 0.7, 20);
        println!("  {:<10}  {warm:>11.2}   {legacy:>13.2}", kind.name());
    }

    // ---- 2. Skewed 1k-query batch: chunked vs work stealing --------------
    // Build an empirically skewed batch: cost every candidate query once
    // (elements read + records scanned through SF), then pack 100 copies
    // of the most expensive ones at the front followed by 900 of the
    // cheapest — the pathological layout for static chunking, which traps
    // the whole heavy block in the first worker's chunk.
    let tau = 0.5;
    let mut candidates: Vec<PreparedQuery> = Vec::new();
    for (i, bucket) in LengthBucket::PAPER.iter().enumerate() {
        let wl = workload(&corpus, *bucket, 0, 250, 50 + i as u64);
        candidates.extend(prepare_queries(&index, &wl));
    }
    let mut scratch = Scratch::default();
    let mut costed: Vec<(u64, usize)> = candidates
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let req = SearchRequest::new(q).tau(tau).algorithm(AlgorithmKind::Sf);
            engine::execute_into(&index, &mut scratch, &req).expect("valid request");
            let s = scratch.stats();
            (s.elements_read + s.records_scanned, i)
        })
        .collect();
    costed.sort_unstable_by_key(|&(cost, _)| std::cmp::Reverse(cost));
    let heaviest = costed.first().map_or(0, |&(c, _)| c);
    let lightest = costed.last().map_or(0, |&(c, _)| c);
    let mut batch: Vec<PreparedQuery> = Vec::with_capacity(1000);
    let mut batch_costs: Vec<u64> = Vec::with_capacity(1000);
    for &(cost, i) in costed.iter().take(10).cycle().take(100) {
        batch.push(candidates[i].clone());
        batch_costs.push(cost);
    }
    for &(cost, i) in costed.iter().rev().take(costed.len() / 2).cycle().take(900) {
        batch.push(candidates[i].clone());
        batch_costs.push(cost);
    }
    println!("\nper-query cost skew: heaviest {heaviest} accesses, lightest {lightest} accesses");
    let engine = QueryEngine::new(index);
    let reqs: Vec<SearchRequest<'_>> = batch
        .iter()
        .map(|q| SearchRequest::new(q).tau(tau).algorithm(AlgorithmKind::Sf))
        .collect();

    // Scheduling model from the measured per-query costs: static chunking
    // pins worker time at its heaviest contiguous chunk; work stealing is
    // greedy earliest-free-worker assignment. The model isolates the
    // load-balancing win from host core count (wall clock below cannot
    // show it on a single-core machine).
    println!("\n## modeled makespan (access-cost units) on the skewed batch");
    println!("  workers   chunked   work-stealing   balance win");
    for workers in [2usize, 4, 8] {
        let chunked = chunked_makespan(&batch_costs, workers);
        let stealing = stealing_makespan(&batch_costs, workers);
        println!(
            "  {workers:>7}   {chunked:>7}   {stealing:>13}   {:>10.2}x",
            chunked as f64 / stealing as f64
        );
    }

    println!("\n## skewed 1000-query batch (100 heavy-first + 900 light), SF, tau=0.5");
    println!("  threads   chunked ms   work-stealing ms   speedup");
    for threads in [2usize, 4, 8] {
        // Warm both paths once, then take the best of 7 timed runs
        // (single-core hosts schedule noisily).
        let _ = parallel::search_batch(
            &SfAlgorithm::default(),
            engine.index(),
            &batch,
            tau,
            threads,
        );
        let _ = engine.search_batch(&reqs, threads);
        let chunked_ms = (0..7)
            .map(|_| {
                let t = Instant::now();
                let outs = parallel::search_batch(
                    &SfAlgorithm::default(),
                    engine.index(),
                    &batch,
                    tau,
                    threads,
                );
                assert_eq!(outs.len(), batch.len());
                t.elapsed().as_secs_f64() * 1e3
            })
            .fold(f64::INFINITY, f64::min);
        let stealing_ms = (0..7)
            .map(|_| {
                let t = Instant::now();
                let outs = engine.search_batch(&reqs, threads);
                assert_eq!(outs.len(), reqs.len());
                t.elapsed().as_secs_f64() * 1e3
            })
            .fold(f64::INFINITY, f64::min);
        println!(
            "  {threads:>7}   {chunked_ms:>10.2}   {stealing_ms:>16.2}   {:>6.2}x",
            chunked_ms / stealing_ms
        );
    }

    // Sanity: both paths agree on every answer.
    let a = parallel::search_batch(&SfAlgorithm::default(), engine.index(), &batch, tau, 4);
    let b = engine.search_batch(&reqs, 4);
    for (x, y) in a.iter().zip(&b) {
        let y = y.as_ref().expect("valid request");
        assert_eq!(x.ids_sorted(), y.ids_sorted(), "paths disagree");
    }
    println!(
        "\nchunked and work-stealing outcomes agree on all {} queries",
        batch.len()
    );
}
