//! `setsim-bench` — the machine-readable benchmark harness driver.
//!
//! ```text
//! setsim-bench harness [--scale small|medium|large] [--seed N]
//!                      [--queries N] [--warmup W] [--reps K]
//!                      [--label L] [--out FILE] [--stdout]
//! setsim-bench loadgen [--scale S] [--seed N] [--readers R] [--writers W]
//!                      [--requests N] [--mutations N] [--tau T]
//!                      [--inflight P] [--clog C] [--label L] [--out FILE]
//!                      [--stdout] [--expect-zero-shed] [--expect-shed]
//!                      [--expect-drain-clean]
//! ```
//!
//! `harness` runs the deterministic seeded workload grid of
//! [`setsim_bench::harness`] through every roster algorithm and writes
//! the versioned report as `BENCH_<label>.json` (default label: the
//! scale name). The counter sections of the report are byte-identical
//! across runs with the same `--scale`/`--seed`; the latency sections
//! and env fingerprint are machine-dependent. Compare two reports with
//! `cargo xtask bench-diff`.
//!
//! `loadgen` drives an in-process `setsim-server` over real TCP with
//! concurrent readers and writers ([`setsim_bench::loadgen`]) and writes
//! the same report schema with client-observed tail percentiles. The
//! `--expect-*` flags turn contract violations into exit code 1 — the CI
//! `serving` job runs one low-load invocation with `--expect-zero-shed
//! --expect-drain-clean` and one saturated invocation (`--inflight 1
//! --clog 2`, so shedding is deterministic rather than a scheduling
//! race) with `--expect-shed --expect-drain-clean`.

use setsim_bench::harness::{self, HarnessConfig};
use setsim_bench::loadgen::{self, LoadgenConfig};
use setsim_bench::report::Metric;
use setsim_bench::scaleout::{self, ScaleoutConfig};
use setsim_bench::Scale;

const USAGE: &str = "\
setsim-bench — machine-readable benchmark harness

USAGE:
  setsim-bench harness [OPTIONS]
  setsim-bench loadgen [OPTIONS]
  setsim-bench scaleout [OPTIONS]

HARNESS OPTIONS:
  --scale small|medium|large   corpus scale (default small)
  --seed N                     master seed (default 42)
  --queries N                  queries per workload (default per scale)
  --warmup W                   untimed passes per cell (default 1)
  --reps K                     timed passes per cell (default 3)
  --label L                    report label (default: scale name)
  --out FILE                   output path (default BENCH_<label>.json)
  --stdout                     print the JSON instead of writing a file

LOADGEN OPTIONS:
  --scale small|medium|large   corpus scale served (default small)
  --seed N                     corpus/workload seed (default 42)
  --readers R                  concurrent search connections (default 4)
  --writers W                  concurrent mutation connections (default 1)
  --requests N                 searches per reader (default 50)
  --mutations N                mutations per writer (default 20)
  --tau T                      selection threshold (default 0.8)
  --inflight P                 server admission permits (default 8)
  --clog C                     permit-holding clog connections (default 0);
                               2 clogs + --inflight 1 = guaranteed shed
  --label L                    report label (default loadgen)
  --out FILE                   output path (default BENCH_<label>.json)
  --stdout                     print the JSON instead of writing a file
  --expect-zero-shed           exit 1 if any request was shed
  --expect-shed                exit 1 if no request was shed (saturation)
  --expect-drain-clean         exit 1 on transport errors or drain loss

SCALEOUT OPTIONS:
  --records N                  corpus records (default 10000000)
  --shards S                   length-banded shards (default 32)
  --seed N                     master seed (default 42)
  --queries Q                  queries per tau cell (default 64)
  --taus T1,T2,..              threshold grid (default 0.5,0.8,0.95)
  --dir DIR                    sharded-snapshot cache directory: reopened
                               when present, written after a fresh build
  --equivalence N              sharded-vs-unsharded differential over the
                               first N records (default 20000; 0 skips)
  --label L                    report label (default scaleout)
  --out FILE                   output path (default BENCH_<label>.json)
  --stdout                     print the JSON instead of writing a file
  --expect-majority-pruned     exit 1 unless tau=0.8 prunes > 50% of
                               (query, shard) visits whole
";

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("harness") => run_harness(&args[1..]),
        Some("loadgen") => run_loadgen(&args[1..]),
        Some("scaleout") => run_scaleout(&args[1..]),
        Some("-h" | "--help") => println!("{USAGE}"),
        Some(other) => fail(&format!("unknown subcommand '{other}'")),
        None => fail("missing subcommand"),
    }
}

fn run_harness(args: &[String]) {
    let mut config = HarnessConfig::new(Scale::Small, 42);
    let mut out_path: Option<String> = None;
    let mut to_stdout = false;
    let mut label_set = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| fail(&format!("{name} requires a value")))
        };
        match a.as_str() {
            "--scale" => {
                let v = value("--scale");
                let scale = Scale::parse(&v).unwrap_or_else(|| {
                    fail(&format!("unknown scale {v:?}; use small|medium|large"))
                });
                let seed = config.seed;
                let keep_label = label_set.then(|| config.label.clone());
                config = HarnessConfig::new(scale, seed);
                if let Some(l) = keep_label {
                    config.label = l;
                }
            }
            "--seed" => config.seed = parse_num(&value("--seed"), "--seed"),
            "--queries" => config.queries = parse_num(&value("--queries"), "--queries"),
            "--warmup" => config.warmup = parse_num(&value("--warmup"), "--warmup"),
            "--reps" => {
                config.reps = parse_num(&value("--reps"), "--reps");
                if config.reps == 0 {
                    fail("--reps must be at least 1");
                }
            }
            "--label" => {
                config.label = value("--label");
                label_set = true;
            }
            "--out" => out_path = Some(value("--out")),
            "--stdout" => to_stdout = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown option {other:?}")),
        }
    }

    eprintln!(
        "harness: scale={} seed={} queries/workload={} warmup={} reps={}",
        Scale::name(config.scale),
        config.seed,
        config.queries,
        config.warmup,
        config.reps
    );
    let report = harness::run(&config);
    let json = report.to_json_string();
    if to_stdout {
        print!("{json}");
    } else {
        let path = out_path.unwrap_or_else(|| format!("BENCH_{}.json", config.label));
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
    // Terse human summary on stderr: min-of-k ms/query per cell.
    for w in &report.workloads {
        eprintln!("  workload {}", w.label);
        for a in &w.algos {
            eprintln!(
                "    {:10} min {:>9.3} ms/q  median {:>9.3} ±{:.3}  pruning {:>5.1}%",
                a.name,
                a.latency.min_ms_per_query,
                a.latency.median_ms_per_query,
                a.latency.mad_ms_per_query,
                Metric::PruningPct.of(a),
            );
        }
    }
}

#[allow(clippy::too_many_lines)] // flag loop + assertions are one linear script
fn run_loadgen(args: &[String]) {
    let mut config = LoadgenConfig::default();
    let mut out_path: Option<String> = None;
    let mut to_stdout = false;
    let (mut expect_zero_shed, mut expect_shed, mut expect_drain_clean) = (false, false, false);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| fail(&format!("{name} requires a value")))
        };
        match a.as_str() {
            "--scale" => {
                let v = value("--scale");
                config.scale = Scale::parse(&v).unwrap_or_else(|| {
                    fail(&format!("unknown scale '{v}'; use small|medium|large"))
                });
            }
            "--seed" => config.seed = parse_num(&value("--seed"), "--seed"),
            "--readers" => config.readers = parse_num(&value("--readers"), "--readers"),
            "--writers" => config.writers = parse_num(&value("--writers"), "--writers"),
            "--requests" => config.requests = parse_num(&value("--requests"), "--requests"),
            "--mutations" => config.mutations = parse_num(&value("--mutations"), "--mutations"),
            "--tau" => config.tau = parse_num(&value("--tau"), "--tau"),
            "--inflight" => config.inflight = parse_num(&value("--inflight"), "--inflight"),
            "--clog" => config.clog = parse_num(&value("--clog"), "--clog"),
            "--label" => config.label = value("--label"),
            "--out" => out_path = Some(value("--out")),
            "--stdout" => to_stdout = true,
            "--expect-zero-shed" => expect_zero_shed = true,
            "--expect-shed" => expect_shed = true,
            "--expect-drain-clean" => expect_drain_clean = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown option '{other}'")),
        }
    }

    eprintln!(
        "loadgen: scale={} seed={} readers={} writers={} clogs={} requests/reader={} mutations/writer={} tau={} inflight={}",
        Scale::name(config.scale),
        config.seed,
        config.readers,
        config.writers,
        config.clog,
        config.requests,
        config.mutations,
        config.tau,
        config.inflight
    );
    let outcome = loadgen::run(&config).unwrap_or_else(|e| {
        eprintln!("loadgen failed: {e}");
        std::process::exit(1);
    });
    let json = outcome.report.to_json_string();
    if to_stdout {
        print!("{json}");
    } else {
        let path = out_path.unwrap_or_else(|| format!("BENCH_{}.json", config.label));
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }

    let lat = &outcome.report.workloads[0].algos[0].latency;
    let tail = lat.tail.expect("loadgen reports carry tail percentiles");
    eprintln!(
        "  {} ok, {} overloaded, {} transport error(s), {} mutation(s) applied",
        outcome.ok, outcome.overloaded, outcome.transport_errors, outcome.mutations_applied
    );
    eprintln!(
        "  latency ms/request: p50 {:.3}  p95 {:.3}  p99 {:.3}  (min {:.3}, {} samples)",
        tail.p50_ms, tail.p95_ms, tail.p99_ms, lat.min_ms_per_query, lat.reps
    );
    eprintln!(
        "  server: {} served, {} shed; drain: {} served, {} shed, {} connection(s)",
        outcome.server.queries,
        outcome.server.shed,
        outcome.drain.served,
        outcome.drain.shed,
        outcome.drain.accepted_connections
    );

    let mut failed = false;
    if expect_zero_shed && (outcome.overloaded > 0 || outcome.drain.shed > 0) {
        eprintln!(
            "FAIL --expect-zero-shed: {} client overload(s), {} server shed(s)",
            outcome.overloaded, outcome.drain.shed
        );
        failed = true;
    }
    if expect_shed && outcome.overloaded == 0 {
        eprintln!("FAIL --expect-shed: saturation produced no typed Overloaded refusal");
        failed = true;
    }
    if expect_drain_clean {
        // Clean drain: no transport-level failures (every request got a
        // typed response on an intact connection) and the server-side
        // shed count matches the typed refusals clients saw — nothing
        // was dropped silently.
        if outcome.transport_errors > 0 {
            eprintln!(
                "FAIL --expect-drain-clean: {} transport error(s)",
                outcome.transport_errors
            );
            failed = true;
        }
        if outcome.drain.shed != outcome.overloaded {
            eprintln!(
                "FAIL --expect-drain-clean: server shed {} but clients saw {} typed refusal(s)",
                outcome.drain.shed, outcome.overloaded
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn run_scaleout(args: &[String]) {
    let mut config = ScaleoutConfig::default();
    let mut out_path: Option<String> = None;
    let mut to_stdout = false;
    let mut expect_majority = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| fail(&format!("{name} requires a value")))
        };
        match a.as_str() {
            "--records" => config.records = parse_num(&value("--records"), "--records"),
            "--shards" => config.shards = parse_num(&value("--shards"), "--shards"),
            "--seed" => config.seed = parse_num(&value("--seed"), "--seed"),
            "--queries" => config.queries = parse_num(&value("--queries"), "--queries"),
            "--taus" => {
                config.taus = value("--taus")
                    .split(',')
                    .map(|t| parse_num(t, "--taus"))
                    .collect();
                if config.taus.is_empty() {
                    fail("--taus needs at least one threshold");
                }
            }
            "--dir" => config.dir = Some(value("--dir").into()),
            "--equivalence" => {
                config.equivalence_records = parse_num(&value("--equivalence"), "--equivalence");
            }
            "--label" => config.label = value("--label"),
            "--out" => out_path = Some(value("--out")),
            "--stdout" => to_stdout = true,
            "--expect-majority-pruned" => expect_majority = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown option {other:?}")),
        }
    }
    if config.records == 0 || config.shards == 0 {
        fail("--records and --shards must be at least 1");
    }

    eprintln!(
        "scaleout: records={} shards={} seed={} queries/tau={} taus={:?} equivalence={}",
        config.records,
        config.shards,
        config.seed,
        config.queries,
        config.taus,
        config.equivalence_records
    );
    let outcome = scaleout::run(&config).unwrap_or_else(|e| {
        eprintln!("scaleout failed: {e}");
        std::process::exit(1);
    });
    let json = outcome.report.to_json_string();
    if to_stdout {
        print!("{json}");
    } else {
        let path = out_path.unwrap_or_else(|| format!("BENCH_{}.json", config.label));
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }

    eprintln!(
        "  index: {} record(s) in {} shard(s){}{}",
        outcome.num_records,
        outcome.num_shards,
        if outcome.opened_from_cache {
            " (reopened from cache)"
        } else {
            " (built fresh)"
        },
        if outcome.equivalence_checked {
            ", equivalence prefix OK"
        } else {
            ""
        }
    );
    for (tau, fraction) in &outcome.pruned_fraction {
        eprintln!(
            "  tau={tau}: {:.1}% of (query, shard) visits pruned whole",
            100.0 * fraction
        );
    }

    if expect_majority {
        let at_08 = outcome
            .pruned_fraction
            .iter()
            .find(|(t, _)| (*t - 0.8).abs() < 1e-9);
        match at_08 {
            Some((_, fraction)) if *fraction > 0.5 => {}
            Some((_, fraction)) => {
                eprintln!(
                    "FAIL --expect-majority-pruned: tau=0.8 pruned only {:.1}% of shard visits",
                    100.0 * fraction
                );
                std::process::exit(1);
            }
            None => {
                eprintln!("FAIL --expect-majority-pruned: tau=0.8 not in --taus grid");
                std::process::exit(1);
            }
        }
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| fail(&format!("{flag} expects a number, got '{s}'")))
}
