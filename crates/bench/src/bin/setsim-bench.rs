//! `setsim-bench` — the machine-readable benchmark harness driver.
//!
//! ```text
//! setsim-bench harness [--scale small|medium|large] [--seed N]
//!                      [--queries N] [--warmup W] [--reps K]
//!                      [--label L] [--out FILE] [--stdout]
//! ```
//!
//! Runs the deterministic seeded workload grid of
//! [`setsim_bench::harness`] through every roster algorithm and writes
//! the versioned report as `BENCH_<label>.json` (default label: the
//! scale name). The counter sections of the report are byte-identical
//! across runs with the same `--scale`/`--seed`; the latency sections
//! and env fingerprint are machine-dependent. Compare two reports with
//! `cargo xtask bench-diff`.

use setsim_bench::harness::{self, HarnessConfig};
use setsim_bench::report::Metric;
use setsim_bench::Scale;

const USAGE: &str = "\
setsim-bench — machine-readable benchmark harness

USAGE:
  setsim-bench harness [OPTIONS]

OPTIONS:
  --scale small|medium|large   corpus scale (default small)
  --seed N                     master seed (default 42)
  --queries N                  queries per workload (default per scale)
  --warmup W                   untimed passes per cell (default 1)
  --reps K                     timed passes per cell (default 3)
  --label L                    report label (default: scale name)
  --out FILE                   output path (default BENCH_<label>.json)
  --stdout                     print the JSON instead of writing a file
";

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("harness") => run_harness(&args[1..]),
        Some("-h" | "--help") => println!("{USAGE}"),
        Some(other) => fail(&format!("unknown subcommand {other:?}")),
        None => fail("missing subcommand"),
    }
}

fn run_harness(args: &[String]) {
    let mut config = HarnessConfig::new(Scale::Small, 42);
    let mut out_path: Option<String> = None;
    let mut to_stdout = false;
    let mut label_set = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| fail(&format!("{name} requires a value")))
        };
        match a.as_str() {
            "--scale" => {
                let v = value("--scale");
                let scale = Scale::parse(&v).unwrap_or_else(|| {
                    fail(&format!("unknown scale {v:?}; use small|medium|large"))
                });
                let seed = config.seed;
                let keep_label = label_set.then(|| config.label.clone());
                config = HarnessConfig::new(scale, seed);
                if let Some(l) = keep_label {
                    config.label = l;
                }
            }
            "--seed" => config.seed = parse_num(&value("--seed"), "--seed"),
            "--queries" => config.queries = parse_num(&value("--queries"), "--queries"),
            "--warmup" => config.warmup = parse_num(&value("--warmup"), "--warmup"),
            "--reps" => {
                config.reps = parse_num(&value("--reps"), "--reps");
                if config.reps == 0 {
                    fail("--reps must be at least 1");
                }
            }
            "--label" => {
                config.label = value("--label");
                label_set = true;
            }
            "--out" => out_path = Some(value("--out")),
            "--stdout" => to_stdout = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown option {other:?}")),
        }
    }

    eprintln!(
        "harness: scale={} seed={} queries/workload={} warmup={} reps={}",
        Scale::name(config.scale),
        config.seed,
        config.queries,
        config.warmup,
        config.reps
    );
    let report = harness::run(&config);
    let json = report.to_json_string();
    if to_stdout {
        print!("{json}");
    } else {
        let path = out_path.unwrap_or_else(|| format!("BENCH_{}.json", config.label));
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
    // Terse human summary on stderr: min-of-k ms/query per cell.
    for w in &report.workloads {
        eprintln!("  workload {}", w.label);
        for a in &w.algos {
            eprintln!(
                "    {:10} min {:>9.3} ms/q  median {:>9.3} ±{:.3}  pruning {:>5.1}%",
                a.name,
                a.latency.min_ms_per_query,
                a.latency.median_ms_per_query,
                a.latency.mad_ms_per_query,
                Metric::PruningPct.of(a),
            );
        }
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| fail(&format!("{flag} expects a number, got {s:?}")))
}
