//! Cold-start experiment — snapshot load vs full index rebuild.
//!
//! A serving process that restarts has two ways back to a working
//! [`QueryEngine`]: re-tokenize and re-build the inverted index from the
//! raw records, or `QueryEngine::open` a persisted snapshot. This binary
//! measures both paths on the standard word-occurrence database, plus the
//! one-time cost of writing the snapshot, and sanity-checks that the
//! loaded engine answers a probe query identically to the built one.
//!
//! Usage: `snapshot_coldstart [--scale small|medium|large]`

use setsim_bench::{print_table, scale_from_args, word_collection};
use setsim_core::{
    AlgorithmKind, IndexOptions, InvertedIndex, QueryEngine, SearchRequest, SetCollection,
};
use std::time::Instant;

fn ms(d: std::time::Duration) -> String {
    format!("{:.1} ms", d.as_secs_f64() * 1e3)
}

fn build(collection: &SetCollection) -> InvertedIndex<'_> {
    InvertedIndex::build(collection, IndexOptions::default())
}

fn main() {
    let (scale, _) = scale_from_args();
    let (_corpus, collection) = word_collection(scale);

    let t0 = Instant::now();
    let index = build(&collection);
    let build_time = t0.elapsed();

    let path = std::env::temp_dir().join(format!("setsim-coldstart-{}.snap", std::process::id()));
    let t0 = Instant::now();
    index.save(&path).expect("snapshot save");
    let save_time = t0.elapsed();
    let file_len = std::fs::metadata(&path).expect("snapshot metadata").len();

    // Best-of-3 for the two cold-start paths: timings at small scales are
    // noisy, and the minimum is the least contaminated by scheduling.
    let rebuild_time = (0..3).map(|_| {
        let t0 = Instant::now();
        let idx = build(&collection);
        std::hint::black_box(&idx);
        t0.elapsed()
    });
    let rebuild_time = rebuild_time.min().expect("three runs");
    let load_time = (0..3).map(|_| {
        let t0 = Instant::now();
        let engine = QueryEngine::open(&path).expect("snapshot load");
        std::hint::black_box(&engine);
        t0.elapsed()
    });
    let load_time = load_time.min().expect("three runs");

    // The loaded engine must serve the same answers as the built index.
    let mut engine = QueryEngine::open(&path).expect("snapshot load");
    let probe = collection.text(setsim_core::SetId(0)).unwrap_or("probe");
    let q_loaded = engine.prepare_query_str(probe);
    let loaded = engine
        .search(
            SearchRequest::new(&q_loaded)
                .tau(0.5)
                .algorithm(AlgorithmKind::Sf),
        )
        .expect("loaded search");
    let q_built = index.prepare_query_str(probe);
    let mut built_engine = QueryEngine::new(index);
    let built = built_engine
        .search(
            SearchRequest::new(&q_built)
                .tau(0.5)
                .algorithm(AlgorithmKind::Sf),
        )
        .expect("built search");
    assert_eq!(
        loaded.ids_sorted(),
        built.ids_sorted(),
        "loaded engine disagrees with built index"
    );

    println!("# Cold start: snapshot load vs index rebuild");
    println!(
        "# {} sets, {} distinct tokens, {} postings, snapshot {:.2} MB",
        collection.len(),
        collection.dict().len(),
        built_engine.index().total_postings(),
        file_len as f64 / (1024.0 * 1024.0)
    );
    print_table(
        "Cold-start paths (best of 3)",
        &["time".into()],
        &[
            ("build (first, unwarmed)".into(), vec![ms(build_time)]),
            ("snapshot save (one-time)".into(), vec![ms(save_time)]),
            ("rebuild from records".into(), vec![ms(rebuild_time)]),
            ("QueryEngine::open(snapshot)".into(), vec![ms(load_time)]),
            (
                "speedup (rebuild / load)".into(),
                vec![format!(
                    "{:.2}x",
                    rebuild_time.as_secs_f64() / load_time.as_secs_f64().max(1e-9)
                )],
            ),
        ],
    );
    println!("\n# Expectation: the two paths are of the same order — load trades the");
    println!("# tokenize+sort work of a rebuild for page reads, checksums, and varint");
    println!("# decoding — but load needs only the snapshot file, not the raw records.");

    let _ = std::fs::remove_file(&path);
}
