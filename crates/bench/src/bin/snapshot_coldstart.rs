//! Cold-start experiment — snapshot load vs full index rebuild vs
//! demand-paged open.
//!
//! A serving process that restarts has three ways back to answering
//! queries: re-tokenize and re-build the inverted index from the raw
//! records, `QueryEngine::open` a persisted snapshot (full decode), or
//! `QueryEngine::open_paged` it (footer-only decode, posting pages
//! faulted per query). This binary measures time-to-first-query for all
//! three on the standard word-occurrence database, plus the one-time
//! cost of writing the snapshot, and sanity-checks that every path
//! answers a probe query identically. It also sweeps the paged buffer
//! pool over 10% / 50% / 100% of the snapshot's pages and prints the
//! hit rate of each.
//!
//! Usage: `snapshot_coldstart [--scale small|medium|large]`

use setsim_bench::{print_table, scale_from_args, word_collection};
use setsim_core::{
    AlgorithmKind, IndexOptions, InvertedIndex, QueryEngine, SearchRequest, SetCollection,
};
use std::time::Instant;

fn ms(d: std::time::Duration) -> String {
    format!("{:.1} ms", d.as_secs_f64() * 1e3)
}

fn build(collection: &SetCollection) -> InvertedIndex<'_> {
    InvertedIndex::build(collection, IndexOptions::default())
}

fn main() {
    let (scale, _) = scale_from_args();
    let (_corpus, collection) = word_collection(scale);

    let t0 = Instant::now();
    let index = build(&collection);
    let build_time = t0.elapsed();

    let path = std::env::temp_dir().join(format!("setsim-coldstart-{}.snap", std::process::id()));
    let t0 = Instant::now();
    index.save(&path).expect("snapshot save");
    let save_time = t0.elapsed();
    let file_len = std::fs::metadata(&path).expect("snapshot metadata").len();

    // Best-of-3 for the two cold-start paths: timings at small scales are
    // noisy, and the minimum is the least contaminated by scheduling.
    let rebuild_time = (0..3).map(|_| {
        let t0 = Instant::now();
        let idx = build(&collection);
        std::hint::black_box(&idx);
        t0.elapsed()
    });
    let rebuild_time = rebuild_time.min().expect("three runs");
    let load_time = (0..3).map(|_| {
        let t0 = Instant::now();
        let engine = QueryEngine::open(&path).expect("snapshot load");
        std::hint::black_box(&engine);
        t0.elapsed()
    });
    let load_time = load_time.min().expect("three runs");

    // The loaded engine must serve the same answers as the built index.
    let mut engine = QueryEngine::open(&path).expect("snapshot load");
    let probe = collection.text(setsim_core::SetId(0)).unwrap_or("probe");

    // Paged cell: time-to-first-query with a footer-only open. Where the
    // full load pays O(index) before it can answer anything, the paged
    // open pays O(footer) + the pages the first query's Theorem 1 window
    // actually touches.
    let pages = setsim_core::snapshot::verify(&path)
        .expect("fresh snapshot verifies")
        .pages;
    let paged_ttfq = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            let mut paged =
                QueryEngine::open_paged(&path, 64.min(pages.max(1) as usize)).expect("paged open");
            let q = paged.prepare_query_str(probe);
            let out = paged
                .search(SearchRequest::new(&q).tau(0.5).algorithm(AlgorithmKind::Sf))
                .expect("paged search");
            std::hint::black_box(&out);
            t0.elapsed()
        })
        .min()
        .expect("three runs");
    let full_ttfq = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            let mut eng = QueryEngine::open(&path).expect("snapshot load");
            let q = eng.prepare_query_str(probe);
            let out = eng
                .search(SearchRequest::new(&q).tau(0.5).algorithm(AlgorithmKind::Sf))
                .expect("full-load search");
            std::hint::black_box(&out);
            t0.elapsed()
        })
        .min()
        .expect("three runs");
    let q_loaded = engine.prepare_query_str(probe);
    let loaded = engine
        .search(
            SearchRequest::new(&q_loaded)
                .tau(0.5)
                .algorithm(AlgorithmKind::Sf),
        )
        .expect("loaded search");
    let q_built = index.prepare_query_str(probe);
    let mut built_engine = QueryEngine::new(index);
    let built = built_engine
        .search(
            SearchRequest::new(&q_built)
                .tau(0.5)
                .algorithm(AlgorithmKind::Sf),
        )
        .expect("built search");
    assert_eq!(
        loaded.ids_sorted(),
        built.ids_sorted(),
        "loaded engine disagrees with built index"
    );

    // The paged engine must agree too, and the pool sweep records how
    // the hit rate responds to frames: 10% of the snapshot forces
    // eviction pressure, 100% makes every re-fault a hit.
    let mut sweep_rows: Vec<(String, Vec<String>)> = Vec::new();
    for pct in [10u64, 50, 100] {
        let pool = usize::try_from((pages * pct / 100).max(1)).expect("page count fits usize");
        let mut paged = QueryEngine::open_paged(&path, pool).expect("paged open");
        let q = paged.prepare_query_str(probe);
        let out = paged
            .search(SearchRequest::new(&q).tau(0.5).algorithm(AlgorithmKind::Sf))
            .expect("paged search");
        assert_eq!(
            out.ids_sorted(),
            built.ids_sorted(),
            "paged engine (pool {pool}) disagrees with built index"
        );
        let (hits, misses) = (paged.pool_hits(), paged.pool_misses());
        // lint: allow — counters well below 2^53, exact in f64.
        let hit_rate = 100.0 * hits as f64 / (hits + misses).max(1) as f64;
        sweep_rows.push((
            format!("pool {pct:>3}% = {pool} page(s)"),
            vec![format!(
                "touched {} of {pages}, {hits} hit(s), {misses} miss(es), {hit_rate:.0}% hits",
                out.stats.pages_touched
            )],
        ));
    }

    println!("# Cold start: snapshot load vs index rebuild");
    println!(
        "# {} sets, {} distinct tokens, {} postings, snapshot {:.2} MB",
        collection.len(),
        collection.dict().len(),
        built_engine.index().total_postings(),
        file_len as f64 / (1024.0 * 1024.0)
    );
    print_table(
        "Cold-start paths (best of 3)",
        &["time".into()],
        &[
            ("build (first, unwarmed)".into(), vec![ms(build_time)]),
            ("snapshot save (one-time)".into(), vec![ms(save_time)]),
            ("rebuild from records".into(), vec![ms(rebuild_time)]),
            ("QueryEngine::open(snapshot)".into(), vec![ms(load_time)]),
            (
                "speedup (rebuild / load)".into(),
                vec![format!(
                    "{:.2}x",
                    rebuild_time.as_secs_f64() / load_time.as_secs_f64().max(1e-9)
                )],
            ),
            ("full load + first query".into(), vec![ms(full_ttfq)]),
            ("open_paged + first query".into(), vec![ms(paged_ttfq)]),
            (
                "TTFQ speedup (full / paged)".into(),
                vec![format!(
                    "{:.2}x",
                    full_ttfq.as_secs_f64() / paged_ttfq.as_secs_f64().max(1e-9)
                )],
            ),
        ],
    );
    print_table(
        "Paged pool sweep (one probe query, cold pool)",
        &["page faults".into()],
        &sweep_rows,
    );
    println!("\n# Expectation: the two full paths are of the same order — load trades");
    println!("# the tokenize+sort work of a rebuild for page reads, checksums, and");
    println!("# varint decoding — but load needs only the snapshot file, not the raw");
    println!("# records. The paged open is O(footer): its time-to-first-query pays");
    println!("# only for the pages the first query's Theorem 1 window touches, so it");
    println!("# drops below the full load as the index grows.");

    let _ = std::fs::remove_file(&path);
}
