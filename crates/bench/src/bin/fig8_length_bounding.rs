//! Figure 8 — the effect of the Length Boundedness property.
//!
//! Every algorithm runs with the property on and off ("NLB"): SQL's
//! length predicate is removed from its index range scans, and the
//! inverted-list algorithms neither seek to `τ·len(q)` nor stop past
//! `len(q)/τ`. The paper reports up to ~4x differences in both wall-clock
//! time and pruning power.
//!
//! Usage: `fig8_length_bounding [--scale ...]`

use setsim_bench::{
    prepare_queries, print_table, run_workload, scale_from_args, word_collection, workload, Algo,
    Engines,
};
use setsim_core::algorithms::sql::SqlBaseline;
use setsim_core::{AlgoConfig, PreparedQuery, SearchStats};
use setsim_datagen::LengthBucket;
use std::time::Instant;

const QUERIES: usize = 100;
const ABLATED: [Algo; 4] = [Algo::INra, Algo::ITa, Algo::Sf, Algo::Hybrid];

fn run_sql(sql: &SqlBaseline, queries: &[PreparedQuery], tau: f64) -> (f64, SearchStats) {
    let mut stats = SearchStats::default();
    let start = Instant::now();
    for q in queries {
        stats.merge(&sql.search(q, tau).stats);
    }
    (
        start.elapsed().as_secs_f64() * 1e3 / queries.len().max(1) as f64,
        stats,
    )
}

fn main() {
    let (scale, _) = scale_from_args();
    let (corpus, collection) = word_collection(scale);
    let engines = Engines::build(&collection);
    let sql_nlb = SqlBaseline::build_with(&collection, engines.index.weights(), false, 64);
    println!(
        "# Figure 8: effect of Length Bounding ({} sets)",
        collection.len()
    );

    // (a) time vs threshold, 11-15 grams.
    let wl = workload(&corpus, LengthBucket::PAPER[2], 0, QUERIES, 81);
    let queries = prepare_queries(&engines.index, &wl);
    let taus = [0.6, 0.7, 0.8, 0.9];
    let mut rows = Vec::new();
    {
        let mut with = Vec::new();
        let mut without = Vec::new();
        for &tau in &taus {
            let (ms, _) = run_sql(engines.sql.as_ref().unwrap(), &queries, tau);
            with.push(format!("{ms:.3}"));
            let (ms, _) = run_sql(&sql_nlb, &queries, tau);
            without.push(format!("{ms:.3}"));
        }
        rows.push(("SQL".to_string(), with));
        rows.push(("SQL NLB".to_string(), without));
    }
    for algo in ABLATED {
        for (suffix, cfg) in [
            ("", AlgoConfig::full()),
            (" NLB", AlgoConfig::no_length_bounding()),
        ] {
            let cells = taus
                .iter()
                .map(|&tau| {
                    format!(
                        "{:.3}",
                        run_workload(&engines, algo, cfg, &queries, tau).avg_ms
                    )
                })
                .collect();
            rows.push((format!("{}{}", algo.name(), suffix), cells));
        }
    }
    print_table(
        "Figure 8(a): avg ms/query with and without Length Bounding",
        &taus.iter().map(|t| format!("tau={t}")).collect::<Vec<_>>(),
        &rows,
    );

    // (b) time vs query size for SQL and SF (the paper's detailed panel).
    let mut rows_b: Vec<(String, Vec<String>)> = vec![
        ("SQL".into(), Vec::new()),
        ("SQL NLB".into(), Vec::new()),
        ("SF".into(), Vec::new()),
        ("SF NLB".into(), Vec::new()),
    ];
    for (bi, bucket) in LengthBucket::PAPER.iter().enumerate() {
        let wl = workload(&corpus, *bucket, 0, QUERIES, 82 + bi as u64);
        let queries = prepare_queries(&engines.index, &wl);
        let (ms, _) = run_sql(engines.sql.as_ref().unwrap(), &queries, 0.8);
        rows_b[0].1.push(format!("{ms:.3}"));
        let (ms, _) = run_sql(&sql_nlb, &queries, 0.8);
        rows_b[1].1.push(format!("{ms:.3}"));
        let r = run_workload(&engines, Algo::Sf, AlgoConfig::full(), &queries, 0.8);
        rows_b[2].1.push(format!("{:.3}", r.avg_ms));
        let r = run_workload(
            &engines,
            Algo::Sf,
            AlgoConfig::no_length_bounding(),
            &queries,
            0.8,
        );
        rows_b[3].1.push(format!("{:.3}", r.avg_ms));
    }
    print_table(
        "Figure 8(b): SQL and SF vs query size (tau=0.8)",
        &LengthBucket::PAPER
            .iter()
            .map(setsim_datagen::LengthBucket::label)
            .collect::<Vec<_>>(),
        &rows_b,
    );

    // (c) pruning power with and without Length Bounding.
    let mut rows_c = Vec::new();
    for algo in ABLATED {
        for (suffix, cfg) in [
            ("", AlgoConfig::full()),
            (" NLB", AlgoConfig::no_length_bounding()),
        ] {
            let cells = taus
                .iter()
                .map(|&tau| {
                    format!(
                        "{:.1}%",
                        run_workload(&engines, algo, cfg, &queries, tau)
                            .stats
                            .pruning_pct()
                    )
                })
                .collect();
            rows_c.push((format!("{}{}", algo.name(), suffix), cells));
        }
    }
    print_table(
        "Figure 8(c): % pruned with and without Length Bounding",
        &taus.iter().map(|t| format!("tau={t}")).collect::<Vec<_>>(),
        &rows_c,
    );

    println!("\n# Expectation (paper): Length Bounding is worth up to ~4x in time and");
    println!("# pruning for every algorithm; the gap widens with larger queries.");
}
