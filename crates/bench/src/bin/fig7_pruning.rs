//! Figure 7 — pruning power: the percentage of list elements each
//! algorithm never reads, over the same three sweeps as Figure 6.
//! Inverted-list approaches only (sort-by-id defines the 0% floor).
//!
//! Usage: `fig7_pruning [--scale ...] [--json] [threshold|querysize|modifications]`
//!
//! Pruning is pure counter arithmetic
//! ([`setsim_bench::report::CounterSection::pruning_pct`]), so this
//! figure is fully deterministic; measurements still flow through
//! [`measure_workload`] so the `--json` output is a [`BenchReport`] in
//! the same schema as `setsim-bench harness` and `fig6_time`.

use setsim_bench::report::{
    measure_workload, print_figure, BenchReport, EnvFingerprint, Metric, Passes, WorkloadReport,
    SCHEMA_VERSION,
};
use setsim_bench::{prepare_queries, scale_from_args, word_collection, workload, Algo, Engines};
use setsim_core::AlgoConfig;
use setsim_datagen::LengthBucket;

const QUERIES: usize = 100;
/// Same base seed and per-column derivations as `fig6_time`, so Figures
/// 6 and 7 describe the same workloads.
const FIG_SEED: u64 = 61;

fn sweep_threshold(engines: &Engines<'_>, corpus: &setsim_datagen::Corpus) -> Vec<WorkloadReport> {
    let wl = workload(corpus, LengthBucket::PAPER[2], 0, QUERIES, FIG_SEED);
    let queries = prepare_queries(&engines.index, &wl);
    [0.6, 0.7, 0.8, 0.9]
        .iter()
        .map(|&tau| {
            measure_workload(
                engines,
                &Algo::LISTS_ONLY,
                AlgoConfig::default(),
                &queries,
                tau,
                &format!("tau={tau} 11-15g 0mods"),
                Passes { warmup: 0, reps: 1 },
            )
        })
        .collect()
}

fn sweep_querysize(engines: &Engines<'_>, corpus: &setsim_datagen::Corpus) -> Vec<WorkloadReport> {
    LengthBucket::PAPER
        .iter()
        .enumerate()
        .map(|(bi, bucket)| {
            let wl = workload(corpus, *bucket, 0, QUERIES, FIG_SEED + 1 + bi as u64);
            let queries = prepare_queries(&engines.index, &wl);
            measure_workload(
                engines,
                &Algo::LISTS_ONLY,
                AlgoConfig::default(),
                &queries,
                0.8,
                &format!("tau=0.8 {} 0mods", bucket.label()),
                Passes { warmup: 0, reps: 1 },
            )
        })
        .collect()
}

fn sweep_modifications(
    engines: &Engines<'_>,
    corpus: &setsim_datagen::Corpus,
) -> Vec<WorkloadReport> {
    [0usize, 1, 2, 3]
        .iter()
        .map(|&m| {
            let wl = workload(
                corpus,
                LengthBucket::PAPER[2],
                m,
                QUERIES,
                FIG_SEED + 5 + m as u64,
            );
            let queries = prepare_queries(&engines.index, &wl);
            measure_workload(
                engines,
                &Algo::LISTS_ONLY,
                AlgoConfig::default(),
                &queries,
                0.6,
                &format!("tau=0.6 11-15g {m}mods"),
                Passes { warmup: 0, reps: 1 },
            )
        })
        .collect()
}

fn print_sweep(title: &str, columns: &[WorkloadReport], labels: &[String]) {
    let refs: Vec<&WorkloadReport> = columns.iter().collect();
    print_figure(title, &refs, labels, Metric::PruningPct);
}

fn main() {
    let (scale, rest) = scale_from_args();
    let json = rest.iter().any(|a| a == "--json");
    let which = rest
        .iter()
        .find(|a| *a != "--json")
        .map_or("all", String::as_str);
    let (corpus, collection) = word_collection(scale);
    let engines = Engines::build_with(&collection, setsim_core::IndexOptions::default(), false);
    if !json {
        println!(
            "# Figure 7: pruning power ({} sets, {} postings)",
            collection.len(),
            engines.index.total_postings()
        );
    }
    let mut all = Vec::new();
    if which == "threshold" || which == "all" {
        let columns = sweep_threshold(&engines, &corpus);
        if !json {
            let labels = columns
                .iter()
                .map(|w| format!("tau={}", w.tau))
                .collect::<Vec<_>>();
            print_sweep(
                "Figure 7(a): % of list elements pruned vs threshold",
                &columns,
                &labels,
            );
        }
        all.extend(columns);
    }
    if which == "querysize" || which == "all" {
        let columns = sweep_querysize(&engines, &corpus);
        if !json {
            let labels: Vec<String> = LengthBucket::PAPER
                .iter()
                .map(setsim_datagen::LengthBucket::label)
                .collect();
            print_sweep(
                "Figure 7(b): % pruned vs query size (tau=0.8)",
                &columns,
                &labels,
            );
        }
        all.extend(columns);
    }
    if which == "modifications" || which == "all" {
        let columns = sweep_modifications(&engines, &corpus);
        if !json {
            let labels: Vec<String> = [0, 1, 2, 3].iter().map(|m| format!("{m} mods")).collect();
            print_sweep(
                "Figure 7(c): % pruned vs modifications (tau=0.6, 11-15 grams)",
                &columns,
                &labels,
            );
        }
        all.extend(columns);
    }
    if json {
        let report = BenchReport {
            schema_version: SCHEMA_VERSION,
            label: "fig7".to_string(),
            scale: setsim_bench::Scale::name(scale).to_string(),
            seed: FIG_SEED,
            warmup: 0,
            reps: 1,
            env: EnvFingerprint::capture(),
            workloads: all,
        };
        print!("{}", report.to_json_string());
        return;
    }
    println!("\n# Expectation (paper): sort-by-id prunes 0%; iTA prunes the most (random");
    println!("# accesses resolve scores early); SF/Hybrid/iNRA ~95% at high thresholds;");
    println!("# pruning grows with query size for Length-Bounded algorithms.");
}
