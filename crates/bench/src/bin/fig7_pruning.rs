//! Figure 7 — pruning power: the percentage of list elements each
//! algorithm never reads, over the same three sweeps as Figure 6.
//! Inverted-list approaches only (sort-by-id defines the 0% floor).
//!
//! Usage: `fig7_pruning [--scale ...] [threshold|querysize|modifications]`

use setsim_bench::{
    prepare_queries, print_table, run_workload, scale_from_args, word_collection, workload, Algo,
    Engines,
};
use setsim_core::AlgoConfig;
use setsim_datagen::LengthBucket;

const QUERIES: usize = 100;

fn pruning_cell(r: setsim_bench::WorkloadResult) -> String {
    format!("{:.1}%", r.stats.pruning_pct())
}

fn sweep_threshold(engines: &Engines<'_>, corpus: &setsim_datagen::Corpus) {
    let wl = workload(corpus, LengthBucket::PAPER[2], 0, QUERIES, 61);
    let queries = prepare_queries(&engines.index, &wl);
    let taus = [0.6, 0.7, 0.8, 0.9];
    let mut rows = Vec::new();
    for algo in Algo::LISTS_ONLY {
        let cells = taus
            .iter()
            .map(|&tau| {
                pruning_cell(run_workload(
                    engines,
                    algo,
                    AlgoConfig::default(),
                    &queries,
                    tau,
                ))
            })
            .collect();
        rows.push((algo.name().to_string(), cells));
    }
    print_table(
        "Figure 7(a): % of list elements pruned vs threshold",
        &taus.iter().map(|t| format!("tau={t}")).collect::<Vec<_>>(),
        &rows,
    );
}

fn sweep_querysize(engines: &Engines<'_>, corpus: &setsim_datagen::Corpus) {
    let mut rows: Vec<(String, Vec<String>)> = Algo::LISTS_ONLY
        .iter()
        .map(|a| (a.name().to_string(), Vec::new()))
        .collect();
    for (bi, bucket) in LengthBucket::PAPER.iter().enumerate() {
        let wl = workload(corpus, *bucket, 0, QUERIES, 62 + bi as u64);
        let queries = prepare_queries(&engines.index, &wl);
        for (ai, algo) in Algo::LISTS_ONLY.iter().enumerate() {
            rows[ai].1.push(pruning_cell(run_workload(
                engines,
                *algo,
                AlgoConfig::default(),
                &queries,
                0.8,
            )));
        }
    }
    print_table(
        "Figure 7(b): % pruned vs query size (tau=0.8)",
        &LengthBucket::PAPER
            .iter()
            .map(setsim_datagen::LengthBucket::label)
            .collect::<Vec<_>>(),
        &rows,
    );
}

fn sweep_modifications(engines: &Engines<'_>, corpus: &setsim_datagen::Corpus) {
    let mods = [0usize, 1, 2, 3];
    let mut rows: Vec<(String, Vec<String>)> = Algo::LISTS_ONLY
        .iter()
        .map(|a| (a.name().to_string(), Vec::new()))
        .collect();
    for &m in &mods {
        let wl = workload(corpus, LengthBucket::PAPER[2], m, QUERIES, 66 + m as u64);
        let queries = prepare_queries(&engines.index, &wl);
        for (ai, algo) in Algo::LISTS_ONLY.iter().enumerate() {
            rows[ai].1.push(pruning_cell(run_workload(
                engines,
                *algo,
                AlgoConfig::default(),
                &queries,
                0.6,
            )));
        }
    }
    print_table(
        "Figure 7(c): % pruned vs modifications (tau=0.6, 11-15 grams)",
        &mods.iter().map(|m| format!("{m} mods")).collect::<Vec<_>>(),
        &rows,
    );
}

fn main() {
    let (scale, rest) = scale_from_args();
    let (corpus, collection) = word_collection(scale);
    let engines = Engines::build_with(&collection, setsim_core::IndexOptions::default(), false);
    println!(
        "# Figure 7: pruning power ({} sets, {} postings)",
        collection.len(),
        engines.index.total_postings()
    );
    let which = rest.first().map_or("all", std::string::String::as_str);
    if which == "threshold" || which == "all" {
        sweep_threshold(&engines, &corpus);
    }
    if which == "querysize" || which == "all" {
        sweep_querysize(&engines, &corpus);
    }
    if which == "modifications" || which == "all" {
        sweep_modifications(&engines, &corpus);
    }
    println!("\n# Expectation (paper): sort-by-id prunes 0%; iTA prunes the most (random");
    println!("# accesses resolve scores early); SF/Hybrid/iNRA ~95% at high thresholds;");
    println!("# pruning grows with query size for Length-Bounded algorithms.");
}
