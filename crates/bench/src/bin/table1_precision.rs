//! Table I — average precision of TFIDF / IDF / BM25 / BM25′ on eight
//! dirty-duplicate datasets (cu1 = dirtiest … cu8 = cleanest).
//!
//! For each dataset, 100 random clean records are used as selection
//! queries; all records are ranked by each measure and average precision
//! is computed against the known duplicate clusters. The paper's claim:
//! dropping the tf component (IDF vs TFIDF, BM25′ vs BM25) does not hurt
//! precision.
//!
//! Usage: `table1_precision [--scale small|medium|large] [--queries N]`

use setsim_bench::{print_table, scale_from_args, Scale};
use setsim_core::measures::{rank_all, Bm25, Bm25NoTf, Idf, Similarity, TfIdf};
use setsim_core::{CollectionBuilder, SetCollection, TokenWeights};
use setsim_datagen::{DirtyConfig, DirtyDataset};
use setsim_prng::SliceRandom;
use setsim_tokenize::QGramTokenizer;

/// Average precision of one ranked list against a relevance set.
fn average_precision(ranked: &[(setsim_core::SetId, f64)], relevant: &[bool]) -> f64 {
    let total_relevant = relevant.iter().filter(|&&r| r).count();
    if total_relevant == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (rank, (id, _)) in ranked.iter().enumerate() {
        if relevant[id.index()] {
            hits += 1;
            sum += hits as f64 / (rank + 1) as f64;
        }
    }
    sum / total_relevant as f64
}

fn map_for_measure<M: Similarity>(
    measure: &M,
    collection: &SetCollection,
    weights: &TokenWeights,
    dataset: &DirtyDataset,
    query_clusters: &[usize],
) -> f64 {
    let mut total = 0.0;
    for &k in query_clusters {
        let relevant: Vec<bool> = (0..dataset.records().len())
            .map(|i| dataset.truth(i) == k)
            .collect();
        let ranked = rank_all(measure, collection, &dataset.clean()[k], weights);
        total += average_precision(&ranked, &relevant);
    }
    total / query_clusters.len() as f64
}

fn main() {
    let (scale, rest) = scale_from_args();
    let mut num_queries = 100usize;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        if a == "--queries" {
            num_queries = it.next().and_then(|v| v.parse().ok()).expect("--queries N");
        }
    }
    let (num_clean, dups) = match scale {
        Scale::Small => (200, 3),
        Scale::Medium => (1_000, 5),
        Scale::Large => (3_000, 5),
    };

    println!("# Table I: data sets and average precision");
    println!("# {num_clean} clean records x {dups} duplicates, {num_queries} queries per dataset");

    let mut rows = Vec::new();
    for level in 1u8..=8 {
        let mut cfg = DirtyConfig::cu_level(level);
        cfg.num_clean = num_clean;
        cfg.dups_per_clean = dups;
        cfg.corpus.num_records = num_clean;
        let dataset = DirtyDataset::generate(&cfg);

        let mut builder =
            CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#').with_lowercase());
        for r in dataset.records() {
            builder.add(r);
        }
        let collection = builder.build();
        let weights = TokenWeights::compute(&collection);

        let mut rng = setsim_prng::StdRng::seed_from_u64(7 + u64::from(level));
        let mut clusters: Vec<usize> = (0..dataset.clean().len()).collect();
        clusters.shuffle(&mut rng);
        clusters.truncate(num_queries);

        let tfidf = map_for_measure(&TfIdf, &collection, &weights, &dataset, &clusters);
        let idf = map_for_measure(&Idf, &collection, &weights, &dataset, &clusters);
        let bm25 = map_for_measure(&Bm25::default(), &collection, &weights, &dataset, &clusters);
        let bm25p = map_for_measure(
            &Bm25NoTf::default(),
            &collection,
            &weights,
            &dataset,
            &clusters,
        );
        rows.push((
            format!("cu{level}"),
            vec![
                format!("{tfidf:.3}"),
                format!("{idf:.3}"),
                format!("{bm25:.3}"),
                format!("{bm25p:.3}"),
            ],
        ));
    }
    print_table(
        "Table I: average precision per measure",
        &["TFIDF".into(), "IDF".into(), "BM25".into(), "BM25'".into()],
        &rows,
    );
    println!("\n# Expectation (paper): IDF ~ TFIDF and BM25' ~ BM25 on every dataset;");
    println!("# precision increases monotonically from cu1 (dirtiest) to cu8 (cleanest).");
}
