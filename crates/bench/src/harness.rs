//! The reproduction-grade benchmark harness behind `setsim-bench harness`.
//!
//! [`run`] executes a fixed grid of deterministic seeded workloads
//! (corpus and queries both derive from one master seed through
//! `setsim-datagen` / `setsim-prng`) through the [`Engines`] execution
//! path — every roster algorithm, explicit warmup passes, min-of-k wall
//! clock with median/MAD — and returns a [`BenchReport`] ready to write
//! as `BENCH_<label>.json`.
//!
//! Determinism contract: everything except the `latency` sections and
//! the `env` fingerprint is a pure function of
//! ([`HarnessConfig::scale`], [`HarnessConfig::seed`], the workload
//! grid). `BenchReport::counters_json` extracts exactly that slice;
//! `cargo xtask bench-diff` fails on *any* counter drift while treating
//! latency as a banded advisory signal. See EXPERIMENTS.md
//! "Methodology".

use crate::report::{measure_workload, BenchReport, EnvFingerprint, Passes, SCHEMA_VERSION};
use crate::{prepare_queries, word_collection_seeded, workload, Algo, Engines, Scale};
use setsim_core::AlgoConfig;
use setsim_datagen::LengthBucket;

/// Harness parameters. `scale` and `seed` select the deterministic
/// workload; the rest control measurement quality and labeling.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Corpus scale (drives record count and vocabulary size).
    pub scale: Scale,
    /// Master seed: corpus generation and every workload derive from it.
    pub seed: u64,
    /// Queries per workload (defaults per scale via [`HarnessConfig::new`]).
    pub queries: usize,
    /// Untimed passes per (workload, algorithm) before measurement.
    pub warmup: usize,
    /// Timed passes per (workload, algorithm); min/median/MAD reduce them.
    pub reps: usize,
    /// Report label — the file becomes `BENCH_<label>.json`.
    pub label: String,
}

impl HarnessConfig {
    /// Defaults for a scale: 1 warmup pass, 3 timed reps, and a query
    /// count sized so the harness stays in CI-friendly territory.
    #[must_use]
    pub fn new(scale: Scale, seed: u64) -> Self {
        let queries = match scale {
            Scale::Small => 50,
            Scale::Medium => 100,
            Scale::Large => 100,
        };
        Self {
            scale,
            seed,
            queries,
            warmup: 1,
            reps: 3,
            label: Scale::name(scale).to_string(),
        }
    }
}

/// The harness workload grid: three regimes that jointly exercise every
/// pruning mechanism (threshold pruning, length bounding, dirty-query
/// candidate management). Kept deliberately small and *stable*: the grid
/// is part of the schema — changing a row invalidates stored baselines,
/// so additions append new labels rather than altering existing ones.
const GRID: [GridRow; 3] = [
    // Selective regime: high τ on the paper's 11–15 gram bucket.
    GridRow {
        label: "tau=0.8 11-15g 0mods",
        bucket_idx: 2,
        tau: 0.8,
        modifications: 0,
    },
    // Permissive regime: low τ widens candidate sets.
    GridRow {
        label: "tau=0.6 11-15g 0mods",
        bucket_idx: 2,
        tau: 0.6,
        modifications: 0,
    },
    // Dirty regime: shorter queries with one edit each.
    GridRow {
        label: "tau=0.7 6-10g 1mod",
        bucket_idx: 1,
        tau: 0.7,
        modifications: 1,
    },
];

struct GridRow {
    label: &'static str,
    bucket_idx: usize,
    tau: f64,
    modifications: usize,
}

/// Run the full harness: build the seeded corpus and index once, then
/// measure every [`Algo`] on every grid workload.
#[must_use]
pub fn run(config: &HarnessConfig) -> BenchReport {
    let (corpus, collection) = word_collection_seeded(config.scale, config.seed);
    let engines = Engines::build(&collection);
    let mut workloads = Vec::with_capacity(GRID.len());
    for (i, row) in GRID.iter().enumerate() {
        let wl = workload(
            &corpus,
            LengthBucket::PAPER[row.bucket_idx],
            row.modifications,
            config.queries,
            // Distinct per-row streams derived from the master seed.
            config.seed ^ (0x9e37_79b9 + i as u64),
        );
        let queries = prepare_queries(&engines.index, &wl);
        workloads.push(measure_workload(
            &engines,
            &Algo::ALL,
            AlgoConfig::default(),
            &queries,
            row.tau,
            row.label,
            Passes {
                warmup: config.warmup,
                reps: config.reps,
            },
        ));
    }
    BenchReport {
        schema_version: SCHEMA_VERSION,
        label: config.label.clone(),
        scale: Scale::name(config.scale).to_string(),
        seed: config.seed,
        warmup: config.warmup as u64,
        reps: config.reps as u64,
        env: EnvFingerprint::capture(),
        workloads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_produces_full_grid() {
        let mut config = HarnessConfig::new(Scale::Small, 42);
        config.queries = 5;
        config.warmup = 0;
        config.reps = 1;
        let report = run(&config);
        assert_eq!(report.workloads.len(), GRID.len());
        for w in &report.workloads {
            assert_eq!(w.algos.len(), Algo::ALL.len());
            assert_eq!(w.queries, 5);
            for a in &w.algos {
                assert_eq!(a.counters.queries, 5);
                assert!(a.latency.min_ms_per_query >= 0.0);
            }
            // The exhaustive baselines do real work on every workload.
            let merge = w.algo("sort-by-id").expect("merge in roster");
            assert!(merge.counters.elements_read > 0, "{}", w.label);
            let sql = w.algo("SQL").expect("sql in roster");
            assert!(sql.counters.elements_read > 0, "{}", w.label);
        }
        // The report survives its own serialization.
        let back = BenchReport::parse(&report.to_json_string()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn grid_labels_are_unique() {
        for (i, a) in GRID.iter().enumerate() {
            for b in &GRID[i + 1..] {
                assert_ne!(a.label, b.label);
            }
        }
    }
}
