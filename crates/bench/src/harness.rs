//! The reproduction-grade benchmark harness behind `setsim-bench harness`.
//!
//! [`run`] executes a fixed grid of deterministic seeded workloads
//! (corpus and queries both derive from one master seed through
//! `setsim-datagen` / `setsim-prng`) through the [`Engines`] execution
//! path — every roster algorithm, explicit warmup passes, min-of-k wall
//! clock with median/MAD — and returns a [`BenchReport`] ready to write
//! as `BENCH_<label>.json`.
//!
//! Determinism contract: everything except the `latency` sections and
//! the `env` fingerprint is a pure function of
//! ([`HarnessConfig::scale`], [`HarnessConfig::seed`], the workload
//! grid). `BenchReport::counters_json` extracts exactly that slice;
//! `cargo xtask bench-diff` fails on *any* counter drift while treating
//! latency as a banded advisory signal. See EXPERIMENTS.md
//! "Methodology".

use crate::report::{
    measure_workload, AlgoReport, BenchReport, CounterSection, EnvFingerprint, LatencySection,
    Passes, WorkloadReport, SCHEMA_VERSION,
};
use crate::{prepare_queries, word_collection_seeded, workload, Algo, Engines, Scale};
use setsim_core::{
    AlgoConfig, AlgorithmKind, CollectionBuilder, DriftBudget, IndexOptions, InvertedIndex,
    MutableIndex, MutableSearchRequest, PreparedQuery, QueryEngine, RecordId, ReprKind, ReprPolicy,
    Scratch, SearchRequest, SearchStats, SetCollection, ShardedEngine, ShardedIndex,
};
use setsim_datagen::{Corpus, LengthBucket};
use setsim_tokenize::QGramTokenizer;
use std::path::Path;
use std::time::Instant;

/// Harness parameters. `scale` and `seed` select the deterministic
/// workload; the rest control measurement quality and labeling.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Corpus scale (drives record count and vocabulary size).
    pub scale: Scale,
    /// Master seed: corpus generation and every workload derive from it.
    pub seed: u64,
    /// Queries per workload (defaults per scale via [`HarnessConfig::new`]).
    pub queries: usize,
    /// Untimed passes per (workload, algorithm) before measurement.
    pub warmup: usize,
    /// Timed passes per (workload, algorithm); min/median/MAD reduce them.
    pub reps: usize,
    /// Report label — the file becomes `BENCH_<label>.json`.
    pub label: String,
}

impl HarnessConfig {
    /// Defaults for a scale: 1 warmup pass, 3 timed reps, and a query
    /// count sized so the harness stays in CI-friendly territory.
    #[must_use]
    pub fn new(scale: Scale, seed: u64) -> Self {
        let queries = match scale {
            Scale::Small => 50,
            Scale::Medium => 100,
            Scale::Large => 100,
        };
        Self {
            scale,
            seed,
            queries,
            warmup: 1,
            reps: 3,
            label: Scale::name(scale).to_string(),
        }
    }
}

/// The harness workload grid: three regimes that jointly exercise every
/// pruning mechanism (threshold pruning, length bounding, dirty-query
/// candidate management). Kept deliberately small and *stable*: the grid
/// is part of the schema — changing a row invalidates stored baselines,
/// so additions append new labels rather than altering existing ones.
const GRID: [GridRow; 3] = [
    // Selective regime: high τ on the paper's 11–15 gram bucket.
    GridRow {
        label: "tau=0.8 11-15g 0mods",
        bucket_idx: 2,
        tau: 0.8,
        modifications: 0,
    },
    // Permissive regime: low τ widens candidate sets.
    GridRow {
        label: "tau=0.6 11-15g 0mods",
        bucket_idx: 2,
        tau: 0.6,
        modifications: 0,
    },
    // Dirty regime: shorter queries with one edit each.
    GridRow {
        label: "tau=0.7 6-10g 1mod",
        bucket_idx: 1,
        tau: 0.7,
        modifications: 1,
    },
];

struct GridRow {
    label: &'static str,
    bucket_idx: usize,
    tau: f64,
    modifications: usize,
}

/// Run the full harness: build the seeded corpus and index once, then
/// measure every [`Algo`] on every grid workload.
#[must_use]
pub fn run(config: &HarnessConfig) -> BenchReport {
    let (corpus, collection) = word_collection_seeded(config.scale, config.seed);
    let engines = Engines::build(&collection);
    let mut workloads = Vec::with_capacity(GRID.len());
    for (i, row) in GRID.iter().enumerate() {
        let wl = workload(
            &corpus,
            LengthBucket::PAPER[row.bucket_idx],
            row.modifications,
            config.queries,
            // Distinct per-row streams derived from the master seed.
            config.seed ^ (0x9e37_79b9 + i as u64),
        );
        let queries = prepare_queries(&engines.index, &wl);
        workloads.push(measure_workload(
            &engines,
            &Algo::ALL,
            AlgoConfig::default(),
            &queries,
            row.tau,
            row.label,
            Passes {
                warmup: config.warmup,
                reps: config.reps,
            },
        ));
    }
    workloads.push(measure_mixed_workload(&corpus, config));
    workloads.push(measure_dense_workload(&corpus, config));
    workloads.push(measure_sharded_workload(&corpus, &collection, config));
    workloads.push(measure_paged_workload(&corpus, &collection, config));
    BenchReport {
        schema_version: SCHEMA_VERSION,
        label: config.label.clone(),
        scale: Scale::name(config.scale).to_string(),
        seed: config.seed,
        warmup: config.warmup as u64,
        reps: config.reps as u64,
        env: EnvFingerprint::capture(),
        workloads,
    }
}

/// Label of the mixed read/write cell (appended after the static grid).
pub const MIXED_LABEL: &str = "tau=0.7 6-10g mixed-rw";

/// Base records of the mixed cell (a corpus prefix — capped so each
/// timed pass can rebuild its index from scratch in CI time).
const MIXED_BASE: usize = 1024;
/// Held-out records that feed the insert/upsert stream.
const MIXED_INSERT_POOL: usize = 64;

/// Measure the seeded mixed read/write cell: every third step mutates a
/// [`MutableIndex`] (rotating insert / delete / upsert over a held-out
/// record pool), every step serves one query through the delta/base
/// search path, and the index compacts once at the schedule midpoint.
/// Each timed pass replays the identical schedule against a fresh index,
/// so the counter section stays a pure function of (scale, seed, grid)
/// like every static cell. The roster is the inverted-list subset — the
/// relational baseline has no mutable path.
fn measure_mixed_workload(corpus: &Corpus, config: &HarnessConfig) -> WorkloadReport {
    let tau = 0.7;
    let texts: Vec<&str> = corpus
        .words()
        .take(MIXED_BASE + MIXED_INSERT_POOL)
        .collect();
    let split = texts.len().saturating_sub(MIXED_INSERT_POOL);
    let (base, inserts) = texts.split_at(split);
    let wl = workload(
        corpus,
        LengthBucket::PAPER[1],
        1,
        config.queries,
        config.seed ^ 0x6d69_7865_645f_7277, // distinct stream for this cell
    );
    let queries = wl.queries();
    let (warmup, reps) = (config.warmup, config.reps.max(1));
    let mut algos = Vec::new();
    for algo in Algo::ALL {
        let Some(kind) = algo.kind() else {
            continue;
        };
        for _ in 0..warmup {
            mixed_pass(base, inserts, queries, kind, tau);
        }
        let mut samples = Vec::with_capacity(reps);
        let mut stats = SearchStats::default();
        let mut matches = 0u64;
        for _ in 0..reps {
            let (pass_stats, pass_matches, ms_per_query) =
                mixed_pass(base, inserts, queries, kind, tau);
            stats = pass_stats;
            matches = pass_matches;
            samples.push(ms_per_query);
        }
        algos.push(AlgoReport {
            name: algo.name().to_string(),
            counters: CounterSection::from_stats(&stats, queries.len() as u64, matches),
            latency: LatencySection::from_samples(&samples),
        });
    }
    WorkloadReport {
        label: MIXED_LABEL.to_string(),
        tau,
        queries: queries.len() as u64,
        algos,
    }
}

/// One pass of the mixed schedule: fresh index (untimed), then the timed
/// interleave of mutations, the midpoint compaction, and every query.
fn mixed_pass(
    base: &[&str],
    inserts: &[&str],
    queries: &[String],
    kind: AlgorithmKind,
    tau: f64,
) -> (SearchStats, u64, f64) {
    let mut builder = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    for t in base {
        builder.add(t);
    }
    let mut mi = MutableIndex::from_collection(Box::new(builder.build()), IndexOptions::default())
        .expect("q-gram tokenizer has a serializable spec")
        // One explicit compaction at the midpoint; auto-triggers would
        // couple the schedule to the budget defaults.
        .with_budget(DriftBudget {
            max_rel_err: f64::INFINITY,
            max_delta_records: usize::MAX,
        });
    let mut scratch = Scratch::default();
    let mut stats = SearchStats::default();
    let mut matches = 0u64;
    let mut insert_ptr = 0usize;
    // Deletes walk base ids from the front, upserts from the back: the
    // streams never collide at this schedule length, so every mutation
    // hits a live record and the schedule is identical across passes.
    let mut delete_next = 0u64;
    let mut upsert_next = base.len() as u64 - 1;
    let start = Instant::now();
    for (j, text) in queries.iter().enumerate() {
        if j % 3 == 1 {
            match (j / 3) % 3 {
                0 => {
                    mi.insert(inserts[insert_ptr % inserts.len()]);
                    insert_ptr += 1;
                }
                1 => {
                    mi.delete(RecordId(delete_next));
                    delete_next += 1;
                }
                _ => {
                    mi.upsert(RecordId(upsert_next), inserts[insert_ptr % inserts.len()]);
                    insert_ptr += 1;
                    upsert_next -= 1;
                }
            }
        }
        if j == queries.len() / 2 {
            mi.compact();
        }
        let q = mi.prepare_query_str(text);
        let req = MutableSearchRequest::new(&q).tau(tau).algorithm(kind);
        let out = mi.search(&mut scratch, &req).expect("mixed-cell search");
        matches += out.results.len() as u64;
        stats.merge(&out.stats);
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    (stats, matches, elapsed_ms / queries.len().max(1) as f64)
}

/// Label of the dense-token cell (appended after the mixed cell).
pub const DENSE_LABEL: &str = "tau=0.8 dense adaptive-vs-run";

/// Records in the dense cell's corpus (every one shares a long core, so
/// the core's gram lists hold every record — the bitmap regime).
const DENSE_RECORDS: usize = 1_024;
/// Roster of the dense cell: the algorithms whose in-window pruning the
/// block-max layer accelerates. Hybrid is absent deliberately — its
/// resting-list rule already stops before the postings a block-max seek
/// would bypass, so its counters are identical across the variants.
const DENSE_ROSTER: [Algo; 2] = [Algo::Sf, Algo::INra];

/// Measure the dense-token cell: the same corpus-derived workload runs
/// against two indexes over one dense collection — the adaptive
/// representation policy with block skipping (the kernel path) and the
/// pre-kernel configuration (every list a sorted run, block skipping
/// off, classic skip lists still on). Both variants of each algorithm
/// report side by side, so `bench-diff` gates the representation
/// machinery's counter win (fewer `elements_read`, more
/// `elements_skipped`) exactly like any other deterministic counter.
fn measure_dense_workload(corpus: &Corpus, config: &HarnessConfig) -> WorkloadReport {
    let tau = 0.8;
    let texts: Vec<String> = corpus
        .words()
        .take(DENSE_RECORDS)
        .map(|w| format!("sharedcore {w}"))
        .collect();
    let mut builder = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    for t in &texts {
        builder.add(t);
    }
    let collection = builder.build();
    let adaptive = Engines::build_with(&collection, IndexOptions::default(), false);
    let run_only = Engines::build_with(
        &collection,
        IndexOptions::default().with_repr_policy(ReprPolicy::Force(ReprKind::Run)),
        false,
    );
    debug_assert!(
        adaptive
            .index
            .list(collection.dict().get("har").expect("core gram interned"))
            .is_some_and(|l| l.repr() == ReprKind::Bitmap),
        "dense cell's core grams must adapt to bitmaps"
    );

    // Queries sample the records evenly — every one hits the dense core.
    let n = config.queries.max(1);
    let stride = (texts.len() / n).max(1);
    let query_texts: Vec<&String> = texts.iter().step_by(stride).take(n).collect();

    let (warmup, reps) = (config.warmup, config.reps.max(1));
    let mut algos = Vec::new();
    let variants: [(&str, &Engines<'_>, AlgoConfig); 2] = [
        ("", &adaptive, AlgoConfig::default()),
        (" run-noskip", &run_only, AlgoConfig::no_block_skip()),
    ];
    for (suffix, engines, cfg) in variants {
        let queries: Vec<PreparedQuery> = query_texts
            .iter()
            .map(|s| engines.index.prepare_query_str(s))
            .collect();
        for algo in DENSE_ROSTER {
            for _ in 0..warmup {
                dense_pass(engines, algo, cfg, &queries, tau);
            }
            let mut samples = Vec::with_capacity(reps);
            let mut stats = SearchStats::default();
            let mut matches = 0u64;
            for _ in 0..reps {
                let start = Instant::now();
                let (pass_stats, pass_matches) = dense_pass(engines, algo, cfg, &queries, tau);
                let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
                stats = pass_stats;
                matches = pass_matches;
                // lint: allow — workload sizes well below 2^53.
                samples.push(elapsed_ms / queries.len().max(1) as f64);
            }
            algos.push(AlgoReport {
                name: format!("{}{suffix}", algo.name()),
                counters: CounterSection::from_stats(&stats, queries.len() as u64, matches),
                latency: LatencySection::from_samples(&samples),
            });
        }
    }
    WorkloadReport {
        label: DENSE_LABEL.to_string(),
        tau,
        queries: query_texts.len() as u64,
        algos,
    }
}

/// Label of the sharded scatter-gather cell (appended after the dense
/// cell).
pub const SHARDED_LABEL: &str = "tau=0.8 11-15g sharded-8";

/// Shard count of the sharded cell — enough bands that Theorem 1's
/// window visibly prunes whole shards at τ = 0.8.
const SHARDED_SHARDS: usize = 8;

/// Measure the sharded scatter-gather cell: the harness corpus behind a
/// [`ShardedIndex`] with [`SHARDED_SHARDS`] length bands, every query
/// served through the [`ShardedEngine`] scatter path. The per-shard
/// gather merges stats in deterministic plan order, so the counters —
/// including the new `shards_pruned` / `shard_pruned_elements` — stay a
/// pure function of (scale, seed, grid) and `bench-diff` gates the
/// band-pruning machinery like any other cell.
fn measure_sharded_workload(
    corpus: &Corpus,
    collection: &SetCollection,
    config: &HarnessConfig,
) -> WorkloadReport {
    let tau = 0.8;
    let index = ShardedIndex::build(collection, SHARDED_SHARDS, IndexOptions::default())
        .expect("q-gram tokenizer has a serializable spec");
    let engine = ShardedEngine::new(index);
    let wl = workload(
        corpus,
        LengthBucket::PAPER[2],
        0,
        config.queries,
        config.seed ^ 0x0073_6361_7474_6572, // "scatter": distinct stream
    );
    let queries: Vec<PreparedQuery> = wl
        .queries()
        .iter()
        .map(|s| engine.prepare_query_str(s))
        .collect();
    let (warmup, reps) = (config.warmup, config.reps.max(1));
    let mut algos = Vec::new();
    for algo in Algo::LISTS_ONLY {
        let Some(kind) = algo.kind() else {
            continue;
        };
        for _ in 0..warmup {
            sharded_pass(&engine, kind, &queries, tau);
        }
        let mut samples = Vec::with_capacity(reps);
        let mut stats = SearchStats::default();
        let mut matches = 0u64;
        for _ in 0..reps {
            let start = Instant::now();
            let (pass_stats, pass_matches) = sharded_pass(&engine, kind, &queries, tau);
            let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
            stats = pass_stats;
            matches = pass_matches;
            // lint: allow — workload sizes well below 2^53.
            samples.push(elapsed_ms / queries.len().max(1) as f64);
        }
        algos.push(AlgoReport {
            name: algo.name().to_string(),
            counters: CounterSection::from_stats(&stats, queries.len() as u64, matches),
            latency: LatencySection::from_samples(&samples),
        });
    }
    WorkloadReport {
        label: SHARDED_LABEL.to_string(),
        tau,
        queries: queries.len() as u64,
        algos,
    }
}

/// Label of the demand-paged serving cell (appended after the sharded
/// cell).
pub const PAGED_LABEL: &str = "tau=0.8 11-15g paged-pool";

/// Pool sizes of the paged sweep, as percentages of the snapshot's page
/// count. 10% forces eviction pressure, 100% makes every re-fault a hit.
const PAGED_POOL_PCTS: [u64; 3] = [10, 50, 100];

/// Measure the demand-paged serving cell: the harness index persisted as
/// a snapshot, then served through [`QueryEngine::open_paged`] at three
/// pool sizes — 10%, 50%, and 100% of the snapshot's page count. Every
/// timed pass opens a fresh engine (cold pool), so the page-fault
/// counters — `pages_touched`, `page_cache_hits`, `page_cache_misses` —
/// are a pure function of (scale, seed, grid) like every other cell and
/// `bench-diff` gates the windowing/eviction machinery on counter drift.
fn measure_paged_workload(
    corpus: &Corpus,
    collection: &SetCollection,
    config: &HarnessConfig,
) -> WorkloadReport {
    let tau = 0.8;
    let index = InvertedIndex::build(collection, IndexOptions::default());
    let path = std::env::temp_dir().join(format!(
        "setsim-harness-paged-{}-{}.snap",
        std::process::id(),
        config.seed
    ));
    index.save(&path).expect("paged-cell snapshot save");
    drop(index);
    let pages = setsim_core::snapshot::verify(&path)
        .expect("fresh snapshot verifies")
        .pages;
    let wl = workload(
        corpus,
        LengthBucket::PAPER[2],
        0,
        config.queries,
        config.seed ^ 0x0070_6167_6564, // "paged": distinct stream
    );
    let queries = wl.queries();
    let (warmup, reps) = (config.warmup, config.reps.max(1));
    let mut algos = Vec::new();
    for pct in PAGED_POOL_PCTS {
        let pool = usize::try_from((pages * pct / 100).max(1)).expect("page count fits usize");
        for _ in 0..warmup {
            paged_pass(&path, pool, queries, tau);
        }
        let mut samples = Vec::with_capacity(reps);
        let mut stats = SearchStats::default();
        let mut matches = 0u64;
        for _ in 0..reps {
            let start = Instant::now();
            let (pass_stats, pass_matches) = paged_pass(&path, pool, queries, tau);
            let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
            stats = pass_stats;
            matches = pass_matches;
            // lint: allow — workload sizes well below 2^53.
            samples.push(elapsed_ms / queries.len().max(1) as f64);
        }
        algos.push(AlgoReport {
            name: format!("SF pool={pct}%"),
            counters: CounterSection::from_stats(&stats, queries.len() as u64, matches),
            latency: LatencySection::from_samples(&samples),
        });
    }
    let _ = std::fs::remove_file(&path);
    WorkloadReport {
        label: PAGED_LABEL.to_string(),
        tau,
        queries: queries.len() as u64,
        algos,
    }
}

/// One pass of the paged cell: a fresh cold-pool engine (open is
/// footer-only, so it belongs in the timed serve path), every query
/// through the SF algorithm.
fn paged_pass(path: &Path, pool: usize, queries: &[String], tau: f64) -> (SearchStats, u64) {
    let mut engine = QueryEngine::open_paged(path, pool).expect("paged-cell open");
    let mut stats = SearchStats::default();
    let mut matches = 0u64;
    for text in queries {
        let q = engine.prepare_query_str(text);
        let req = SearchRequest::new(&q).tau(tau).algorithm(AlgorithmKind::Sf);
        let out = engine.search(req).expect("paged-cell search");
        matches += out.results.len() as u64;
        stats.merge(&out.stats);
    }
    (stats, matches)
}

/// One pass of the sharded cell: every query through the scatter engine.
fn sharded_pass(
    engine: &ShardedEngine,
    kind: AlgorithmKind,
    queries: &[PreparedQuery],
    tau: f64,
) -> (SearchStats, u64) {
    let mut stats = SearchStats::default();
    let mut matches = 0u64;
    for q in queries {
        let req = SearchRequest::new(q).tau(tau).algorithm(kind);
        let out = engine.search(&req).expect("sharded-cell search");
        matches += out.results.len() as u64;
        stats.merge(&out.stats);
    }
    (stats, matches)
}

/// One pass of the dense cell: every query through one engine variant.
fn dense_pass(
    engines: &Engines<'_>,
    algo: Algo,
    cfg: AlgoConfig,
    queries: &[PreparedQuery],
    tau: f64,
) -> (SearchStats, u64) {
    let mut stats = SearchStats::default();
    let mut matches = 0u64;
    for q in queries {
        let out = engines.run(algo, cfg, q, tau);
        matches += out.results.len() as u64;
        stats.merge(&out.stats);
    }
    (stats, matches)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_produces_full_grid() {
        let mut config = HarnessConfig::new(Scale::Small, 42);
        config.queries = 5;
        config.warmup = 0;
        config.reps = 1;
        let report = run(&config);
        assert_eq!(report.workloads.len(), GRID.len() + 4);
        for w in &report.workloads[..GRID.len()] {
            assert_eq!(w.algos.len(), Algo::ALL.len());
            assert_eq!(w.queries, 5);
            for a in &w.algos {
                assert_eq!(a.counters.queries, 5);
                assert!(a.latency.min_ms_per_query >= 0.0);
            }
            // The exhaustive baselines do real work on every workload.
            let merge = w.algo("sort-by-id").expect("merge in roster");
            assert!(merge.counters.elements_read > 0, "{}", w.label);
            let sql = w.algo("SQL").expect("sql in roster");
            assert!(sql.counters.elements_read > 0, "{}", w.label);
        }
        // The mixed read/write cell runs the inverted-list roster (the
        // relational baseline has no mutable path) over the same query
        // count, and its counters show real work too.
        let mixed = &report.workloads[GRID.len()];
        assert_eq!(mixed.label, MIXED_LABEL);
        assert_eq!(mixed.algos.len(), Algo::LISTS_ONLY.len());
        assert!(mixed.algo("SQL").is_none());
        assert_eq!(mixed.queries, 5);
        for a in &mixed.algos {
            assert_eq!(a.counters.queries, 5);
            assert!(
                a.counters.records_scanned > 0,
                "{}: the delta re-score path must run",
                a.name
            );
        }
        // The dense cell reports both engine variants for its roster,
        // and the kernel path (adaptive representations + block
        // skipping) beats the pre-kernel configuration on the counters
        // the block-max layer exists to improve.
        let dense = &report.workloads[GRID.len() + 1];
        assert_eq!(dense.label, DENSE_LABEL);
        assert_eq!(dense.algos.len(), 2 * DENSE_ROSTER.len());
        for algo in DENSE_ROSTER {
            let kernel = dense.algo(algo.name()).expect("adaptive variant");
            let pre = dense
                .algo(&format!("{} run-noskip", algo.name()))
                .expect("run-noskip variant");
            assert_eq!(
                kernel.counters.matches,
                pre.counters.matches,
                "{}: the variants must agree on answers",
                algo.name()
            );
            assert!(
                kernel.counters.elements_read < pre.counters.elements_read,
                "{}: kernel reads {} vs pre-kernel {}",
                algo.name(),
                kernel.counters.elements_read,
                pre.counters.elements_read
            );
            assert!(
                kernel.counters.elements_skipped > pre.counters.elements_skipped,
                "{}: kernel skips {} vs pre-kernel {}",
                algo.name(),
                kernel.counters.elements_skipped,
                pre.counters.elements_skipped
            );
        }
        // The sharded cell serves the inverted-list roster through the
        // scatter-gather engine: every algorithm agrees on answers, the
        // Theorem 1 band check prunes whole shards, and the pruned
        // postings land in the new counters.
        let sharded = &report.workloads[GRID.len() + 2];
        assert_eq!(sharded.label, SHARDED_LABEL);
        assert_eq!(sharded.algos.len(), Algo::LISTS_ONLY.len());
        let sf_matches = sharded.algo("SF").expect("SF in roster").counters.matches;
        for a in &sharded.algos {
            assert_eq!(a.counters.queries, 5);
            assert_eq!(
                a.counters.matches, sf_matches,
                "{}: sharded roster must agree on answers",
                a.name
            );
            assert!(
                a.counters.shards_pruned > 0,
                "{}: tau=0.8 must prune whole shards",
                a.name
            );
            assert!(
                a.counters.shard_pruned_elements > 0,
                "{}: pruned shards hold postings",
                a.name
            );
            assert!(
                a.counters.elements_read
                    + a.counters.elements_skipped
                    + a.counters.shard_pruned_elements
                    <= a.counters.total_list_elements,
                "{}: the stats partition must cover shard pruning",
                a.name
            );
        }
        // The paged cell sweeps the pool over the same snapshot: every
        // pool size agrees on answers, faults real pages, and growing the
        // pool can only reduce disk reads (misses).
        let paged = report.workloads.last().expect("paged cell present");
        assert_eq!(paged.label, PAGED_LABEL);
        assert_eq!(paged.algos.len(), PAGED_POOL_PCTS.len());
        let full = paged.algo("SF pool=100%").expect("full-pool entry");
        for a in &paged.algos {
            assert_eq!(a.counters.queries, 5);
            assert_eq!(
                a.counters.matches, full.counters.matches,
                "{}: pool size must not change answers",
                a.name
            );
            assert!(a.counters.pages_touched > 0, "{}: pages fault", a.name);
            assert!(
                a.counters.page_cache_hits + a.counters.page_cache_misses
                    >= a.counters.pages_touched,
                "{}: every touched page was fetched at least once",
                a.name
            );
        }
        let tiny = paged.algo("SF pool=10%").expect("tiny-pool entry");
        assert!(
            tiny.counters.page_cache_misses >= full.counters.page_cache_misses,
            "a smaller pool cannot miss less: {} vs {}",
            tiny.counters.page_cache_misses,
            full.counters.page_cache_misses
        );
        // The report survives its own serialization.
        let back = BenchReport::parse(&report.to_json_string()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn grid_labels_are_unique() {
        for (i, a) in GRID.iter().enumerate() {
            for b in &GRID[i + 1..] {
                assert_ne!(a.label, b.label);
            }
        }
    }
}
