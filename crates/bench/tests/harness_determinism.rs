//! The harness determinism contract: two runs with the same
//! (scale, seed, grid) must produce **byte-identical** counter sections.
//! This is the property `cargo xtask bench-diff` builds its zero-tolerance
//! counter gate on — if this test fails, an algorithm (or the workload
//! generator) has picked up a source of nondeterminism.

use setsim_bench::harness::{run, HarnessConfig};
use setsim_bench::report::BenchReport;
use setsim_bench::Scale;

fn tiny_config() -> HarnessConfig {
    let mut config = HarnessConfig::new(Scale::Small, 42);
    // Keep the test fast: determinism does not depend on workload size,
    // warmup, or repetition count.
    config.queries = 10;
    config.warmup = 0;
    config.reps = 1;
    config
}

#[test]
fn same_seed_runs_are_counter_identical() {
    let config = tiny_config();
    let a = run(&config);
    let b = run(&config);
    assert_eq!(
        a.counters_json(),
        b.counters_json(),
        "two same-seed harness runs diverged in their deterministic slice"
    );
    // The full reports are NOT required to be identical: latency sections
    // carry wall-clock noise by design.
}

#[test]
fn different_seed_changes_counters() {
    let a = run(&tiny_config());
    let mut config = tiny_config();
    config.seed = 43;
    let b = run(&config);
    assert_ne!(
        a.counters_json(),
        b.counters_json(),
        "seed must drive the workload (corpus and queries)"
    );
}

#[test]
fn counters_survive_json_round_trip() {
    let a = run(&tiny_config());
    let parsed = BenchReport::parse(&a.to_json_string()).expect("own output parses");
    assert_eq!(a.counters_json(), parsed.counters_json());
    assert_eq!(a, parsed);
}
