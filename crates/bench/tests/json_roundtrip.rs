//! Property tests for the hand-rolled JSON layer (`setsim_bench::json`):
//! any value the writer can emit must parse back to an identical tree,
//! across escaping, numbers (integer fast path and shortest-round-trip
//! floats), nesting, and both render modes.

use proptest::prelude::*;
use setsim_bench::json::Json;

/// Recursive generator for arbitrary JSON trees. The shim's [`Strategy`]
/// trait is object-safe and sample-based, so recursion is a plain struct
/// that bounds its own depth: scalars at the leaves, arrays and objects
/// (with possibly-escaped keys) above them.
#[derive(Debug, Clone)]
struct JsonTree {
    depth: u32,
}

const MAX_BREADTH: usize = 4;

fn scalar(rng: &mut TestRng) -> Json {
    match (0u8..5u8).sample(rng) {
        0 => Json::Null,
        1 => Json::Bool((0u8..2).sample(rng) == 1),
        // Exact integers exercise the writer's i64 fast path.
        2 => Json::Num((-1_000_000i64..1_000_000).sample(rng) as f64),
        3 => {
            // Finite floats of widely varying magnitude.
            let mantissa = (-1_000_000i64..1_000_000).sample(rng) as f64;
            let exp = (-12i32..12).sample(rng);
            Json::Num(mantissa * 10f64.powi(exp))
        }
        _ => Json::Str(arb_string(rng)),
    }
}

/// Strings mixing ASCII, control characters, quotes, backslashes, and
/// astral-plane code points (surrogate-pair escapes on the wire).
fn arb_string(rng: &mut TestRng) -> String {
    let len = (0usize..8).sample(rng);
    (0..len)
        .map(|_| match (0u8..6u8).sample(rng) {
            0 => '"',
            1 => '\\',
            2 => char::from_u32((0x00u32..0x20).sample(rng)).unwrap_or('\n'),
            3 => '\u{1F600}',
            4 => 'é',
            _ => char::from_u32((0x20u32..0x7f).sample(rng)).unwrap_or('x'),
        })
        .collect()
}

impl Strategy for JsonTree {
    type Value = Json;

    fn sample(&self, rng: &mut TestRng) -> Json {
        if self.depth == 0 {
            return scalar(rng);
        }
        let child = JsonTree {
            depth: self.depth - 1,
        };
        match (0u8..4u8).sample(rng) {
            0 | 1 => scalar(rng),
            2 => {
                let n = (0usize..=MAX_BREADTH).sample(rng);
                Json::Arr((0..n).map(|_| child.sample(rng)).collect())
            }
            _ => {
                let n = (0usize..=MAX_BREADTH).sample(rng);
                Json::Obj(
                    (0..n)
                        .map(|i| (format!("{}{i}", arb_string(rng)), child.sample(rng)))
                        .collect(),
                )
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Compact render → parse is the identity on the value tree.
    #[test]
    fn compact_render_round_trips(v in JsonTree { depth: 3 }) {
        let text = v.render();
        let back = Json::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("parse failed on {text:?}: {e}")))?;
        prop_assert_eq!(&back, &v, "through {}", text);
    }

    /// Pretty render parses to the same tree as compact render.
    #[test]
    fn pretty_render_round_trips(v in JsonTree { depth: 3 }) {
        let text = v.pretty();
        let back = Json::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("parse failed on {text:?}: {e}")))?;
        prop_assert_eq!(&back, &v, "through {}", text);
    }

    /// Rendering is deterministic: the same tree always produces the
    /// same bytes (the property the counter-section byte-diff relies on).
    #[test]
    fn rendering_is_deterministic(v in JsonTree { depth: 3 }) {
        prop_assert_eq!(v.render(), v.render());
        prop_assert_eq!(v.pretty(), v.pretty());
    }

    /// Every finite f64 the generator produces survives the number path
    /// exactly (integer fast path and shortest-round-trip formatting).
    #[test]
    fn numbers_round_trip_exactly(mantissa in -1_000_000i64..1_000_000, exp in -20i32..20) {
        let n = mantissa as f64 * 10f64.powi(exp);
        let v = Json::Num(n);
        let back = Json::parse(&v.render())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        match back {
            Json::Num(m) => prop_assert!(
                m == n || (m.is_nan() && n.is_nan()),
                "{n} rendered as {} parsed to {m}", v.render()
            ),
            other => prop_assert!(false, "expected number, got {other:?}"),
        }
    }
}
