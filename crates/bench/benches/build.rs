//! Criterion microbenchmarks for the construction path: tokenization,
//! collection building, and index building.

use criterion::{criterion_group, criterion_main, Criterion};
use setsim_core::{CollectionBuilder, IndexOptions, InvertedIndex};
use setsim_datagen::{Corpus, CorpusConfig};
use setsim_tokenize::{QGramTokenizer, Tokenizer};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let corpus = Corpus::generate(&CorpusConfig {
        num_records: 2_000,
        vocab_size: 1_000,
        seed: 3,
        ..CorpusConfig::default()
    });
    let words: Vec<&str> = corpus.words().collect();

    c.bench_function("tokenize_3grams_per_1k_words", |b| {
        let tok = QGramTokenizer::new(3).with_padding('#');
        let mut buf = Vec::new();
        b.iter(|| {
            for w in words.iter().take(1_000) {
                buf.clear();
                tok.tokenize_into(black_box(w), &mut buf);
            }
            black_box(buf.len())
        });
    });

    c.bench_function("collection_build_5k_words", |b| {
        b.iter(|| {
            let mut builder = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
            for w in &words {
                builder.add(w);
            }
            black_box(builder.build().len())
        });
    });

    let mut builder = CollectionBuilder::new(QGramTokenizer::new(3).with_padding('#'));
    for w in &words {
        builder.add(w);
    }
    let collection = builder.build();

    c.bench_function("index_build_full", |b| {
        b.iter(|| {
            black_box(InvertedIndex::build(&collection, IndexOptions::default()).num_lists())
        });
    });

    c.bench_function("index_build_lists_only", |b| {
        let lean = IndexOptions::default()
            .with_skip_lists(false)
            .with_hash_indexes(false)
            .with_id_sorted_lists(false);
        b.iter(|| black_box(InvertedIndex::build(&collection, lean.clone()).num_lists()));
    });
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
