//! Criterion microbenchmarks: per-query latency of every selection
//! algorithm on a fixed synthetic corpus (the steady-state complement of
//! the fig6 wall-clock sweeps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setsim_bench::{prepare_queries, word_collection, workload, Algo, Engines, Scale};
use setsim_core::AlgoConfig;
use setsim_datagen::LengthBucket;
use std::hint::black_box;

fn bench_algorithms(c: &mut Criterion) {
    let (corpus, collection) = word_collection(Scale::Small);
    let engines = Engines::build(&collection);
    let wl = workload(&corpus, LengthBucket::PAPER[2], 0, 20, 1);
    let queries = prepare_queries(&engines.index, &wl);

    let mut group = c.benchmark_group("selection");
    for algo in Algo::ALL {
        group.bench_with_input(BenchmarkId::new(algo.name(), "tau=0.8"), &algo, |b, &a| {
            b.iter(|| {
                for q in &queries {
                    black_box(engines.run(a, AlgoConfig::default(), q, 0.8));
                }
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("sf_threshold_sweep");
    for tau in [0.6, 0.8, 0.95] {
        group.bench_with_input(BenchmarkId::from_parameter(tau), &tau, |b, &tau| {
            b.iter(|| {
                for q in &queries {
                    black_box(engines.run(Algo::Sf, AlgoConfig::default(), q, tau));
                }
            });
        });
    }
    group.finish();

    // Ablations: the design choices DESIGN.md calls out.
    let mut group = c.benchmark_group("sf_ablations");
    for (name, cfg) in [
        ("full", AlgoConfig::full()),
        ("no_skip_lists", AlgoConfig::no_skip_lists()),
        ("no_length_bounding", AlgoConfig::no_length_bounding()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, &cfg| {
            b.iter(|| {
                for q in &queries {
                    black_box(engines.run(Algo::Sf, cfg, q, 0.8));
                }
            });
        });
    }
    group.finish();

    // NRA bookkeeping ablation: the paper could not even finish textbook
    // NRA at scale; its experiments enabled lazy scans + early scan exit.
    let mut group = c.benchmark_group("nra_bookkeeping");
    for (name, algo) in [
        ("reduced", setsim_core::NraAlgorithm::default()),
        ("textbook", setsim_core::NraAlgorithm::pure()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &algo, |b, algo| {
            use setsim_core::SelectionAlgorithm;
            b.iter(|| {
                for q in &queries {
                    black_box(algo.search(&engines.index, q, 0.8));
                }
            });
        });
    }
    group.finish();

    // Self-join throughput (selection-composed join, serial vs parallel).
    let mut group = c.benchmark_group("self_join");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                use setsim_core::algorithms::selfjoin::par_self_join;
                b.iter(|| {
                    black_box(par_self_join(
                        &engines.index,
                        &setsim_core::SfAlgorithm::default(),
                        0.9,
                        threads,
                    ))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
