//! Criterion microbenchmarks for the index substrates: skip list,
//! extendible hashing, and B+-tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setsim_collections::{BPlusTree, ExtendibleHashMap, SkipList};
use std::hint::black_box;

const N: u64 = 10_000;

fn bench_skiplist(c: &mut Criterion) {
    let mut group = c.benchmark_group("skiplist");
    group.bench_function("insert_10k", |b| {
        b.iter(|| {
            let mut sl = SkipList::with_seed(1);
            for k in 0..N {
                sl.insert(black_box(k.wrapping_mul(2654435761) % N), k);
            }
            black_box(sl.len())
        });
    });
    let mut sl = SkipList::with_seed(2);
    for k in 0..N {
        sl.insert(k * 2, k);
    }
    group.bench_function("get", |b| {
        let mut k = 0;
        b.iter(|| {
            k = (k + 7919) % (2 * N);
            black_box(sl.get(&k))
        });
    });
    group.bench_function("lower_bound_seek", |b| {
        let mut k = 0;
        b.iter(|| {
            k = (k + 7919) % (2 * N);
            black_box(sl.lower_bound(&k).next())
        });
    });
    group.finish();
}

fn bench_extendible(c: &mut Criterion) {
    let mut group = c.benchmark_group("extendible_hash");
    for cap in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("insert_10k", cap), &cap, |b, &cap| {
            b.iter(|| {
                let mut h = ExtendibleHashMap::new(cap);
                for k in 0..N {
                    h.insert(black_box(k), ());
                }
                black_box(h.len())
            });
        });
    }
    let mut h = ExtendibleHashMap::new(64);
    for k in 0..N {
        h.insert(k, k);
    }
    group.bench_function("probe", |b| {
        let mut k = 0;
        b.iter(|| {
            k = (k + 7919) % (2 * N);
            black_box(h.get(&k))
        });
    });
    group.finish();
}

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("bplustree");
    for branching in [16usize, 64, 256] {
        group.bench_with_input(
            BenchmarkId::new("insert_10k", branching),
            &branching,
            |b, &br| {
                b.iter(|| {
                    let mut t = BPlusTree::new(br);
                    for k in 0..N {
                        t.insert(black_box(k.wrapping_mul(2654435761) % N), k);
                    }
                    black_box(t.len())
                });
            },
        );
    }
    let mut t = BPlusTree::new(64);
    for k in 0..N {
        t.insert(k, k);
    }
    group.bench_function("get", |b| {
        let mut k = 0;
        b.iter(|| {
            k = (k + 7919) % (2 * N);
            black_box(t.get(&k))
        });
    });
    group.bench_function("range_scan_100", |b| {
        let mut k = 0;
        b.iter(|| {
            k = (k + 7919) % N;
            black_box(t.range(k..k + 100).count())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_skiplist, bench_extendible, bench_btree);
criterion_main!(benches);
