//! # setsim — fast set similarity selection queries
//!
//! Facade crate for the `setsim` workspace, a from-scratch Rust
//! implementation of *"Fast Indexes and Algorithms for Set Similarity
//! Selection Queries"* (Hadjieleftheriou, Chandel, Koudas, Srivastava,
//! ICDE 2008).
//!
//! The individual pieces live in focused crates and are re-exported here:
//!
//! * [`tokenize`] — q-gram/word tokenizers and token interning.
//! * [`collections`] — skip list, extendible hashing, B+-tree substrates.
//! * [`relational`] — the mini relational engine behind the SQL baseline.
//! * [`storage`] — simulated paged disk, LRU buffer pool, paged compressed
//!   posting storage (for the physical I/O experiments), and the
//!   checksummed snapshot container behind `InvertedIndex::save`/`load`.
//! * [`datagen`] — synthetic corpora, error models, and query workloads.
//! * [`core`] — similarity measures, the inverted index, the
//!   TA/NRA-family selection algorithms (TA, NRA, iTA, iNRA, SF, Hybrid),
//!   and the serving layer: a persistent `QueryEngine` with reusable
//!   scratch memory, work-stealing batches, per-query budgets, and
//!   latency/pruning metrics behind the `SearchRequest` builder API —
//!   plus cold-start `QueryEngine::open` from a saved snapshot.
//!
//! ## Quickstart
//!
//! ```
//! use setsim::core::{AlgorithmKind, CollectionBuilder, IndexOptions, InvertedIndex,
//!                    QueryEngine, SearchRequest};
//! use setsim::tokenize::QGramTokenizer;
//!
//! let tok = QGramTokenizer::new(3).with_padding('#');
//! let mut builder = CollectionBuilder::new(tok);
//! for s in ["main street", "main st", "maine street", "park avenue"] {
//!     builder.add(s);
//! }
//! let collection = builder.build();
//! let index = InvertedIndex::build(&collection, IndexOptions::default());
//!
//! let mut engine = QueryEngine::new(index);
//! let query = engine.prepare_query_str("main street");
//! let out = engine
//!     .search(SearchRequest::new(&query).tau(0.5).algorithm(AlgorithmKind::Sf))
//!     .expect("valid request");
//! let results = out.sorted_by_score();
//! assert_eq!(collection.text(results[0].id), Some("main street"));
//! assert!((results[0].score - 1.0).abs() < 1e-9);
//! ```

pub use setsim_collections as collections;
pub use setsim_core as core;
pub use setsim_datagen as datagen;
pub use setsim_relational as relational;
pub use setsim_storage as storage;
pub use setsim_tokenize as tokenize;
