//! # setsim — fast set similarity selection queries
//!
//! Facade crate for the `setsim` workspace, a from-scratch Rust
//! implementation of *"Fast Indexes and Algorithms for Set Similarity
//! Selection Queries"* (Hadjieleftheriou, Chandel, Koudas, Srivastava,
//! ICDE 2008).
//!
//! The individual pieces live in focused crates and are re-exported here:
//!
//! * [`tokenize`] — q-gram/word tokenizers and token interning.
//! * [`collections`] — skip list, extendible hashing, B+-tree substrates.
//! * [`relational`] — the mini relational engine behind the SQL baseline.
//! * [`storage`] — simulated paged disk, LRU buffer pool, paged compressed
//!   posting storage (for the physical I/O experiments).
//! * [`datagen`] — synthetic corpora, error models, and query workloads.
//! * [`core`] — similarity measures, the inverted index, and the
//!   TA/NRA-family selection algorithms (TA, NRA, iTA, iNRA, SF, Hybrid).
//!
//! ## Quickstart
//!
//! ```
//! use setsim::core::{CollectionBuilder, IndexOptions, InvertedIndex, SfAlgorithm,
//!                    SelectionAlgorithm};
//! use setsim::tokenize::QGramTokenizer;
//!
//! let tok = QGramTokenizer::new(3).with_padding('#');
//! let mut builder = CollectionBuilder::new(tok);
//! for s in ["main street", "main st", "maine street", "park avenue"] {
//!     builder.add(s);
//! }
//! let collection = builder.build();
//! let index = InvertedIndex::build(&collection, IndexOptions::default());
//!
//! let query = index.prepare_query_str("main street");
//! let mut results = SfAlgorithm::default().search(&index, &query, 0.5).results;
//! results.sort_by(|a, b| b.score.total_cmp(&a.score));
//! assert_eq!(collection.text(results[0].id), Some("main street"));
//! assert!((results[0].score - 1.0).abs() < 1e-9);
//! ```

pub use setsim_collections as collections;
pub use setsim_core as core;
pub use setsim_datagen as datagen;
pub use setsim_relational as relational;
pub use setsim_storage as storage;
pub use setsim_tokenize as tokenize;
